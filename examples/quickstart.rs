//! Quickstart: build a CWC model, run the parallel simulation-analysis
//! pipeline, print the resulting statistics as CSV.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use cwc_repro::cwc::model::Model;
use cwc_repro::cwcsim::{run_simulation, SimConfig, StatEngineKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reversible dimerisation model, written with the fluent builder.
    let mut model = Model::new("quickstart-dimerisation");
    let a = model.species("A");
    model
        .rule("dimerise")
        .consumes("A", 2)
        .produces("D", 1)
        .rate(0.002)
        .build()?;
    model
        .rule("dissociate")
        .consumes("D", 1)
        .produces("A", 2)
        .rate(0.1)
        .build()?;
    model.initial.add_atoms(a, 500);
    model.observe("A", a);
    let d = model.species("D");
    model.observe("D", d);

    // 32 trajectories to t = 20, sampled every 0.5 time units, simulated by
    // a farm of 4 engines with quantum-based rescheduling, analysed by 2
    // statistical engines over sliding windows.
    let cfg = SimConfig::new(32, 20.0)
        .quantum(1.0)
        .sample_period(0.5)
        .sim_workers(4)
        .stat_workers(2)
        .window(5, 1)
        .engines(vec![StatEngineKind::MeanVariance])
        .seed(42);

    let report = run_simulation(Arc::new(model), &cfg)?;
    println!("{}", report.to_csv());
    eprintln!(
        "simulated {} reactions across {} trajectories in {:?}",
        report.events, cfg.instances, report.wall
    );
    Ok(())
}
