//! Quickstart: build a CWC model, run the parallel simulation-analysis
//! pipeline with the exact (SSA) integrator, print the resulting
//! statistics as CSV — then re-run the *same* pipeline under the batched
//! SoA tier, fixed-step tau-leaping and adaptive (CGP) tau-leaping with
//! one config knob (`SimConfig::engine`) and compare.
//!
//! Everything the program needs is imported from the `cwc_repro` umbrella
//! crate: the end-to-end run API (`SimConfig`, `EngineKind`,
//! `run_simulation`, …) lives at the umbrella root, and the model builder
//! is reached through the re-exported `cwc` member crate.
//!
//! Run: `cargo run --release --example quickstart`
//!
//! With `-- --shards N` the run is repeated through the sharded farm —
//! N real `cwc-shard` child processes (build the worker first:
//! `cargo build --release --bin cwc-shard`), each simulating a slice of
//! the trajectories and streaming partial cuts + mergeable statistics
//! back — and the rows are asserted **bit-for-bit identical** to the
//! single-process run (exit code 1 otherwise; the CI sharded smoke leg
//! runs exactly this). `-- --retries N` arms the supervisor's retry
//! budget and `-- --shard-timeout SECS` its watchdog, so the same smoke
//! run also survives an injected worker fault (`CWC_SHARD_FAULT`; the
//! CI fault-injection leg kills one shard mid-run this way and still
//! demands bit-for-bit rows).
//!
//! With `-- --transport tcp --workers host:port,host:port` the sharded
//! re-run places its shards on running `cwc-workerd` daemons over TCP
//! instead of spawning local children (`--connect-timeout SECS` bounds
//! the per-worker connect/handshake). The bit-for-bit assertion is
//! unchanged — worker placement must be invisible in the rows; the CI
//! loopback-cluster leg runs exactly this, killing one daemon mid-run.

use std::sync::Arc;

use cwc_repro::cwc::model::Model;
use cwc_repro::{run_simulation, EngineKind, SimConfig, StatEngineKind};

/// Value of `--<name> <v>` parsed as `T` (None when the flag is absent).
fn flag_arg<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let flag = format!("--{name}");
    let i = args.iter().position(|a| *a == flag)?;
    Some(
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} takes a number")),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reversible dimerisation model, written with the fluent builder.
    let mut model = Model::new("quickstart-dimerisation");
    let a = model.species("A");
    model
        .rule("dimerise")
        .consumes("A", 2)
        .produces("D", 1)
        .rate(0.002)
        .build()?;
    model
        .rule("dissociate")
        .consumes("D", 1)
        .produces("A", 2)
        .rate(0.1)
        .build()?;
    model.initial.add_atoms(a, 500);
    model.observe("A", a);
    let d = model.species("D");
    model.observe("D", d);

    // 32 trajectories to t = 20, sampled every 0.5 time units, simulated by
    // a farm of 4 engines with quantum-based rescheduling, analysed by 2
    // statistical engines over sliding windows.
    let cfg = SimConfig::new(32, 20.0)
        .quantum(1.0)
        .sample_period(0.5)
        .sim_workers(4)
        .stat_workers(2)
        .window(5, 1)
        .engines(vec![StatEngineKind::MeanVariance])
        .seed(42);

    let model = Arc::new(model);
    let report = run_simulation(Arc::clone(&model), &cfg)?;
    println!("{}", report.to_csv());
    eprintln!(
        "simulated {} reactions across {} trajectories in {:?}",
        report.events, cfg.instances, report.wall
    );

    // Sharded re-run: same model, same seeds, N child processes — and
    // the per-instance seeding makes the rows bit-for-bit identical.
    // With a retry budget and/or watchdog armed, that still holds when a
    // worker dies mid-run: the supervisor requeues the slice and the
    // deterministic replay slots straight back into the merge.
    if let Some(shards) = flag_arg::<usize>("shards") {
        let mut sharded_cfg = cfg.clone().shards(shards);
        if let Some(retries) = flag_arg::<usize>("retries") {
            sharded_cfg = sharded_cfg.retries(retries);
        }
        if let Some(secs) = flag_arg::<f64>("shard-timeout") {
            sharded_cfg = sharded_cfg.shard_timeout(secs);
        }
        if let Some(kind) = flag_arg::<cwc_repro::TransportKind>("transport") {
            sharded_cfg = sharded_cfg.transport(kind);
        }
        if let Some(list) = flag_arg::<String>("workers") {
            sharded_cfg = sharded_cfg.workers(list.split(',').map(str::to_owned).collect());
        }
        if let Some(secs) = flag_arg::<f64>("connect-timeout") {
            sharded_cfg = sharded_cfg.connect_timeout(secs);
        }
        let sharded =
            cwc_repro::distrt::shard::run_simulation_sharded(Arc::clone(&model), &sharded_cfg)?;
        if sharded.rows != report.rows || sharded.events != report.events {
            eprintln!("sharded run DIVERGED from the single-process run");
            std::process::exit(1);
        }
        let where_ = match sharded_cfg.transport {
            cwc_repro::TransportKind::Tcp => format!(
                "{} shards on tcp workers [{}]",
                shards,
                sharded_cfg.workers.join(", ")
            ),
            cwc_repro::TransportKind::Process => format!("{shards} worker processes"),
        };
        eprintln!(
            "sharded re-run across {}: {} reactions in {:?} — \
             rows bit-for-bit identical to the single-process run",
            where_, sharded.events, sharded.wall
        );
    }

    // Batched tier: workers advance whole batches of 8 replicas in SoA
    // lockstep instead of single instances. Every replica replays the
    // scalar SSA draw discipline on its own RNG stream, so the rows are
    // bit-for-bit identical to the plain SSA run above.
    let batched_cfg = cfg.clone().engine(EngineKind::batched(8)?);
    let batched = run_simulation(Arc::clone(&model), &batched_cfg)?;
    if batched.rows != report.rows || batched.events != report.events {
        eprintln!("batched run DIVERGED from the scalar SSA run");
        std::process::exit(1);
    }
    eprintln!(
        "batched re-run (width 8): {} firings in {:?} — rows bit-for-bit \
         identical to the scalar SSA run",
        batched.events, batched.wall
    );

    // Engine selection: the dimerisation model is flat mass-action, so the
    // approximate tau-leaping integrator may drive the identical pipeline
    // (compartment models would be rejected here with an engine error).
    let leap_cfg = cfg.clone().engine(EngineKind::tau_leap(0.05)?);
    let leap = run_simulation(Arc::clone(&model), &leap_cfg)?;
    eprintln!(
        "tau-leap re-run: {} firings in {:?}; grand mean of A {:.2} vs exact {:.2}",
        leap.events,
        leap.wall,
        leap.grand_mean(0),
        report.grand_mean(0),
    );

    // Adaptive tau-leaping: no leap length to pick — every leap is sized
    // from the state so propensities change by at most epsilon per leap
    // (critical reactions near exhaustion still fire exactly).
    let adaptive_cfg = cfg.engine(EngineKind::adaptive_tau(0.03)?);
    let adaptive = run_simulation(model, &adaptive_cfg)?;
    eprintln!(
        "adaptive-tau re-run: {} firings in {:?}; grand mean of A {:.2} vs exact {:.2}",
        adaptive.events,
        adaptive.wall,
        adaptive.grand_mean(0),
        report.grand_mean(0),
    );
    Ok(())
}
