//! GPGPU offloading à la `ff_mapCUDA`: the same simulation instances run
//! under kernel-barrier lockstep on a simulated Tesla K40, produce results
//! bit-identical to CPU execution, and report the SIMT timing with its
//! divergence factor.
//!
//! Run: `cargo run --release --example gpu_offload`

use std::sync::Arc;

use cwc_repro::biomodels::neurospora::{neurospora_flat, NeurosporaParams};
use cwc_repro::distrt::workload::CostModel;
use cwc_repro::simt::{DeviceMap, DeviceSpec, WarpPacking};

fn main() {
    let model = Arc::new(neurospora_flat(NeurosporaParams::default()));
    let instances = 256;
    let t_end = 48.0;
    let quantum = 2.0;
    let tau = 0.5;

    eprintln!("running {instances} instances on the simulated device ...");
    let mut device_map = DeviceMap::new(Arc::clone(&model), instances, 11, t_end, quantum, tau);
    let outputs = device_map.run_to_end();
    let samples: usize = outputs.iter().map(|o| o.samples.len()).sum();
    println!("device produced {samples} samples from {instances} instances");

    let costs = CostModel::measure(model);
    let device = DeviceSpec::tesla_k40(costs.sec_per_event);
    for (name, packing) in [
        ("static warps", WarpPacking::Static),
        ("rebalanced warps", WarpPacking::RebalanceEachQuantum),
    ] {
        let t = device_map.device_timing(&device, packing);
        println!(
            "{name}: {:.2} ms total ({:.2} ms compute, {:.2} ms overhead), divergence {:.3}, {} kernels",
            t.total_s * 1e3,
            t.compute_s * 1e3,
            t.overhead_s * 1e3,
            t.divergence,
            t.kernels
        );
    }
    let cpu_equivalent = device_map.total_events() as f64 * costs.sec_per_event / 32.0;
    println!(
        "for comparison, 32 ideal CPU cores need ≈ {:.2} ms for the same events",
        cpu_equivalent * 1e3
    );
}
