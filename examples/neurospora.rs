//! The paper's headline experiment: stochastic circadian oscillations of
//! the Neurospora frq gene, simulated by the full pipeline with on-line
//! mean/variance + k-means analysis, rendered as an ASCII chart, and the
//! oscillation period recovered from the mean trajectory.
//!
//! Run: `cargo run --release --example neurospora`

use std::sync::Arc;

use cwc_repro::biomodels::neurospora::{neurospora_flat, NeurosporaParams};
use cwc_repro::cwcsim::{ascii_chart, run_simulation, SimConfig, StatEngineKind};
use cwc_repro::streamstat::period::analyse_period;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = NeurosporaParams::default();
    let model = Arc::new(neurospora_flat(params));

    let cfg = SimConfig::new(16, 120.0) // 16 trajectories, 120 hours
        .quantum(2.0)
        .sample_period(0.5)
        .sim_workers(4)
        .stat_workers(2)
        .window(8, 2)
        .engines(vec![
            StatEngineKind::MeanVariance,
            StatEngineKind::KMeans { k: 2 },
        ])
        .seed(7);

    eprintln!(
        "running {} trajectories of the Neurospora clock ...",
        cfg.instances
    );
    let report = run_simulation(model, &cfg)?;

    println!(
        "frq mRNA, ensemble mean over {} trajectories:",
        cfg.instances
    );
    println!("{}", ascii_chart(&report.rows, 0, 72, 14));

    // Recover the circadian period from the mean trajectory.
    let times: Vec<f64> = report.rows.iter().map(|r| r.time).collect();
    let means: Vec<f64> = report.rows.iter().map(|r| r.observables[0].mean).collect();
    let start = times.iter().position(|&t| t >= 24.0).unwrap_or(0);
    let analysis = analyse_period(&times[start..], &means[start..], 6, 0.3, 20);
    match analysis.mean_period() {
        Some(p) => println!(
            "mean oscillation period: {p:.1} h ({} peaks; deterministic reference ≈ {:.1} h)",
            analysis.peaks.len(),
            NeurosporaParams::REFERENCE_PERIOD_H
        ),
        None => println!("no oscillation detected (try more trajectories)"),
    }
    eprintln!(
        "total reactions: {}, wall time {:?}",
        report.events, report.wall
    );
    eprintln!(
        "\nper-node run-time statistics:\n{}",
        report.run_stats.to_table()
    );
    Ok(())
}
