//! The distributed simulator, both halves:
//!
//! 1. *functional*: run the real farm-of-pipelines deployment in-process,
//!    with every sample batch wire-encoded and decoded, and check the
//!    results equal local execution;
//! 2. *performance*: predict the same deployment's timing on the paper's
//!    Infiniband cluster with the calibrated DES model.
//!
//! Run: `cargo run --release --example cluster_simulation`

use std::sync::Arc;

use cwc_repro::biomodels::simple::birth_death;
use cwc_repro::cwcsim::{run_simulation, SimConfig};
use cwc_repro::distrt::cluster::{simulate_cluster, ClusterParams};
use cwc_repro::distrt::emulation::run_distributed_emulation;
use cwc_repro::distrt::platform::{HostProfile, NetworkProfile};
use cwc_repro::distrt::workload::{CostModel, WorkloadTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = Arc::new(birth_death(40.0, 1.0, 0));
    let cfg = SimConfig::new(24, 10.0)
        .quantum(1.0)
        .sample_period(0.25)
        .sim_workers(2)
        .seed(99);

    // --- functional emulation -------------------------------------------
    let local = run_simulation(Arc::clone(&model), &cfg)?;
    let distributed = run_distributed_emulation(Arc::clone(&model), &cfg, 3)?;
    assert_eq!(
        local.rows, distributed.rows,
        "distribution changed results!"
    );
    println!("functional: 3 emulated farms produced identical results to local execution");
    println!(
        "            {} messages, {} bytes through the wire codec",
        distributed.messages, distributed.bytes_transferred
    );

    // --- performance model ----------------------------------------------
    // A heavier ensemble, so per-quantum compute dominates per-message
    // network costs (the regime the paper's cluster experiments run in).
    let heavy = Arc::new(birth_death(400.0, 1.0, 0));
    let trace = WorkloadTrace::record(Arc::clone(&heavy), 256, 7, 20.0, 2.0, 0.5);
    let costs = CostModel::measure(heavy);
    println!("\nperformance model (Infiniband cluster of 12-core Xeons):");
    println!("hosts\tmakespan\tspeedup vs sequential");
    for hosts in [1usize, 2, 4, 8] {
        let mut p =
            ClusterParams::homogeneous(hosts, HostProfile::xeon12(), NetworkProfile::ipoib());
        p.costs = costs;
        let out = simulate_cluster(&trace, &p);
        println!(
            "{hosts}\t{:.2} ms\t{:.1}x",
            out.makespan_s * 1e3,
            out.speedup()
        );
    }
    Ok(())
}
