//! The textual CWC model format: parse a nested-compartment model from
//! source, run it, and display the population dynamics.
//!
//! Run: `cargo run --release --example model_dsl`

use std::sync::Arc;

use cwc_repro::cwc::parse_model;
use cwc_repro::cwcsim::{ascii_chart, run_simulation, SimConfig, StatEngineKind};

const SOURCE: &str = r"
model infected-cells
# Free virions V infect cells; infected cells produce virions and may burst.
term: V*60 (cell: R |) (cell: R |) (cell: R |) (cell: R |) (cell: R |)
rule infect  @ 0.004 : V (cell: R |) => [1: | V]
rule produce @ 0.4 in cell : V => V V
rule burst   @ 0.05 : (cell: | V*8) => !1
rule decay   @ 0.08 : V =>
observe free_virions = V at top
observe total_virions = V
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = parse_model(SOURCE)?;
    println!(
        "parsed model `{}`: {} rules, initial term: {}",
        model.name,
        model.rules.len(),
        model.initial.display(&model.alphabet)
    );

    let cfg = SimConfig::new(24, 30.0)
        .quantum(1.0)
        .sample_period(0.5)
        .sim_workers(4)
        .stat_workers(1)
        .engines(vec![StatEngineKind::MeanVariance])
        .seed(3);
    let report = run_simulation(Arc::new(model), &cfg)?;

    println!("\ntotal virions (ensemble mean):");
    println!("{}", ascii_chart(&report.rows, 1, 72, 12));
    Ok(())
}
