//! `cwc-workerd` — the shard farm's network worker daemon.
//!
//! Runs on each machine of a cluster; the coordinator
//! (`distrt::net::TcpShardTransport`, selected with `--transport tcp`)
//! dials it once per shard attempt. Per connection the daemon writes a
//! `WorkerHello` registration frame (protocol version + capacity) and
//! then serves the standard shard protocol — the exact worker body
//! `cwc-shard` runs over stdio, here over the socket: a `Job` frame
//! carrying the model, the slice spec and the coordinator's
//! pre-compiled dependency graph in, aligned partial cuts plus
//! heartbeats plus one mergeable statistics state out.
//!
//! ```text
//! cwc-workerd --listen 0.0.0.0:7701 --capacity 8
//! ```
//!
//! `--listen` defaults to `127.0.0.1:0` (an ephemeral loopback port);
//! the bound address is printed to stdout as
//! `cwc-workerd listening on <addr>` so harnesses can parse the real
//! port. `--capacity` defaults to the machine's available parallelism.
//!
//! Setting `CWC_SHARD_FAULT` (see `distrt::fault`) arms the
//! fault-injection harness inside the serving path; a fired fault
//! kills the *whole daemon* with exit status 3, so recovery tests
//! exercise the requeue-onto-a-surviving-worker policy with a real
//! worker death.

use std::io::Write;

use cwc_repro::distrt::net::WorkerDaemon;

fn main() {
    let mut listen = String::from("127.0.0.1:0");
    let mut capacity: u64 = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(v) => listen = v,
                None => die("--listen needs an address (host:port)"),
            },
            "--capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => capacity = v,
                _ => die("--capacity needs a positive integer"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: cwc-workerd [--listen HOST:PORT] [--capacity N]\n\
                     serves shard attempts over TCP for `--transport tcp` runs"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
    }

    let daemon = match WorkerDaemon::bind(&listen, capacity) {
        Ok(d) => d,
        Err(e) => die(&format!("bind {listen}: {e}")),
    };
    match daemon.local_addr() {
        Ok(addr) => {
            // Parsed by tests/CI to learn an ephemeral port; keep the
            // exact wording stable.
            println!("cwc-workerd listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => die(&format!("local_addr: {e}")),
    }
    if let Err(e) = daemon.run() {
        die(&format!("accept loop failed: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("cwc-workerd: {msg}");
    std::process::exit(2);
}
