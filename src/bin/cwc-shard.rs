//! `cwc-shard` — the sharded simulation farm's worker process.
//!
//! Spawned by the coordinator (`distrt::shard::ProcessTransport`), one
//! per shard. Protocol (length-prefixed wire-v4 frames over stdio):
//! a `Job` frame on stdin carries the full model plus this shard's
//! instance slice; the worker runs the standard farm + alignment
//! pipeline on the slice and streams aligned partial cuts plus one
//! end-of-stream mergeable statistics state back on stdout. A
//! `Terminate` frame on stdin drains the shard at the next quantum
//! boundaries. See `distrt::shard` for the full contract.
//!
//! Not meant to be run by hand; exits 2 on a malformed input stream.

use std::io;

fn main() {
    let stdout = io::BufWriter::new(io::stdout().lock());
    if let Err(e) = cwc_repro::distrt::shard::serve_shard(io::stdin(), stdout) {
        eprintln!("cwc-shard: {e}");
        std::process::exit(2);
    }
}
