//! `cwc-shard` — the sharded simulation farm's worker process.
//!
//! Spawned by the coordinator (`distrt::shard::ProcessTransport`), one
//! per shard. Protocol (length-prefixed wire-v7 frames over stdio):
//! a `Job` frame on stdin carries the full model plus this shard's
//! instance slice; the worker runs the standard farm + alignment
//! pipeline on the slice and streams aligned partial cuts, `Progress`
//! heartbeats, plus one end-of-stream mergeable statistics state back
//! on stdout. A `Terminate` frame on stdin drains the shard at the
//! next quantum boundaries. See `distrt::shard` for the full contract.
//!
//! Setting `CWC_SHARD_FAULT` (see `distrt::fault`) arms the
//! fault-injection harness: the worker crashes, stalls, corrupts its
//! stream or starts late on cue so supervisor recovery is testable
//! end-to-end.
//!
//! Not meant to be run by hand; exits 2 on a malformed input stream
//! and 3 when an injected fault fired (so a harness can tell a planned
//! death from a real one).

use std::io;

fn main() {
    // Unlocked handle: the heartbeat thread inside `serve_shard` needs
    // the writer to be `Send` (StdoutLock is not).
    let stdout = io::BufWriter::new(io::stdout());
    if let Err(e) = cwc_repro::distrt::shard::serve_shard(io::stdin(), stdout) {
        eprintln!("cwc-shard: {e}");
        let code = match e {
            cwc_repro::distrt::shard::ServeError::Fault(_) => 3,
            _ => 2,
        };
        std::process::exit(code);
    }
}
