//! Umbrella crate for the CWC/FastFlow reproduction workspace.
//!
//! Re-exports every member crate so the runnable examples under `examples/`
//! and the integration tests under `tests/` can reach the whole stack through
//! a single dependency.

pub use biomodels;
pub use cwc;
pub use cwcsim;
pub use desim;
pub use distrt;
pub use fastflow;
pub use gillespie;
pub use simt;
pub use streamstat;
