//! Umbrella crate for the CWC/FastFlow reproduction workspace.
//!
//! Re-exports every member crate so the runnable examples under `examples/`
//! and the integration tests under `tests/` can reach the whole stack through
//! a single dependency — plus the end-to-end run API at the crate root, so a
//! complete simulation needs nothing deeper than `use cwc_repro::{...}`:
//!
//! ```
//! use cwc_repro::{run_simulation, EngineKind, SimConfig};
//! use std::sync::Arc;
//!
//! let model = Arc::new(cwc_repro::biomodels::simple::decay(40, 1.0));
//! let cfg = SimConfig::new(4, 2.0)
//!     .engine(EngineKind::batched(2).unwrap())
//!     .seed(7);
//! let report = run_simulation(model, &cfg).unwrap();
//! assert!(!report.rows.is_empty());
//! ```

pub use biomodels;
pub use cwc;
pub use cwcsim;
pub use desim;
pub use distrt;
pub use fastflow;
pub use gillespie;
pub use simt;
pub use streamstat;

// The end-to-end run API, re-exported at the umbrella root: everything a
// model-to-CSV program needs — configuration (with its structured error),
// engine selection (with its validated constructors), the runners, live
// steering, and the mergeable whole-run statistics they produce.
pub use cwcsim::{
    run_sequential, run_simulation, run_simulation_sharded_in_process, run_simulation_steered,
    ConfigError, EngineError, EngineKind, RunSummary, SimConfig, SimError, SimReport,
    StatEngineKind, Steering, TransportKind,
};
