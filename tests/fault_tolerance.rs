//! The fault-tolerant shard farm's contract, end-to-end with real
//! `cwc-shard` child processes and the env-driven fault-injection
//! harness (`distrt::fault`):
//!
//! - a worker that crashes, stalls or corrupts its stream mid-run is
//!   detected, its slice is requeued, and the merged report is
//!   **bit-for-bit** identical to a fault-free single-process run — for
//!   every engine kind, including the batched SoA tier;
//! - with a zero retry budget the same faults surface as *typed* errors
//!   (`Crashed`, `Frame { offset, .. }`, `Timeout { silent_for }`),
//!   never as a hang;
//! - budget exhaustion carries the full per-attempt history.
//!
//! Each test arms its own transport via `ProcessTransport::env`, so the
//! fault plan rides the child's environment and tests stay parallel-safe.
//!
//! The same contract is then re-proven over the network: the TCP matrix
//! at the bottom arms `cwc-workerd` daemons with the identical fault
//! plans and demands recovery land on a *surviving* worker.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cwc_repro::biomodels;
use cwc_repro::cwcsim::{
    run_simulation, run_simulation_sharded_with, EngineKind, ShardErrorKind, SimConfig, SimError,
    SimReport, Steering,
};
use cwc_repro::distrt::fault::FAULT_ENV;
use cwc_repro::distrt::net::TcpShardTransport;
use cwc_repro::distrt::shard::ProcessTransport;

fn cfg() -> SimConfig {
    SimConfig::new(6, 2.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(2)
        .stat_workers(2)
        .window(4, 2)
        .seed(211)
        .shard_backoff(0.0, 0.0) // no backoff sleeps in tests
}

fn transport(plan: &str) -> ProcessTransport {
    ProcessTransport::new()
        .expect("cwc-shard binary built alongside this test")
        .env(FAULT_ENV, plan)
}

fn run_faulted(cfg: &SimConfig, plan: &str) -> Result<SimReport, SimError> {
    let model = Arc::new(biomodels::simple::decay(40, 1.0));
    run_simulation_sharded_with(model, cfg, &Steering::new(), &mut transport(plan))
}

/// The full matrix: {crash, stall, corrupt-frame, garbage} × retry
/// budget {0, 1, 2} × shards {1, 2, 3}. A budget ≥ 1 must recover
/// bit-for-bit (the plans fault only the first attempt); a budget of 0
/// must surface the fault's typed kind. Either way the run terminates.
#[test]
fn fault_matrix_recovers_bit_for_bit_or_fails_typed() {
    let model = Arc::new(biomodels::simple::decay(40, 1.0));
    let reference = run_simulation(Arc::clone(&model), &cfg()).expect("fault-free reference");

    // (plan prefix, needs watchdog, matcher for the budget-0 kind)
    type KindCheck = fn(&ShardErrorKind) -> bool;
    let faults: [(&str, bool, KindCheck); 4] = [
        ("crash", false, |k| matches!(k, ShardErrorKind::Crashed(_))),
        ("stall", true, |k| {
            matches!(k, ShardErrorKind::Timeout { .. })
        }),
        ("corrupt-frame", false, |k| {
            matches!(k, ShardErrorKind::Frame { .. })
        }),
        ("garbage", false, |k| {
            matches!(k, ShardErrorKind::Frame { .. })
        }),
    ];
    for (fault, needs_watchdog, kind_matches) in faults {
        for shards in [1usize, 2, 3] {
            // Fault the last shard after it has streamed 3 cuts, so
            // recovery has delivered work to skip on replay.
            let plan = format!("{fault}:shard={},cuts=3", shards - 1);
            for retries in [0usize, 1, 2] {
                let mut run_cfg = cfg().shards(shards).retries(retries);
                if needs_watchdog {
                    run_cfg = run_cfg.shard_timeout(0.75);
                }
                let label = format!("{fault}/shards={shards}/retries={retries}");
                match run_faulted(&run_cfg, &plan) {
                    Ok(report) if retries >= 1 => {
                        assert_eq!(report.rows, reference.rows, "{label}: rows diverged");
                        assert_eq!(report.events, reference.events, "{label}: events diverged");
                    }
                    Ok(_) => panic!("{label}: succeeded with no retry budget"),
                    Err(SimError::Shard(e)) if retries == 0 => {
                        assert_eq!(e.shard, shards - 1, "{label}: wrong shard blamed: {e}");
                        assert!(kind_matches(&e.kind), "{label}: unexpected kind: {e}");
                    }
                    Err(e) => panic!("{label}: failed despite retry budget: {e}"),
                }
            }
        }
    }
}

/// Recovery determinism across every engine kind, the batched SoA tier
/// included: crash one of three shards mid-stream, retry once, and the
/// merged rows must equal the fault-free single-process run exactly.
#[test]
fn recovery_is_bit_for_bit_for_every_engine_kind() {
    let model = Arc::new(biomodels::simple::decay(60, 1.0));
    let kinds = [
        EngineKind::Ssa,
        EngineKind::TauLeap { tau: 0.05 },
        EngineKind::FirstReaction,
        EngineKind::AdaptiveTau { epsilon: 0.05 },
        EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 8.0,
        },
        EngineKind::Batched { width: 3 },
    ];
    for kind in kinds {
        let base = cfg().engine(kind);
        let reference =
            run_simulation(Arc::clone(&model), &base).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let recovered = run_simulation_sharded_with(
            Arc::clone(&model),
            &base.clone().shards(3).retries(1),
            &Steering::new(),
            &mut transport("crash:shard=1,cuts=2"),
        )
        .unwrap_or_else(|e| panic!("{kind}: recovery failed: {e}"));
        assert_eq!(recovered.rows, reference.rows, "{kind}: rows diverged");
        assert_eq!(
            recovered.events, reference.events,
            "{kind}: events diverged"
        );
    }
}

/// The watchdog contract: a stalled worker (frames *and* heartbeats
/// stop, process stays alive) becomes a typed `Timeout` — within the
/// deadline's order of magnitude, never a hang.
#[test]
fn stalled_shard_times_out_typed_never_hangs() {
    let start = Instant::now();
    let err = run_faulted(&cfg().shards(2).shard_timeout(0.75), "stall:shard=1,cuts=1")
        .expect_err("no retry budget: the stall must surface");
    let elapsed = start.elapsed();
    match err {
        SimError::Shard(e) => {
            assert_eq!(e.shard, 1, "{e}");
            match &e.kind {
                ShardErrorKind::Timeout { silent_for } => {
                    assert!(
                        *silent_for >= Duration::from_millis(750),
                        "fired early: {silent_for:?}"
                    );
                }
                other => panic!("expected Timeout, got {other}: {e}"),
            }
        }
        other => panic!("expected SimError::Shard, got {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "typed timeout took {elapsed:?} — watchdog is not bounding the wait"
    );
}

/// A late-starting worker (fully silent before its first heartbeat) is
/// ridden out as long as the delay stays under the watchdog deadline —
/// slow is not dead.
#[test]
fn delayed_start_within_the_deadline_still_completes() {
    let reference = run_simulation(Arc::new(biomodels::simple::decay(40, 1.0)), &cfg()).unwrap();
    let report = run_faulted(
        &cfg().shards(2).shard_timeout(3.0),
        "delay-start:shard=0,ms=300",
    )
    .expect("a 0.3s delay under a 3s deadline must not be fatal");
    assert_eq!(report.rows, reference.rows);
}

/// Budget exhaustion: a shard that faults on every attempt burns the
/// whole budget, and the error carries one history entry per failed
/// attempt plus the blamed shard.
#[test]
fn exhausted_budget_reports_the_full_attempt_history() {
    let err = run_faulted(
        &cfg().shards(2).retries(2),
        "crash:shard=1,cuts=1,attempt=any",
    )
    .expect_err("faulting every attempt must exhaust the budget");
    match err {
        SimError::Shard(e) => {
            assert_eq!(e.shard, 1, "{e}");
            assert!(matches!(e.kind, ShardErrorKind::Crashed(_)), "{e}");
            assert_eq!(
                e.attempts.len(),
                2,
                "one history entry per burned retry: {e}"
            );
            for (i, a) in e.attempts.iter().enumerate() {
                assert_eq!(a.attempt, i);
                assert!(!a.error.is_empty());
            }
            let rendered = e.to_string();
            assert!(rendered.contains("after 2 failed attempts"), "{rendered}");
        }
        other => panic!("expected SimError::Shard, got {other}"),
    }
}

/// A fault-armed `cwc-workerd` daemon on an ephemeral loopback port,
/// killed on drop. The fault plan rides the daemon's environment, same
/// as the process-transport tests above.
struct FaultedWorkerd {
    child: Child,
    addr: String,
}

impl FaultedWorkerd {
    fn spawn(plan: &str) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cwc-workerd"))
            .args(["--listen", "127.0.0.1:0"])
            .env(FAULT_ENV, plan)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn cwc-workerd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("workerd announces its address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("addr token")
            .to_string();
        assert!(addr.contains(':'), "unexpected announcement: {line:?}");
        FaultedWorkerd { child, addr }
    }
}

impl Drop for FaultedWorkerd {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The fault matrix again, but over the network: {crash, stall,
/// corrupt-frame} × retry budget {0, 1, 2} × shards {1, 2, 3}, served
/// by two fault-armed `cwc-workerd` daemons. A budget ≥ 1 must recover
/// bit-for-bit with every retry placed on a *different* worker than the
/// failed attempt (a faulting daemon takes its whole process down, so
/// retrying in place could never succeed). A budget of 0 must surface a
/// typed error — though not necessarily blamed on the faulted shard:
/// one daemon serves several shards, so its death also fails co-hosted
/// shards first (collateral `Crashed`/`Frame`), and whichever failure
/// exhausts its budget first wins the race.
#[test]
fn tcp_fault_matrix_recovers_on_a_survivor_or_fails_typed() {
    let model = Arc::new(biomodels::simple::decay(40, 1.0));
    let reference = run_simulation(Arc::clone(&model), &cfg()).expect("fault-free reference");

    type KindCheck = fn(&ShardErrorKind) -> bool;
    let faults: [(&str, bool, KindCheck); 3] = [
        // A crashing daemon can lose the race to a half-written frame,
        // so `Frame` is as legitimate as `Crashed` — and vice versa for
        // a corrupted stream whose collateral shards see a bare EOF.
        ("crash", false, |k| {
            matches!(k, ShardErrorKind::Crashed(_) | ShardErrorKind::Frame { .. })
        }),
        ("stall", true, |k| {
            matches!(k, ShardErrorKind::Timeout { .. })
        }),
        ("corrupt-frame", false, |k| {
            matches!(k, ShardErrorKind::Frame { .. } | ShardErrorKind::Crashed(_))
        }),
    ];
    for (fault, needs_watchdog, kind_matches) in faults {
        for shards in [1usize, 2, 3] {
            let plan = format!("{fault}:shard={},cuts=3", shards - 1);
            for retries in [0usize, 1, 2] {
                let label = format!("tcp/{fault}/shards={shards}/retries={retries}");
                // Fresh daemons per run: a faulted daemon is dead.
                let daemons = [FaultedWorkerd::spawn(&plan), FaultedWorkerd::spawn(&plan)];
                let mut run_cfg = cfg().shards(shards).retries(retries);
                if needs_watchdog {
                    run_cfg = run_cfg.shard_timeout(0.75);
                }
                let mut transport = TcpShardTransport::new(
                    daemons.iter().map(|d| d.addr.clone()).collect(),
                    Duration::from_secs(10),
                );
                let result = run_simulation_sharded_with(
                    Arc::clone(&model),
                    &run_cfg,
                    &Steering::new(),
                    &mut transport,
                );
                match result {
                    Ok(report) if retries >= 1 => {
                        assert_eq!(report.rows, reference.rows, "{label}: rows diverged");
                        assert_eq!(report.events, reference.events, "{label}: events diverged");
                        // Requeue-on-survivor: every retry attempt sits
                        // on a different worker than the one that just
                        // failed the same shard.
                        let placements = transport.placements();
                        assert!(
                            placements.iter().any(|p| p.attempt > 0),
                            "{label}: fault fired but nothing was requeued: {placements:?}"
                        );
                        for p in placements.iter().filter(|p| p.attempt > 0) {
                            let prev = placements
                                .iter()
                                .find(|q| q.shard == p.shard && q.attempt == p.attempt - 1)
                                .unwrap_or_else(|| {
                                    panic!("{label}: missing prior attempt for {p:?}")
                                });
                            assert_ne!(
                                p.worker, prev.worker,
                                "{label}: retry stayed on the failed worker: {placements:?}"
                            );
                        }
                    }
                    Ok(_) => panic!("{label}: succeeded with no retry budget"),
                    Err(SimError::Shard(e)) if retries == 0 => {
                        assert!(kind_matches(&e.kind), "{label}: unexpected kind: {e}");
                    }
                    Err(e) => panic!("{label}: failed despite retry budget: {e}"),
                }
            }
        }
    }
}
