//! Property-based tests (proptest) on the core data structures and
//! invariants: multiset algebra, tree matching vs brute force, rewrite
//! well-formedness, wire codec round-trips, alignment and windowing laws,
//! and the stochastic-engine contracts (tau-leap non-negativity and
//! slicing invariance, first-reaction/direct-method coupling).

use proptest::prelude::*;
use std::sync::Arc;

use cwc_repro::gillespie::engine::EngineKind;
use cwc_repro::gillespie::{AdaptiveTauEngine, FirstReactionEngine, SampleClock, TauLeapEngine};

use cwc_repro::cwc::matching::{apply_at, assignments, match_count};
use cwc_repro::cwc::multiset::{binomial, Multiset};
use cwc_repro::cwc::rule::{Pattern, Production, RateLaw, Rule};
use cwc_repro::cwc::species::{Label, Species};
use cwc_repro::cwc::term::{Compartment, Path, Term};
use cwc_repro::cwcsim::task::SampleBatch;
use cwc_repro::distrt::{from_bytes, to_bytes};
use cwc_repro::streamstat::welford::Running;
use cwc_repro::streamstat::window::SlidingWindow;

fn arb_multiset() -> impl Strategy<Value = Multiset> {
    proptest::collection::vec((0u32..6, 0u64..8), 0..6).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(s, n)| (Species::from_raw(s), n))
            .collect()
    })
}

proptest! {
    #[test]
    fn multiset_add_then_remove_is_identity(a in arb_multiset(), b in arb_multiset()) {
        let mut m = a.clone();
        m.add_all(&b);
        prop_assert!(m.contains(&b));
        m.remove_all(&b).unwrap();
        prop_assert_eq!(m, a);
    }

    #[test]
    fn multiset_len_is_additive(a in arb_multiset(), b in arb_multiset()) {
        let mut m = a.clone();
        m.add_all(&b);
        prop_assert_eq!(m.len(), a.len() + b.len());
    }

    #[test]
    fn selection_count_zero_iff_not_contained(a in arb_multiset(), b in arb_multiset()) {
        let count = a.selection_count(&b);
        prop_assert_eq!(count > 0, a.contains(&b));
    }

    #[test]
    fn binomial_pascal_identity(n in 1u64..40, k in 0u64..40) {
        // C(n,k) = C(n-1,k-1) + C(n-1,k)
        let lhs = binomial(n, k);
        let rhs = if k == 0 { 1 } else { binomial(n - 1, k - 1) + binomial(n - 1, k) };
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn flat_match_count_equals_binomial_product(state in arb_multiset(), pat in arb_multiset()) {
        let term = Term::from_atoms(state.clone());
        let pattern = Pattern::atoms(pat.clone());
        let expected: u64 = pat
            .iter()
            .map(|(s, k)| binomial(state.count(s), k))
            .product();
        prop_assert_eq!(match_count(&term, &pattern), expected);
    }

    #[test]
    fn flat_rewrite_preserves_untouched_species(
        state in arb_multiset(),
        lhs in arb_multiset(),
        rhs in arb_multiset(),
    ) {
        let mut term = Term::from_atoms(state.clone());
        let rule = Rule {
            name: "prop".into(),
            site: Label::TOP,
            lhs: Pattern::atoms(lhs.clone()),
            rhs: Production::atoms(rhs.clone()),
            rate: 1.0,
            law: RateLaw::MassAction,
        };
        let applicable = state.contains(&lhs);
        let result = apply_at(&mut term, &rule, &Path::root(), &[]);
        prop_assert_eq!(result.is_ok(), applicable);
        if applicable {
            // Conservation: out = in - lhs + rhs, per species.
            for s in (0..6).map(Species::from_raw) {
                let expected = state.count(s) - lhs.count(s) + rhs.count(s);
                prop_assert_eq!(term.atoms.count(s), expected);
            }
        } else {
            prop_assert_eq!(&term.atoms, &state); // untouched on failure
        }
    }

    #[test]
    fn comp_match_count_equals_assignment_weights(
        cells in proptest::collection::vec((arb_multiset(), arb_multiset()), 0..5),
        wrap_pat in arb_multiset(),
        atom_pat in arb_multiset(),
    ) {
        let mut term = Term::new();
        for (wrap, atoms) in &cells {
            term.add_compartment(Compartment::new(
                Label::from_raw(0),
                wrap.clone(),
                Term::from_atoms(atoms.clone()),
            ));
        }
        let pattern = Pattern {
            atoms: Multiset::new(),
            comps: vec![cwc_repro::cwc::rule::CompPattern {
                label: Label::from_raw(0),
                wrap: wrap_pat.clone(),
                atoms: atom_pat.clone(),
            }],
        };
        // match_count must equal the sum over per-cell selection products —
        // the brute-force definition.
        let brute: u64 = cells
            .iter()
            .map(|(w, a)| w.selection_count(&wrap_pat) * a.selection_count(&atom_pat))
            .sum();
        prop_assert_eq!(match_count(&term, &pattern), brute);
        let total_weight: u64 = assignments(&term, &pattern).iter().map(|(_, w)| *w).sum();
        prop_assert_eq!(total_weight, brute);
    }

    #[test]
    fn wire_roundtrip_arbitrary_batches(
        instance in any::<u64>(),
        events in any::<u64>(),
        finished in any::<bool>(),
        samples in proptest::collection::vec(
            (0.0f64..1e6, proptest::collection::vec(any::<u64>(), 0..5)),
            0..20
        ),
    ) {
        let batch = SampleBatch { instance, samples, events, finished };
        let bytes = to_bytes(&batch);
        let back: SampleBatch = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn wire_never_panics_on_corrupted_input(
        mut bytes in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<u8>(),
    ) {
        // Arbitrary bytes: decoding must fail gracefully, never panic.
        let _ = from_bytes::<SampleBatch>(&bytes);
        // Corrupt a valid message.
        let valid = to_bytes(&SampleBatch {
            instance: 1,
            samples: vec![(1.0, vec![2, 3])],
            events: 4,
            finished: false,
        });
        bytes = valid;
        if !bytes.is_empty() {
            let idx = flip as usize % bytes.len();
            bytes[idx] ^= 0x5A;
            let _ = from_bytes::<SampleBatch>(&bytes); // no panic
        }
    }

    #[test]
    fn welford_merge_is_associative_enough(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let whole: Running = xs.iter().copied().collect();
        let mut merged: Running = xs[..split].iter().copied().collect();
        let right: Running = xs[split..].iter().copied().collect();
        merged.merge(&right);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((merged.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn sliding_window_covers_stream_without_loss(
        width in 1usize..8,
        slide_raw in 1usize..8,
        n in 0usize..50,
    ) {
        let slide = slide_raw.min(width);
        let mut w = SlidingWindow::new(width, slide);
        let mut seen = Vec::new();
        for i in 0..n {
            if let Some(win) = w.push(i) {
                seen.extend(win);
            }
        }
        if let Some(win) = w.flush() {
            seen.extend(win);
        }
        // Every item must appear in at least one emitted window.
        let mut covered = vec![false; n];
        for &i in &seen {
            covered[i] = true;
        }
        prop_assert!(covered.iter().all(|&c| c), "width={width} slide={slide} n={n}");
    }

    #[test]
    fn ssa_decay_step_count_equals_initial_population(n0 in 1u64..60, seed in any::<u64>()) {
        let model = Arc::new(cwc_repro::biomodels::simple::decay(n0, 1.0));
        let mut e = EngineKind::Ssa.build(model, seed, 0).expect("ssa builds");
        let fired = e.run_until(1e9);
        prop_assert_eq!(fired, n0);
    }

    #[test]
    fn tau_leap_never_produces_negative_species_counts(
        n0 in 0u64..40,
        birth in 0.5f64..30.0,
        death in 0.1f64..8.0,
        tau in 0.01f64..2.0,
        seed in any::<u64>(),
    ) {
        // Aggressive leap lengths on small populations hammer the
        // negativity-halving path; the committed state must stay a valid
        // species-count vector at every quantum boundary.
        let model = Arc::new(cwc_repro::biomodels::simple::birth_death(birth, death, n0));
        let mut e = TauLeapEngine::new(model, seed, 0)
            .expect("flat model")
            .with_tau(tau);
        let mut clock = SampleClock::new(0.0, 0.5);
        for k in 1..=8 {
            e.run_sampled(k as f64 * 0.5, &mut clock, |_, values| {
                // Observables report committed counts, never a negative
                // value cast to u64.
                assert!(values[0] < u64::MAX / 2);
            });
            prop_assert!(
                e.counts().iter().all(|&c| c >= 0),
                "negative state {:?} (tau {tau})",
                e.counts()
            );
        }
    }

    #[test]
    fn tau_leap_trajectories_are_slicing_invariant(
        n0 in 1u64..30,
        tau in 0.02f64..0.5,
        cut in 0.05f64..3.95,
        seed in any::<u64>(),
    ) {
        // One arbitrary quantum boundary must not change the committed
        // trajectory: pending leaps are held, never re-drawn.
        let model = Arc::new(cwc_repro::biomodels::simple::birth_death(20.0, 1.0, n0));
        let mut whole = TauLeapEngine::new(Arc::clone(&model), seed, 1)
            .expect("flat model")
            .with_tau(tau);
        let mut wc = SampleClock::new(0.0, 0.25);
        let mut ws = Vec::new();
        whole.run_sampled(4.0, &mut wc, |t, v| ws.push((t, v.to_vec())));

        let mut sliced = TauLeapEngine::new(model, seed, 1)
            .expect("flat model")
            .with_tau(tau);
        let mut sc = SampleClock::new(0.0, 0.25);
        let mut ss = Vec::new();
        sliced.run_sampled(cut, &mut sc, |t, v| ss.push((t, v.to_vec())));
        sliced.run_sampled(4.0, &mut sc, |t, v| ss.push((t, v.to_vec())));

        prop_assert_eq!(ws, ss);
        prop_assert_eq!(whole.counts(), sliced.counts());
        prop_assert_eq!(whole.firings(), sliced.firings());
        prop_assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn adaptive_tau_trajectories_are_slicing_invariant(
        n0 in 1u64..400,
        birth in 5.0f64..300.0,
        epsilon in 0.01f64..0.2,
        cut in 0.05f64..3.95,
        seed in any::<u64>(),
    ) {
        // The adaptive engine's transition schedule (leaps, critical
        // firings and SSA fallbacks alike) must not move when a quantum
        // boundary lands at an arbitrary point: pending transitions are
        // held, never re-drawn.
        let model = Arc::new(cwc_repro::biomodels::simple::birth_death(birth, 1.0, n0));
        let mut whole = AdaptiveTauEngine::new(Arc::clone(&model), seed, 1)
            .expect("flat model")
            .with_epsilon(epsilon);
        let mut wc = SampleClock::new(0.0, 0.25);
        let mut ws = Vec::new();
        whole.run_sampled(4.0, &mut wc, |t, v| ws.push((t, v.to_vec())));

        let mut sliced = AdaptiveTauEngine::new(model, seed, 1)
            .expect("flat model")
            .with_epsilon(epsilon);
        let mut sc = SampleClock::new(0.0, 0.25);
        let mut ss = Vec::new();
        sliced.run_sampled(cut, &mut sc, |t, v| ss.push((t, v.to_vec())));
        sliced.run_sampled(4.0, &mut sc, |t, v| ss.push((t, v.to_vec())));

        prop_assert_eq!(ws, ss);
        prop_assert_eq!(whole.counts(), sliced.counts());
        prop_assert_eq!(whole.firings(), sliced.firings());
        prop_assert_eq!(whole.leaps(), sliced.leaps());
        prop_assert_eq!(whole.exact_steps(), sliced.exact_steps());
        prop_assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn adaptive_tau_never_produces_negative_species_counts(
        n0 in 0u64..60,
        birth in 0.5f64..50.0,
        death in 0.1f64..10.0,
        epsilon in 0.01f64..0.5,
        seed in any::<u64>(),
    ) {
        // Small populations hammer the critical-reaction partition and
        // the negativity-halving redraw; the committed state must stay a
        // valid species-count vector at every quantum boundary.
        let model = Arc::new(cwc_repro::biomodels::simple::birth_death(birth, death, n0));
        let mut e = AdaptiveTauEngine::new(model, seed, 0)
            .expect("flat model")
            .with_epsilon(epsilon);
        let mut clock = SampleClock::new(0.0, 0.5);
        for k in 1..=8 {
            e.run_sampled(k as f64 * 0.5, &mut clock, |_, values| {
                assert!(values[0] < u64::MAX / 2);
            });
            prop_assert!(
                e.counts().iter().all(|&c| c >= 0),
                "negative state {:?} (epsilon {epsilon})",
                e.counts()
            );
        }
    }

    #[test]
    fn first_reaction_couples_bit_for_bit_with_direct_method(
        n0 in 1u64..50,
        rate in 0.05f64..4.0,
        seed in any::<u64>(),
    ) {
        // Single-channel model + shared instance stream ⇒ the two exact
        // methods consume randomness identically (the draw discipline
        // documented in gillespie::rng) ⇒ identical trajectories,
        // bit for bit, under arbitrary quantum slicing.
        let model = Arc::new(cwc_repro::biomodels::simple::decay(n0, rate));
        let mut direct = EngineKind::Ssa
            .build(Arc::clone(&model), seed, 3)
            .expect("ssa builds");
        let mut frm = FirstReactionEngine::coupled(model, seed, 3);
        for t in [0.3, 1.1, 2.0, 4.5, 10.0] {
            direct.run_until(t);
            frm.run_until(t);
            prop_assert_eq!(direct.time(), frm.time());
            prop_assert_eq!(direct.observe(), frm.observe());
            prop_assert_eq!(direct.events(), frm.steps());
            prop_assert_eq!(direct.term(), Some(frm.term()));
        }
    }
}
