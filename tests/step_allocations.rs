//! Steady-state `step()` is allocation-free (PR 3 acceptance).
//!
//! A counting global allocator (thread-local counters, so parallel test
//! threads don't interfere) wraps the system allocator; after a warm-up
//! that grows every reusable buffer to its steady-state capacity, a long
//! run of exact-engine steps must perform zero heap allocations — on the
//! flat *and* the compartmentalised Neurospora model, for both the direct
//! and the first-reaction method.
//!
//! What makes this hold: propensities live in the incrementally-updated
//! reaction table (no per-step `Vec<Reaction>`), sites travel as dense
//! `SiteId`s (no `Path` clones), the assignment choice streams through
//! reused scratch buffers, and `apply_at` keeps its fate table on the
//! stack. Multiset updates mutate existing B-tree nodes in place; a node
//! allocation could only occur if a species' count crossed zero in a way
//! that empties or splits a node, which does not happen in these
//! steady-state regimes (the assertion would catch it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use cwc_repro::biomodels::{
    neurospora_compartments, neurospora_flat, schlogl, NeurosporaParams, SchloglParams,
};
use cwc_repro::gillespie::engine::{EngineKind, EngineStep};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn assert_alloc_free_steps(
    kind: EngineKind,
    model: Arc<cwc_repro::cwc::model::Model>,
    label: &str,
) {
    let mut engine = kind.build(model, 7, 0).expect("engine builds");
    // Warm up: reach the steady-state regime and grow every buffer.
    for _ in 0..20_000 {
        engine.step();
    }
    let before = allocations();
    let mut fired = 0u64;
    for _ in 0..5_000 {
        match engine.step() {
            EngineStep::Advanced { .. } => fired += 1,
            EngineStep::Exhausted => break,
        }
    }
    let after = allocations();
    assert!(fired > 0, "{label}: no steps fired");
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations in {fired} steady-state steps",
        after - before
    );
}

#[test]
fn ssa_step_is_allocation_free_on_compartment_model() {
    let model = Arc::new(neurospora_compartments(NeurosporaParams::default()));
    assert_alloc_free_steps(EngineKind::Ssa, model, "neurospora_compartments/ssa");
}

#[test]
fn first_reaction_step_is_allocation_free_on_compartment_model() {
    let model = Arc::new(neurospora_compartments(NeurosporaParams::default()));
    assert_alloc_free_steps(
        EngineKind::FirstReaction,
        model,
        "neurospora_compartments/first-reaction",
    );
}

#[test]
fn ssa_step_is_allocation_free_on_flat_models() {
    assert_alloc_free_steps(
        EngineKind::Ssa,
        Arc::new(neurospora_flat(NeurosporaParams::default())),
        "neurospora_flat/ssa",
    );
    assert_alloc_free_steps(
        EngineKind::Ssa,
        Arc::new(schlogl(SchloglParams::default())),
        "schlogl/ssa",
    );
}
