//! The TCP shard transport's core contract, end-to-end against real
//! `cwc-workerd` daemon processes on loopback:
//!
//! - a farm of 2–3 daemons produces **bit-for-bit** the same merged
//!   report (`StatRow`s, event count *and* the mergeable `RunSummary`,
//!   compared by its wire encoding) as the single-process runner and as
//!   the local `ProcessTransport` — for every engine kind, the batched
//!   SoA tier included, and every shard count;
//! - a worker killed mid-run (SIGKILL, no protocol goodbye) is detected
//!   and its slice requeued onto a *surviving* worker, and the merged
//!   report is still bit-for-bit identical;
//! - worker placement is recorded (`TcpShardTransport::placements`), so
//!   the requeue-onto-survivor policy is observable, not inferred.
//!
//! Each daemon is spawned with `--listen 127.0.0.1:0` and its ephemeral
//! port parsed from the `cwc-workerd listening on <addr>` stdout line —
//! the same discovery the CI loopback-cluster leg uses.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use cwc_repro::biomodels;
use cwc_repro::cwc::model::Model;
use cwc_repro::cwcsim::{
    run_simulation, run_simulation_sharded_with, EngineKind, InProcessTransport, SimConfig,
    SimReport, Steering, TransportKind,
};
use cwc_repro::distrt::net::TcpShardTransport;
use cwc_repro::distrt::shard::ProcessTransport;
use cwc_repro::distrt::wire;

/// One spawned `cwc-workerd` child on an ephemeral loopback port.
/// Killed on drop so no daemon outlives its test.
struct Workerd {
    child: Child,
    addr: String,
}

impl Workerd {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cwc-workerd"))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn cwc-workerd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("workerd announces its address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("addr token")
            .to_string();
        assert!(
            line.contains("listening on") && addr.contains(':'),
            "unexpected announcement: {line:?}"
        );
        Workerd { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Workerd {
    fn drop(&mut self) {
        self.kill();
    }
}

fn cfg() -> SimConfig {
    SimConfig::new(7, 2.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(2)
        .stat_workers(2)
        .window(4, 2)
        .seed(101)
        .shard_backoff(0.0, 0.0)
}

fn tcp_cfg(base: &SimConfig, shards: usize, daemons: &[Workerd]) -> SimConfig {
    base.clone()
        .shards(shards)
        .transport(TransportKind::Tcp)
        .workers(daemons.iter().map(|d| d.addr.clone()).collect())
        .connect_timeout(10.0)
}

fn run_tcp(model: &Arc<Model>, cfg: &SimConfig) -> (SimReport, TcpShardTransport) {
    let mut transport = TcpShardTransport::from_config(cfg);
    let report =
        run_simulation_sharded_with(Arc::clone(model), cfg, &Steering::new(), &mut transport)
            .expect("tcp run");
    (report, transport)
}

/// The portable bit-for-bit contract: merged `StatRow`s and the event
/// count are identical regardless of deployment (single process,
/// in-process shards, child processes, TCP farm).
fn assert_rows_identical(a: &SimReport, b: &SimReport, label: &str) {
    assert_eq!(a.rows, b.rows, "{label}: rows diverged");
    assert_eq!(a.events, b.events, "{label}: event counts diverged");
}

/// Whole-report bit-for-bit equality, including the merged `RunSummary`
/// compared through its canonical wire encoding. The summary folds one
/// partial cut per shard, so its bytes are only comparable between runs
/// with the *same* shard count — rows and events are comparable across
/// any deployment (see [`assert_rows_identical`]).
fn assert_reports_identical(a: &SimReport, b: &SimReport, label: &str) {
    assert_rows_identical(a, b, label);
    assert_eq!(
        wire::to_bytes(&a.summary),
        wire::to_bytes(&b.summary),
        "{label}: merged summaries diverged"
    );
}

/// The loopback-cluster matrix: every engine kind × shards {1, 2, 3}
/// against two live daemons, asserted bit-for-bit against the
/// single-process runner — and, per kind, against the local
/// `ProcessTransport` too, so all three deployments agree exactly.
#[test]
fn tcp_farm_agrees_bit_for_bit_across_the_matrix() {
    let daemons = [Workerd::spawn(), Workerd::spawn()];
    let model = Arc::new(biomodels::simple::decay(60, 1.0));
    let kinds = [
        EngineKind::Ssa,
        EngineKind::TauLeap { tau: 0.05 },
        EngineKind::FirstReaction,
        EngineKind::AdaptiveTau { epsilon: 0.05 },
        EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 8.0,
        },
        EngineKind::Batched { width: 3 },
    ];
    for kind in kinds {
        let base = cfg().engine(kind);
        let single = run_simulation(Arc::clone(&model), &base)
            .unwrap_or_else(|e| panic!("{kind}: single-process reference failed: {e}"));
        assert!(!single.rows.is_empty(), "{kind}: empty reference");

        // The same slices through local child processes, for the
        // three-way agreement below.
        let mut process = ProcessTransport::new().expect("cwc-shard built alongside this test");
        let via_process = run_simulation_sharded_with(
            Arc::clone(&model),
            &base.clone().shards(3),
            &Steering::new(),
            &mut process,
        )
        .unwrap_or_else(|e| panic!("{kind}: process-transport run failed: {e}"));
        assert_rows_identical(&via_process, &single, &format!("{kind}/process"));

        for shards in [1usize, 2, 3] {
            let label = format!("{kind}/tcp/shards={shards}");
            let sharded_cfg = tcp_cfg(&base, shards, &daemons);
            // Same shard count through the in-process transport: the
            // reference for whole-report (summary included) equality.
            let in_process = run_simulation_sharded_with(
                Arc::clone(&model),
                &sharded_cfg,
                &Steering::new(),
                &mut InProcessTransport,
            )
            .unwrap_or_else(|e| panic!("{label}: in-process reference failed: {e}"));

            let (report, transport) = run_tcp(&model, &sharded_cfg);
            assert_rows_identical(&report, &single, &label);
            assert_reports_identical(&report, &in_process, &label);
            if shards == 3 {
                assert_reports_identical(&report, &via_process, &label);
            }
            // Every shard was placed exactly once, all on first attempts.
            let placements = transport.placements();
            assert_eq!(placements.len(), shards, "{label}: {placements:?}");
            assert!(placements.iter().all(|p| p.attempt == 0), "{label}");
        }
    }
}

/// A worker that dies without a goodbye — SIGKILL mid-run — must not
/// poison the run: its slices are requeued onto the surviving daemons
/// and the merged report stays bit-for-bit identical. (If the run wins
/// the race and finishes before the kill lands, the assertion holds
/// trivially — either timing is a pass; the *deterministic* worker
/// death is exercised by the fault-injection matrix.)
#[test]
fn sigkill_mid_run_recovers_bit_for_bit_on_survivors() {
    // A heavier run than the matrix so the kill usually lands mid-run.
    let base = cfg();
    let mut heavy = base.clone().seed(9001);
    heavy.instances = 24;
    let model = Arc::new(biomodels::simple::decay(120, 1.0));
    let single = run_simulation(Arc::clone(&model), &heavy).expect("reference");

    let mut daemons = vec![Workerd::spawn(), Workerd::spawn(), Workerd::spawn()];
    let run_cfg = tcp_cfg(&heavy, 3, &daemons).retries(2).shard_timeout(10.0);

    let victim_pid = daemons[0].child.id();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        // SIGKILL by pid: no drop handler involved, no clean shutdown.
        let _ = Command::new("kill")
            .args(["-9", &victim_pid.to_string()])
            .status();
    });

    let (report, transport) = run_tcp(&model, &run_cfg);
    killer.join().unwrap();
    assert_rows_identical(&report, &single, "sigkill/tcp");

    // Any requeued slice must have moved to a different worker than its
    // previous attempt — the transport records every placement.
    let placements = transport.placements();
    for p in placements.iter().filter(|p| p.attempt > 0) {
        let prev = placements
            .iter()
            .find(|q| q.shard == p.shard && q.attempt == p.attempt - 1)
            .unwrap_or_else(|| panic!("missing prior attempt for {p:?}"));
        assert_ne!(
            p.worker, prev.worker,
            "retry stayed on the dead worker: {placements:?}"
        );
    }
    for d in &mut daemons {
        d.kill();
    }
}

/// Killing *every* worker mid-run must end in a typed error, never a
/// hang: with no survivor left, the requeue exhausts the (dead)
/// registry and surfaces a typed `ShardError`.
#[test]
fn killing_every_worker_is_a_typed_error_not_a_hang() {
    use cwc_repro::cwcsim::SimError;

    let mut heavy = cfg().seed(4242);
    heavy.instances = 24;
    let model = Arc::new(biomodels::simple::decay(120, 1.0));
    let mut daemons = vec![Workerd::spawn(), Workerd::spawn()];
    let run_cfg = tcp_cfg(&heavy, 2, &daemons).retries(3).connect_timeout(2.0);

    let pids: Vec<u32> = daemons.iter().map(|d| d.child.id()).collect();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        for pid in pids {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        }
    });

    let started = std::time::Instant::now();
    let mut transport = TcpShardTransport::from_config(&run_cfg);
    let result = run_simulation_sharded_with(
        Arc::clone(&model),
        &run_cfg,
        &Steering::new(),
        &mut transport,
    );
    killer.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "run did not terminate promptly: {:?}",
        started.elapsed()
    );
    match result {
        // The kill can lose the race on a fast machine — a completed
        // run must then still be bit-for-bit.
        Ok(report) => {
            let single = run_simulation(Arc::clone(&model), &heavy).expect("reference");
            assert_rows_identical(&report, &single, "all-killed-but-finished");
        }
        Err(SimError::Shard(e)) => {
            assert!(!e.to_string().is_empty());
        }
        Err(other) => panic!("expected a shard error, got {other}"),
    }
    for d in &mut daemons {
        d.kill();
    }
}
