//! Integration: statistical validation of the stochastic engine against
//! closed-form results, through the *full* pipeline (not just the engine).

use std::sync::Arc;

use cwc_repro::biomodels;
use cwc_repro::cwcsim::{run_simulation, EngineKind, SimConfig, StatEngineKind};

#[test]
fn decay_ensemble_mean_follows_exponential() {
    // E[A(t)] = n0 e^{-kt}; with 64 trajectories of 200 molecules the
    // standard error of the ensemble mean is ≈ sqrt(n0 p (1-p) / 64) < 2.
    let n0 = 200u64;
    let k = 1.0;
    let model = Arc::new(biomodels::simple::decay(n0, k));
    let cfg = SimConfig::new(64, 2.0)
        .quantum(0.5)
        .sample_period(0.5)
        .sim_workers(4)
        .seed(31);
    let report = run_simulation(model, &cfg).unwrap();
    for row in &report.rows {
        let expected = n0 as f64 * (-k * row.time).exp();
        let p = (-k * row.time).exp();
        let se = (n0 as f64 * p * (1.0 - p) / 64.0).sqrt().max(0.5);
        assert!(
            (row.observables[0].mean - expected).abs() < 6.0 * se,
            "t = {}: mean {} vs expected {expected} (se {se})",
            row.time,
            row.observables[0].mean
        );
    }
}

#[test]
fn birth_death_stationary_mean_and_variance_are_poisson() {
    // Stationary law is Poisson(birth/death): mean = variance = 40.
    let model = Arc::new(biomodels::simple::birth_death(40.0, 1.0, 40));
    let cfg = SimConfig::new(96, 12.0)
        .quantum(1.0)
        .sample_period(1.0)
        .sim_workers(4)
        .stat_workers(2)
        .seed(8);
    let report = run_simulation(model, &cfg).unwrap();
    // Average the post-burn-in rows.
    let late: Vec<_> = report.rows.iter().filter(|r| r.time >= 6.0).collect();
    let mean: f64 = late.iter().map(|r| r.observables[0].mean).sum::<f64>() / late.len() as f64;
    let var: f64 = late.iter().map(|r| r.observables[0].variance).sum::<f64>() / late.len() as f64;
    assert!((mean - 40.0).abs() < 3.0, "stationary mean {mean}");
    assert!((var - 40.0).abs() < 15.0, "stationary variance {var}");
}

#[test]
fn schlogl_bimodality_is_visible_to_kmeans_engine() {
    let model = Arc::new(biomodels::schlogl(biomodels::SchloglParams::default()));
    let cfg = SimConfig::new(48, 8.0)
        .quantum(1.0)
        .sample_period(2.0)
        .sim_workers(4)
        .stat_workers(2)
        .engines(vec![
            StatEngineKind::MeanVariance,
            StatEngineKind::KMeans { k: 2 },
        ])
        .seed(55);
    let report = run_simulation(model, &cfg).unwrap();
    let last = report.rows.last().unwrap();
    let centroids = &last.observables[0].centroids;
    assert_eq!(centroids.len(), 2);
    assert!(
        centroids[1] - centroids[0] > 150.0,
        "k-means should separate the Schlögl basins: {centroids:?}"
    );
}

#[test]
fn tau_leap_means_track_exact_ssa_on_schlogl() {
    // The approximate integrator must track the exact one's ensemble mean
    // on the bistable Schlögl system: same per-row comparison through the
    // full pipeline, tolerance set by the ensemble spread (the two basins
    // make the per-row sd large, so the bound is on the standard error of
    // the difference of two 48-trajectory ensemble means).
    let model = Arc::new(biomodels::schlogl(biomodels::SchloglParams::default()));
    let cfg = SimConfig::new(48, 6.0)
        .quantum(0.5)
        .sample_period(0.5)
        .sim_workers(4)
        .stat_workers(2)
        .seed(7);
    let exact = run_simulation(Arc::clone(&model), &cfg).unwrap();
    let leap = run_simulation(
        Arc::clone(&model),
        &cfg.clone().engine(EngineKind::TauLeap { tau: 0.01 }),
    )
    .unwrap();
    assert_eq!(exact.rows.len(), leap.rows.len());
    for (e, l) in exact.rows.iter().zip(&leap.rows) {
        assert_eq!(e.time, l.time);
        let se = ((e.observables[0].variance + l.observables[0].variance) / 48.0)
            .sqrt()
            .max(1.0);
        let diff = (e.observables[0].mean - l.observables[0].mean).abs();
        assert!(
            diff < 6.0 * se,
            "t = {}: tau-leap mean {} vs exact {} (se {se})",
            e.time,
            l.observables[0].mean,
            e.observables[0].mean
        );
    }
}

#[test]
fn adaptive_tau_and_hybrid_means_track_exact_ssa_on_schlogl() {
    // The adaptive and hybrid integrators must track the exact ensemble
    // mean on the bistable Schlögl system — the hard case, where a leap
    // that disturbs the basin balance shows up immediately as mean drift.
    // Same per-row comparison as the fixed-tau test, with the bound on the
    // standard error of the difference of the two 48-trajectory ensemble
    // means.
    let model = Arc::new(biomodels::schlogl(biomodels::SchloglParams::default()));
    let cfg = SimConfig::new(48, 6.0)
        .quantum(0.5)
        .sample_period(0.5)
        .sim_workers(4)
        .stat_workers(2)
        .seed(7);
    let exact = run_simulation(Arc::clone(&model), &cfg).unwrap();
    for kind in [
        EngineKind::AdaptiveTau { epsilon: 0.03 },
        EngineKind::Hybrid {
            epsilon: 0.03,
            threshold: 8.0,
        },
    ] {
        let approx = run_simulation(Arc::clone(&model), &cfg.clone().engine(kind)).unwrap();
        assert_eq!(exact.rows.len(), approx.rows.len(), "{kind}");
        for (e, a) in exact.rows.iter().zip(&approx.rows) {
            assert_eq!(e.time, a.time, "{kind}");
            let se = ((e.observables[0].variance + a.observables[0].variance) / 48.0)
                .sqrt()
                .max(1.0);
            let diff = (e.observables[0].mean - a.observables[0].mean).abs();
            assert!(
                diff < 6.0 * se,
                "{kind} t = {}: mean {} vs exact {} (se {se})",
                e.time,
                a.observables[0].mean,
                e.observables[0].mean
            );
        }
    }
}

#[test]
fn first_reaction_means_track_exact_ssa_on_decay() {
    // Both exact integrators must agree with the closed form through the
    // full pipeline.
    let n0 = 200u64;
    let model = Arc::new(biomodels::simple::decay(n0, 1.0));
    let cfg = SimConfig::new(64, 2.0)
        .quantum(0.5)
        .sample_period(0.5)
        .sim_workers(4)
        .seed(31)
        .engine(EngineKind::FirstReaction);
    let report = run_simulation(model, &cfg).unwrap();
    for row in &report.rows {
        let p = (-row.time).exp();
        let expected = n0 as f64 * p;
        let se = (n0 as f64 * p * (1.0 - p) / 64.0).sqrt().max(0.5);
        assert!(
            (row.observables[0].mean - expected).abs() < 6.0 * se,
            "t = {}: mean {} vs expected {expected}",
            row.time,
            row.observables[0].mean
        );
    }
}

#[test]
fn michaelis_menten_mass_balance_holds_in_every_row() {
    let p = biomodels::MichaelisMentenParams::default();
    let model = Arc::new(biomodels::michaelis_menten(p));
    let cfg = SimConfig::new(16, 5.0)
        .quantum(1.0)
        .sample_period(0.5)
        .sim_workers(3)
        .seed(12);
    let report = run_simulation(model, &cfg).unwrap();
    for row in &report.rows {
        // Means of S + ES + P and E + ES are conserved exactly (the
        // conservation holds per trajectory, hence for the mean).
        let s = row.observables[0].mean;
        let e = row.observables[1].mean;
        let es = row.observables[2].mean;
        let prod = row.observables[3].mean;
        assert!((s + es + prod - p.substrate0 as f64).abs() < 1e-9);
        assert!((e + es - p.enzyme0 as f64).abs() < 1e-9);
    }
}

#[test]
fn neurospora_short_run_is_alive_and_bounded() {
    // Smoke-level dynamics check (the full period analysis lives in the
    // biomodels unit tests and the neurospora example).
    let model = Arc::new(biomodels::neurospora_flat(
        biomodels::NeurosporaParams::default(),
    ));
    let cfg = SimConfig::new(4, 30.0)
        .quantum(2.0)
        .sample_period(1.0)
        .sim_workers(2)
        .seed(3);
    let report = run_simulation(model, &cfg).unwrap();
    assert!(
        report.events > 1000,
        "the clock should tick: {}",
        report.events
    );
    for row in &report.rows {
        assert!(row.observables[0].max < 10_000.0, "mRNA bounded");
    }
}
