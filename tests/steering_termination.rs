//! `Steering::terminate` mid-run, single-process *and* sharded: the
//! drained report must be a prefix-consistent subset of the full run —
//! whatever grid times made it out carry exactly the rows the full run
//! produced for those times, in the same order.
//!
//! Per-cut analysis makes this exact: a `StatRow` depends only on its
//! own cut, so however early the pipeline drains, the emitted rows match
//! the full run's leading rows bit-for-bit. The termination instant is
//! racy by nature; the assertion is prefix equality, which holds for
//! *any* landing point (including "before anything" and "after
//! everything").

use std::sync::Arc;
use std::time::Duration;

use cwc_repro::biomodels;
use cwc_repro::cwc::model::Model;
use cwc_repro::cwcsim::{
    run_simulation, run_simulation_steered, EngineKind, SimConfig, SimReport, Steering,
};
use cwc_repro::distrt::shard::run_simulation_sharded_steered;

fn engine_kinds() -> Vec<EngineKind> {
    vec![
        EngineKind::Ssa,
        EngineKind::TauLeap { tau: 0.05 },
        EngineKind::FirstReaction,
        EngineKind::AdaptiveTau { epsilon: 0.05 },
        EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 8.0,
        },
    ]
}

/// Busy enough that a few-ms termination usually lands mid-simulation
/// (birth–death never absorbs, so every quantum does real work).
fn model() -> Arc<Model> {
    Arc::new(biomodels::simple::birth_death(400.0, 1.0, 200))
}

fn cfg(kind: EngineKind) -> SimConfig {
    SimConfig::new(12, 10.0)
        .quantum(0.25)
        .sample_period(0.125)
        .sim_workers(2)
        .stat_workers(2)
        .window(4, 2)
        .seed(77)
        .engine(kind)
}

fn assert_prefix(kind: EngineKind, label: &str, drained: &SimReport, full: &SimReport) {
    assert!(
        drained.rows.len() <= full.rows.len(),
        "{label}/{kind}: drained {} rows, full run only {}",
        drained.rows.len(),
        full.rows.len()
    );
    assert_eq!(
        drained.rows[..],
        full.rows[..drained.rows.len()],
        "{label}/{kind}: drained rows are not a prefix of the full run"
    );
    assert!(
        drained.events <= full.events,
        "{label}/{kind}: drained counted more events than the full run"
    );
}

/// Fires `terminate` from another thread shortly after the run starts.
fn terminate_after(steering: &Steering, delay: Duration) -> std::thread::JoinHandle<()> {
    let s = steering.clone();
    std::thread::spawn(move || {
        std::thread::sleep(delay);
        s.terminate();
    })
}

#[test]
fn single_process_termination_drains_a_prefix_for_every_engine_kind() {
    for kind in engine_kinds() {
        let cfg = cfg(kind);
        let full = run_simulation(model(), &cfg).unwrap();
        assert!(!full.rows.is_empty());
        let steering = Steering::new();
        let killer = terminate_after(&steering, Duration::from_millis(8));
        let drained = run_simulation_steered(model(), &cfg, &steering).unwrap();
        killer.join().unwrap();
        assert_prefix(kind, "single", &drained, &full);
    }
}

#[test]
fn sharded_termination_drains_a_prefix_for_every_engine_kind() {
    for kind in engine_kinds() {
        let cfg = cfg(kind).shards(2);
        let full = run_simulation(model(), &cfg).unwrap();
        let steering = Steering::new();
        let killer = terminate_after(&steering, Duration::from_millis(8));
        // shards = 2: real cwc-shard child processes; terminate reaches
        // them as a Terminate control frame on stdin.
        let drained = run_simulation_sharded_steered(model(), &cfg, &steering).unwrap();
        killer.join().unwrap();
        assert_prefix(kind, "sharded", &drained, &full);
    }
}

#[test]
fn termination_before_start_yields_an_empty_but_valid_report() {
    let cfg = cfg(EngineKind::Ssa);
    let steering = Steering::new();
    steering.terminate();
    let drained = run_simulation_steered(model(), &cfg, &steering).unwrap();
    assert!(drained.rows.is_empty());
    let sharded = run_simulation_sharded_steered(model(), &cfg.shards(2), &steering).unwrap();
    assert!(sharded.rows.is_empty());
}
