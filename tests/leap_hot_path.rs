//! Hot-path equivalence suite for the kernel-accelerated leap tier.
//!
//! The adaptive engine keeps criticality flags, the total propensity and
//! the CGP accumulators *incrementally* (epoch-stamped, riding the
//! incidence lists) and routes its full-width folds through the
//! runtime-dispatched kernel layer. None of that is allowed to be
//! observable: this suite pins the incremental engine against its
//! full-recompute replica — same draws, same samples, same final state,
//! bit for bit — across the model zoo and both kernel dispatches, and
//! pins the hybrid and fixed tau-leap engines as dispatch-invariant on
//! the same zoo. CI runs the whole file twice (once with
//! `CWC_FORCE_SCALAR_KERNELS=1`), so the scalar reference path gets the
//! identical coverage on AVX2 hosts too.

use std::sync::Arc;

use proptest::prelude::*;

use cwc_repro::biomodels::{
    conversion_cycle, lotka_volterra, schlogl, LotkaVolterraParams, SchloglParams,
};
use cwc_repro::cwc::model::Model;
use cwc_repro::gillespie::{
    AdaptiveTauEngine, HybridEngine, KernelDispatch, SampleClock, TauLeapEngine,
};

/// Everything observable about one trajectory: the sampled stream (times
/// bit-exact via `to_bits`), the final observables, the clock, and the
/// event counters. Two engines agree iff their `Trace`s are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Trace {
    samples: Vec<(u64, Vec<u64>)>,
    finals: Vec<u64>,
    time: u64,
    firings: u64,
    leaps: u64,
    exact_steps: u64,
}

/// Irregular quantum boundaries covering `[0, t_end]` — the slicing the
/// farm's scheduler could impose; nothing in a trace may depend on it.
fn quanta(t_end: f64) -> [f64; 5] {
    [
        0.17 * t_end,
        0.31 * t_end,
        0.55 * t_end,
        0.83 * t_end,
        t_end,
    ]
}

fn trace_adaptive(mut engine: AdaptiveTauEngine, t_end: f64) -> Trace {
    let mut clock = SampleClock::new(0.0, t_end / 16.0);
    let mut samples = Vec::new();
    let mut firings = 0;
    for t in quanta(t_end) {
        firings += engine.run_sampled(t, &mut clock, |ts, v| {
            samples.push((ts.to_bits(), v.to_vec()));
        });
    }
    Trace {
        samples,
        finals: engine.observe(),
        time: engine.time().to_bits(),
        firings,
        leaps: engine.leaps(),
        exact_steps: engine.exact_steps(),
    }
}

fn trace_hybrid(mut engine: HybridEngine, t_end: f64) -> Trace {
    let mut clock = SampleClock::new(0.0, t_end / 16.0);
    let mut samples = Vec::new();
    let mut firings = 0;
    for t in quanta(t_end) {
        firings += engine.run_sampled(t, &mut clock, |ts, v| {
            samples.push((ts.to_bits(), v.to_vec()));
        });
    }
    Trace {
        samples,
        finals: engine.observe(),
        time: engine.time().to_bits(),
        firings,
        leaps: engine.leaps(),
        exact_steps: engine.exact_steps(),
    }
}

fn trace_tau_leap(mut engine: TauLeapEngine, t_end: f64) -> Trace {
    let mut clock = SampleClock::new(0.0, t_end / 16.0);
    let mut samples = Vec::new();
    let mut firings = 0;
    for t in quanta(t_end) {
        firings += engine.run_sampled(t, &mut clock, |ts, v| {
            samples.push((ts.to_bits(), v.to_vec()));
        });
    }
    Trace {
        samples,
        finals: engine.observe(),
        time: engine.time().to_bits(),
        firings,
        leaps: engine.leaps(),
        exact_steps: 0,
    }
}

/// Runs the adaptive engine in all six refresh × dispatch combinations
/// and asserts one shared trace: {auto heuristic, forced incidence,
/// forced full recompute} × {Auto, Scalar}. Under the scalar CI leg Auto
/// resolves to the scalar kernels too — the equality is then trivially
/// between scalar runs, which is exactly the coverage that leg wants.
fn assert_adaptive_replicas_agree(model: &Arc<Model>, seed: u64, instance: u64, t_end: f64) {
    let build = || AdaptiveTauEngine::new(Arc::clone(model), seed, instance).unwrap();
    let reference = trace_adaptive(build().with_epsilon(0.05), t_end);
    assert!(
        reference.firings > 0 || reference.leaps == 0,
        "zoo case fired nothing"
    );
    let variants: [(&str, AdaptiveTauEngine); 5] = [
        (
            "full-recompute/auto",
            build().with_epsilon(0.05).with_full_recompute(),
        ),
        (
            "incidence/auto",
            build().with_epsilon(0.05).with_incidence_cache(),
        ),
        (
            "heuristic/scalar",
            build()
                .with_epsilon(0.05)
                .with_kernel_dispatch(KernelDispatch::Scalar),
        ),
        (
            "full-recompute/scalar",
            build()
                .with_epsilon(0.05)
                .with_full_recompute()
                .with_kernel_dispatch(KernelDispatch::Scalar),
        ),
        (
            "incidence/scalar",
            build()
                .with_epsilon(0.05)
                .with_incidence_cache()
                .with_kernel_dispatch(KernelDispatch::Scalar),
        ),
    ];
    for (what, engine) in variants {
        assert_eq!(
            trace_adaptive(engine, t_end),
            reference,
            "adaptive {what} diverged from heuristic/auto"
        );
    }
}

fn assert_hybrid_dispatch_invariant(model: &Arc<Model>, seed: u64, instance: u64, t_end: f64) {
    let build = || {
        HybridEngine::new(Arc::clone(model), seed, instance)
            .unwrap()
            .with_epsilon(0.05)
            .with_threshold(8.0)
    };
    let auto = trace_hybrid(build(), t_end);
    let scalar = trace_hybrid(build().with_kernel_dispatch(KernelDispatch::Scalar), t_end);
    assert_eq!(auto, scalar, "hybrid dispatch changed the trajectory");
}

fn assert_tau_leap_dispatch_invariant(
    model: &Arc<Model>,
    seed: u64,
    instance: u64,
    tau: f64,
    t_end: f64,
) {
    let build = || {
        TauLeapEngine::new(Arc::clone(model), seed, instance)
            .unwrap()
            .with_tau(tau)
    };
    let auto = trace_tau_leap(build(), t_end);
    let scalar = trace_tau_leap(build().with_kernel_dispatch(KernelDispatch::Scalar), t_end);
    assert_eq!(auto, scalar, "tau-leap dispatch changed the trajectory");
}

/// The deterministic zoo: the bench models plus conversion-cycle
/// structural extremes (minimal two-species cycle, absorbing-adjacent
/// sparse cycle, the all-critical wide regime, the leaping wide regime).
fn zoo() -> Vec<(&'static str, Arc<Model>, f64)> {
    vec![
        ("schlogl", Arc::new(schlogl(SchloglParams::default())), 1.5),
        (
            "lotka-volterra",
            Arc::new(lotka_volterra(LotkaVolterraParams::default())),
            2.0,
        ),
        ("cycle-2", Arc::new(conversion_cycle(2, 30, 2.0)), 1.0),
        ("cycle-3-sparse", Arc::new(conversion_cycle(3, 3, 1.0)), 1.0),
        (
            "cycle-wide-critical",
            Arc::new(conversion_cycle(48, 240, 1.0)),
            1.0,
        ),
        (
            "cycle-wide-leaping",
            Arc::new(conversion_cycle(40, 8_000, 1.0)),
            0.5,
        ),
    ]
}

#[test]
fn adaptive_replicas_agree_across_the_zoo() {
    for (name, model, t_end) in zoo() {
        for seed in [1, 7] {
            assert_adaptive_replicas_agree(&model, seed, seed ^ 3, t_end);
        }
        eprintln!("zoo ok: {name}");
    }
}

#[test]
fn hybrid_and_tau_leap_are_dispatch_invariant_across_the_zoo() {
    for (_name, model, t_end) in zoo() {
        assert_hybrid_dispatch_invariant(&model, 11, 2, t_end);
        assert_tau_leap_dispatch_invariant(&model, 11, 2, 0.02, t_end);
    }
}

proptest! {
    /// Random conversion-cycle structure: width from degenerate to wide,
    /// population from absorbing-adjacent to leap-regime, random rate and
    /// seeds. The incremental engine must match its full-recompute
    /// replica bit for bit on every one, under both dispatches.
    #[test]
    fn adaptive_replicas_agree_on_random_cycles(
        species in 2usize..24,
        copies_per_species in 0u64..300,
        rate in 0.2f64..3.0,
        seed in 0u64..1_000_000,
        instance in 0u64..64,
    ) {
        let copies = copies_per_species * species as u64;
        let model = Arc::new(conversion_cycle(species, copies, rate));
        assert_adaptive_replicas_agree(&model, seed, instance, 0.4);
    }

    /// The same structural sweep for the hybrid and fixed tau-leap
    /// engines' kernel-routed leap paths.
    #[test]
    fn hybrid_and_tau_leap_dispatch_invariant_on_random_cycles(
        species in 2usize..24,
        copies_per_species in 0u64..300,
        rate in 0.2f64..3.0,
        seed in 0u64..1_000_000,
    ) {
        let copies = copies_per_species * species as u64;
        let model = Arc::new(conversion_cycle(species, copies, rate));
        assert_hybrid_dispatch_invariant(&model, seed, 1, 0.4);
        assert_tau_leap_dispatch_invariant(&model, seed, 1, 0.05, 0.4);
    }
}
