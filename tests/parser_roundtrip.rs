//! Property: rendering a term with `Term::display` and re-parsing it as a
//! `term:` line yields the same tree (names permitting), and model files
//! survive a parse → rebuild cycle.

use proptest::prelude::*;

use cwc_repro::cwc::multiset::Multiset;
use cwc_repro::cwc::parse_model;
use cwc_repro::cwc::term::{Compartment, Term};

/// A small species vocabulary the parser can re-intern deterministically.
const SPECIES: [&str; 4] = ["A", "B", "C", "D"];
const LABELS: [&str; 2] = ["cell", "vesicle"];

#[derive(Debug, Clone)]
enum TermSpec {
    Atoms(Vec<(usize, u64)>),
    Nested(Vec<(usize, u64)>, usize, Box<TermSpec>),
}

fn arb_term_spec() -> impl Strategy<Value = TermSpec> {
    let atoms = proptest::collection::vec((0usize..4, 1u64..5), 0..4);
    atoms
        .clone()
        .prop_map(TermSpec::Atoms)
        .prop_recursive(3, 8, 2, move |inner| {
            (
                proptest::collection::vec((0usize..4, 1u64..5), 0..3),
                0usize..2,
                inner,
            )
                .prop_map(|(a, l, t)| TermSpec::Nested(a, l, Box::new(t)))
        })
}

fn build(spec: &TermSpec, model: &mut cwc_repro::cwc::model::Model) -> Term {
    match spec {
        TermSpec::Atoms(pairs) => {
            let ms: Multiset = pairs
                .iter()
                .map(|&(s, n)| (model.species(SPECIES[s]), n))
                .collect();
            Term::from_atoms(ms)
        }
        TermSpec::Nested(pairs, label, inner) => {
            let mut t = Term::new();
            let ms: Multiset = pairs
                .iter()
                .map(|&(s, n)| (model.species(SPECIES[s]), n))
                .collect();
            t.atoms.add_all(&ms);
            let content = build(inner, model);
            let label = model.label(LABELS[*label]);
            t.add_compartment(Compartment::new(label, Multiset::new(), content));
            t
        }
    }
}

proptest! {
    #[test]
    fn display_then_parse_is_identity_modulo_interning(spec in arb_term_spec()) {
        // Build the term in a model that interns names in a fixed order, so
        // the parsed model assigns identical handles.
        let mut model = cwc_repro::cwc::model::Model::new("p");
        for s in SPECIES {
            model.species(s);
        }
        for l in LABELS {
            model.label(l);
        }
        let term = build(&spec, &mut model);
        let rendered = term.display(&model.alphabet);
        if rendered == "<empty>" {
            return Ok(());
        }
        let mut src = String::from("species A B C D\nterm: ");
        src.push_str(&rendered);
        let parsed = parse_model(&src).expect("rendered term must parse");
        // Labels may intern in a different order; compare structurally via
        // a canonical re-rendering in the parsed model's alphabet.
        let reparsed_render = parsed.initial.display(&parsed.alphabet);
        prop_assert_eq!(reparsed_render, rendered);
        prop_assert_eq!(parsed.initial.total_atoms(), term.total_atoms());
        prop_assert_eq!(parsed.initial.total_compartments(), term.total_compartments());
        prop_assert_eq!(parsed.initial.depth(), term.depth());
    }
}

#[test]
fn documented_example_parses_and_simulates() {
    let src = r"
model doc-example
term: A*50 (cell: M | A*5)
rule grow @ 0.4 : A => A A
rule uptake @ 0.05 : A (cell: M |) => [1: | A]
rule spend @ 1.0 in cell : A =>
observe free = A at top
observe inside = A in cell
";
    let model = parse_model(src).unwrap();
    model.validate().unwrap();
    let cfg = cwc_repro::cwcsim::SimConfig::new(4, 2.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(2)
        .seed(1);
    let report = cwc_repro::cwcsim::run_simulation(std::sync::Arc::new(model), &cfg).unwrap();
    assert_eq!(report.rows.len(), 9);
    assert_eq!(report.observable_names, vec!["free", "inside"]);
}
