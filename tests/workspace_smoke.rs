//! Workspace-level smoke test: the umbrella crate re-exports every member
//! crate under its paper-facing name, and the simplest possible run agrees
//! between the parallel pipeline and the sequential reference.

use std::sync::Arc;

#[test]
fn umbrella_reexports_resolve() {
    // One symbol per re-exported crate; a failure here means the workspace
    // wiring (crate name ↔ directory mapping) regressed.
    let _parse: fn(&str) -> Result<_, _> = cwc_repro::cwc::parse_model;
    let _cfg = cwc_repro::cwcsim::SimConfig::new(1, 1.0);
    let _model = cwc_repro::biomodels::simple::decay(1, 1.0);
    let _running = cwc_repro::streamstat::welford::Running::default();
    let _seed = cwc_repro::gillespie::instance_seed(0, 0);
    let _farm = cwc_repro::fastflow::farm::Farm::new(1, |_| {
        cwc_repro::fastflow::node::map_stage(|x: u64| x)
    });
    let _bytes = cwc_repro::distrt::to_bytes(&cwc_repro::cwcsim::task::SampleBatch {
        instance: 0,
        samples: vec![],
        events: 0,
        finished: true,
    });
    let _spec = cwc_repro::simt::DeviceSpec::tesla_k40(1e-6);
    let _resource = cwc_repro::desim::Resource::new(1);
}

#[test]
fn one_instance_parallel_agrees_with_sequential() {
    let model = Arc::new(cwc_repro::biomodels::simple::decay(50, 1.0));
    let cfg = cwc_repro::cwcsim::SimConfig::new(1, 2.0)
        .quantum(0.5)
        .sample_period(0.5)
        .sim_workers(2)
        .seed(7);
    let par = cwc_repro::cwcsim::run_simulation(Arc::clone(&model), &cfg).unwrap();
    let seq = cwc_repro::cwcsim::run_sequential(model, &cfg).unwrap();
    assert_eq!(par.events, seq.events, "event counts diverged");
    assert_eq!(par.rows.len(), seq.rows.len(), "row counts diverged");
    for (p, s) in par.rows.iter().zip(&seq.rows) {
        assert_eq!(p.time, s.time);
        assert_eq!(p.observables[0].mean, s.observables[0].mean);
        assert_eq!(p.observables[0].variance, s.observables[0].variance);
    }
}
