//! Integration: the parallel pipeline must produce exactly the sequential
//! reference results, for every model family and a range of configurations.

use std::sync::Arc;

use cwc_repro::biomodels;
use cwc_repro::cwcsim::{run_sequential, run_simulation, EngineKind, SimConfig, StatEngineKind};

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::new(4, 2.0)
            .quantum(0.5)
            .sample_period(0.25)
            .sim_workers(2)
            .stat_workers(1)
            .seed(1),
        SimConfig::new(12, 3.0)
            .quantum(0.3)
            .sample_period(0.1)
            .sim_workers(4)
            .stat_workers(3)
            .window(6, 3)
            .seed(2),
        // Degenerate: one instance, one worker, tiny channels.
        SimConfig::new(1, 1.0)
            .quantum(10.0)
            .sample_period(0.5)
            .sim_workers(1)
            .stat_workers(1)
            .channel_capacity(1)
            .seed(3),
    ]
}

#[test]
fn parallel_equals_sequential_for_flat_models() {
    for model in [
        biomodels::simple::decay(60, 1.0),
        biomodels::simple::birth_death(30.0, 1.0, 5),
        biomodels::lotka_volterra(biomodels::LotkaVolterraParams::default()),
    ] {
        let model = Arc::new(model);
        for cfg in configs() {
            let par = run_simulation(Arc::clone(&model), &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", model.name));
            let seq = run_sequential(Arc::clone(&model), &cfg).unwrap();
            assert_eq!(par.rows, seq.rows, "model {} cfg {cfg:?}", model.name);
            assert_eq!(par.events, seq.events, "model {}", model.name);
        }
    }
}

#[test]
fn parallel_equals_sequential_for_every_engine_kind() {
    // The seq-vs-par agreement matrix over all five integrators: the
    // engine abstraction must not leak scheduling into trajectories.
    for model in [
        biomodels::simple::decay(60, 1.0),
        biomodels::simple::birth_death(30.0, 1.0, 5),
        biomodels::lotka_volterra(biomodels::LotkaVolterraParams::default()),
    ] {
        let model = Arc::new(model);
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.07 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            for cfg in configs() {
                let cfg = cfg.engine(kind);
                let par = run_simulation(Arc::clone(&model), &cfg)
                    .unwrap_or_else(|e| panic!("{} under {kind}: {e}", model.name));
                let seq = run_sequential(Arc::clone(&model), &cfg).unwrap();
                assert_eq!(
                    par.rows, seq.rows,
                    "model {} engine {kind} cfg {cfg:?}",
                    model.name
                );
                assert_eq!(par.events, seq.events, "model {} engine {kind}", model.name);
            }
        }
    }
}

#[test]
fn first_reaction_drives_compartment_models_in_the_pipeline() {
    // The exact engines both handle compartments; the seq-vs-par contract
    // holds for the first-reaction integrator too.
    let model = Arc::new(biomodels::cell_transport(
        biomodels::CellTransportParams::default(),
    ));
    let cfg = SimConfig::new(6, 2.0)
        .quantum(0.25)
        .sample_period(0.125)
        .sim_workers(3)
        .stat_workers(2)
        .seed(9)
        .engine(EngineKind::FirstReaction);
    let par = run_simulation(Arc::clone(&model), &cfg).unwrap();
    let seq = run_sequential(model, &cfg).unwrap();
    assert_eq!(par.rows, seq.rows);
}

#[test]
fn parallel_equals_sequential_for_compartment_models() {
    let model = Arc::new(biomodels::cell_transport(
        biomodels::CellTransportParams::default(),
    ));
    let cfg = SimConfig::new(6, 2.0)
        .quantum(0.25)
        .sample_period(0.125)
        .sim_workers(3)
        .stat_workers(2)
        .seed(9);
    let par = run_simulation(Arc::clone(&model), &cfg).unwrap();
    let seq = run_sequential(model, &cfg).unwrap();
    assert_eq!(par.rows, seq.rows);
}

#[test]
fn rows_cover_the_whole_grid_in_order() {
    let model = Arc::new(biomodels::simple::decay(40, 2.0));
    let cfg = SimConfig::new(8, 4.0)
        .quantum(1.0)
        .sample_period(0.25)
        .sim_workers(2)
        .seed(5);
    let report = run_simulation(model, &cfg).unwrap();
    assert_eq!(report.rows.len(), cfg.samples_per_instance() as usize);
    for (k, row) in report.rows.iter().enumerate() {
        assert!(
            (row.time - k as f64 * 0.25).abs() < 1e-9,
            "row {k} at {}",
            row.time
        );
        assert_eq!(row.instances, 8);
    }
}

#[test]
fn different_seeds_give_different_results_same_seed_identical() {
    let model = Arc::new(biomodels::simple::birth_death(20.0, 0.5, 0));
    let base = SimConfig::new(6, 3.0)
        .quantum(0.5)
        .sample_period(0.5)
        .sim_workers(2);
    let a = run_simulation(Arc::clone(&model), &base.clone().seed(1)).unwrap();
    let b = run_simulation(Arc::clone(&model), &base.clone().seed(1)).unwrap();
    let c = run_simulation(model, &base.seed(2)).unwrap();
    assert_eq!(a.rows, b.rows, "same seed must reproduce");
    assert_ne!(a.rows, c.rows, "different seeds must differ");
}

#[test]
fn worker_count_does_not_change_results() {
    let model = Arc::new(biomodels::michaelis_menten(
        biomodels::MichaelisMentenParams::default(),
    ));
    let mk = |workers: usize| {
        SimConfig::new(8, 1.0)
            .quantum(0.2)
            .sample_period(0.1)
            .sim_workers(workers)
            .stat_workers(workers.min(3))
            .seed(77)
    };
    let w1 = run_simulation(Arc::clone(&model), &mk(1)).unwrap();
    let w4 = run_simulation(Arc::clone(&model), &mk(4)).unwrap();
    let w8 = run_simulation(model, &mk(8)).unwrap();
    assert_eq!(w1.rows, w4.rows);
    assert_eq!(w1.rows, w8.rows);
}

#[test]
fn all_engine_kinds_flow_through_the_pipeline() {
    let model = Arc::new(biomodels::simple::birth_death(40.0, 1.0, 0));
    let cfg = SimConfig::new(10, 2.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(2)
        .stat_workers(2)
        .engines(vec![
            StatEngineKind::MeanVariance,
            StatEngineKind::KMeans { k: 2 },
            StatEngineKind::Quantile { p: 0.9 },
            StatEngineKind::Histogram {
                lo: 0.0,
                hi: 100.0,
                bins: 10,
            },
        ])
        .seed(4);
    let report = run_simulation(model, &cfg).unwrap();
    let last = report.rows.last().unwrap();
    let obs = &last.observables[0];
    assert!(obs.quantile.is_some());
    assert!(obs.mode.is_some());
    assert!(obs.centroids.len() <= 2);
    assert!(obs.max >= obs.min);
}

#[test]
fn steering_terminates_a_running_simulation_early() {
    use cwc_repro::cwcsim::{run_simulation_steered, Steering};

    // A heavy-enough run that 50 ms is early: 16 instances of a busy
    // birth-death process.
    let model = Arc::new(biomodels::simple::birth_death(600.0, 1.0, 0));
    let cfg = SimConfig::new(16, 20.0)
        .quantum(0.25)
        .sample_period(0.25)
        .sim_workers(2)
        .seed(44);

    // Full run for reference row count.
    let full = run_simulation(Arc::clone(&model), &cfg).unwrap();
    assert_eq!(full.rows.len(), cfg.samples_per_instance() as usize);

    // Steered run: terminate shortly after it starts.
    let steering = Steering::new();
    let killer = {
        let s = steering.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            s.terminate();
        })
    };
    let partial = run_simulation_steered(model, &cfg, &steering).unwrap();
    killer.join().unwrap();
    assert!(
        partial.rows.len() < full.rows.len(),
        "terminated run produced {} of {} rows",
        partial.rows.len(),
        full.rows.len()
    );
    assert!(partial.events < full.events);
    // Whatever completed is still correct and time-ordered.
    assert!(partial.rows.windows(2).all(|w| w[0].time < w[1].time));
}

#[test]
fn pre_terminated_run_produces_no_rows() {
    use cwc_repro::cwcsim::{run_simulation_steered, Steering};

    let model = Arc::new(biomodels::simple::decay(50, 1.0));
    let cfg = SimConfig::new(4, 5.0)
        .quantum(1.0)
        .sample_period(0.5)
        .sim_workers(2)
        .seed(1);
    let steering = Steering::new();
    steering.terminate();
    let report = run_simulation_steered(model, &cfg, &steering).unwrap();
    assert!(report.rows.is_empty());
    assert_eq!(report.events, 0);
}
