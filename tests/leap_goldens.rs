//! Golden trajectory fingerprints for the approximate tier (adaptive
//! tau-leaping, the hybrid engine, and fixed tau-leaping on wide models).
//!
//! Recorded from the pre-kernel-hot-path engines (the full-scan
//! implementation, commit `d87ece0`). The incremental/kernel-routed
//! rewrite must reproduce every stream bit-for-bit: same sample values at
//! the same grid times, same event counts, same final state, across
//! irregular quantum slicings — under both kernel dispatches (CI re-runs
//! this suite with `CWC_FORCE_SCALAR_KERNELS=1`).

use std::sync::Arc;

use cwc_repro::biomodels::{
    conversion_cycle, lotka_volterra, schlogl, LotkaVolterraParams, SchloglParams,
};
use cwc_repro::cwc::model::Model;
use cwc_repro::gillespie::engine::EngineKind;
use cwc_repro::gillespie::ssa::SampleClock;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `kind` on `model` in irregular quanta and fingerprints the entire
/// sample stream (times and values bit-for-bit, via `f64::to_bits`).
fn fingerprint(
    model: Arc<Model>,
    kind: EngineKind,
    seed: u64,
    instance: u64,
    t_end: f64,
) -> (u64, u64, Vec<u64>) {
    let mut engine = kind.build(Arc::clone(&model), seed, instance).unwrap();
    let mut clock = SampleClock::new(0.0, t_end / 40.0);
    let mut hash = 0u64;
    let mut events = 0u64;
    let quanta = [0.13, 0.29, 0.5, 0.77, 1.0];
    let mut t = 0.0;
    while t < t_end {
        let q = quanta[(events as usize) % quanta.len()] * t_end / 10.0;
        t = (t + q).min(t_end);
        events += engine.run_sampled(t, &mut clock, |ts, v| {
            hash = fnv1a(hash, &ts.to_bits().to_le_bytes());
            for &x in v {
                hash = fnv1a(hash, &x.to_le_bytes());
            }
        });
    }
    (hash, events, engine.observe())
}

/// The approximate-tier golden matrix: small models exercise the
/// full-recompute (legacy) adaptive path, the wide conversion cycles
/// exercise the incremental one — `wide-cycle-lo` (5 copies/species) stays
/// in the pure-critical regime, `wide-cycle-hi` (200 copies/species)
/// leaps.
fn model_by_name(name: &str) -> Arc<Model> {
    match name {
        "schlogl" => Arc::new(schlogl(SchloglParams::default())),
        "lotka-volterra" => Arc::new(lotka_volterra(LotkaVolterraParams::default())),
        "wide-cycle-lo" => Arc::new(conversion_cycle(48, 240, 1.0)),
        "wide-cycle-hi" => Arc::new(conversion_cycle(40, 8_000, 1.0)),
        other => panic!("unknown golden model {other}"),
    }
}

fn kind_by_name(name: &str) -> EngineKind {
    match name {
        "adaptive" => EngineKind::AdaptiveTau { epsilon: 0.05 },
        "hybrid" => EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 16.0,
        },
        "tau-leap" => EngineKind::TauLeap { tau: 0.01 },
        other => panic!("unknown golden engine {other}"),
    }
}

fn horizon(model: &str) -> f64 {
    match model {
        "schlogl" => 4.0,
        "lotka-volterra" => 8.0,
        "wide-cycle-lo" => 4.0,
        "wide-cycle-hi" => 2.0,
        _ => unreachable!(),
    }
}

/// (model, engine, seed, instance, sample_hash, events, final_observables).
type GoldenRow = (
    &'static str,
    &'static str,
    u64,
    u64,
    u64,
    u64,
    &'static [u64],
);

/// Recorded by running the pre-hot-path engines (full-scan draws, commit
/// `d87ece0`); regenerate with the ignored `record` test below.
const GOLDEN: &[GoldenRow] = &[
    (
        "schlogl",
        "adaptive",
        2014,
        3,
        0xce99db1a0c1520ea,
        30236,
        &[552],
    ),
    (
        "schlogl",
        "adaptive",
        99,
        0,
        0xff10e3cb22ac1430,
        5527,
        &[101],
    ),
    (
        "schlogl",
        "hybrid",
        2014,
        3,
        0xb2ff5b1b26b25f2c,
        9285,
        &[167],
    ),
    (
        "lotka-volterra",
        "adaptive",
        2014,
        3,
        0x0ec4e1af32be57ba,
        2853,
        &[128, 61],
    ),
    (
        "lotka-volterra",
        "hybrid",
        2014,
        3,
        0x19c2509cc28fedd1,
        2936,
        &[82, 61],
    ),
    (
        "wide-cycle-lo",
        "adaptive",
        2014,
        3,
        0x3b4be27e0f2fc600,
        1099,
        &[3],
    ),
    (
        "wide-cycle-lo",
        "adaptive",
        99,
        0,
        0x4aed7c7af4eb3bf3,
        1068,
        &[3],
    ),
    (
        "wide-cycle-lo",
        "hybrid",
        2014,
        3,
        0xb774a5d153b818a6,
        1120,
        &[3],
    ),
    (
        "wide-cycle-lo",
        "tau-leap",
        2014,
        3,
        0xaa74478101bfc0cf,
        1125,
        &[5],
    ),
    (
        "wide-cycle-hi",
        "adaptive",
        2014,
        3,
        0xf2a337866ec1f14c,
        18113,
        &[233],
    ),
    (
        "wide-cycle-hi",
        "adaptive",
        99,
        0,
        0x0c75de8682a97f78,
        16975,
        &[221],
    ),
    (
        "wide-cycle-hi",
        "hybrid",
        2014,
        3,
        0xf30cc95333e6a341,
        17325,
        &[228],
    ),
    (
        "wide-cycle-hi",
        "tau-leap",
        2014,
        3,
        0x4fc970d05f090d14,
        18126,
        &[207],
    ),
];

#[test]
fn approximate_tier_trajectories_are_bit_identical_to_full_scan_engines() {
    for &(model, engine, seed, instance, hash, events, obs) in GOLDEN {
        let (h, e, o) = fingerprint(
            model_by_name(model),
            kind_by_name(engine),
            seed,
            instance,
            horizon(model),
        );
        assert_eq!(
            (h, e, o.as_slice()),
            (hash, events, obs),
            "{model}/{engine} seed={seed} instance={instance} diverged from the full-scan engine"
        );
    }
}

#[test]
#[ignore = "golden recorder: prints rows for the GOLDEN table"]
fn record() {
    for &(model, engine, seed, instance, ..) in GOLDEN {
        let (h, e, o) = fingerprint(
            model_by_name(model),
            kind_by_name(engine),
            seed,
            instance,
            horizon(model),
        );
        println!("(\"{model}\", \"{engine}\", {seed}, {instance}, {h:#018x}, {e}, &{o:?}),");
    }
}
