//! Integration: stress and failure-injection tests of the pattern
//! framework under oversubscription (many threads, one core).

use cwc_repro::fastflow::farm::{Farm, SchedPolicy};
use cwc_repro::fastflow::node::{map_stage, sink_fn};
use cwc_repro::fastflow::pipeline::Pipeline;
use cwc_repro::fastflow::{parallel_map, parallel_reduce};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn sixteen_worker_farm_on_one_core_loses_nothing() {
    let farm = Farm::new(16, |_| map_stage(|x: u64| x * 2 + 1)).worker_capacity(4);
    let out: Vec<u64> = Pipeline::from_source(0..20_000u64)
        .farm(farm)
        .collect()
        .unwrap();
    assert_eq!(out.len(), 20_000);
    let set: HashSet<u64> = out.into_iter().collect();
    assert_eq!(set.len(), 20_000);
}

#[test]
fn deep_pipeline_composes() {
    // 8 stages chained; order must be preserved end to end.
    let mut p = Pipeline::from_source(0..5_000i64);
    for _ in 0..8 {
        p = p.stage(map_stage(|x: i64| x + 1));
    }
    let out = p.collect().unwrap();
    assert_eq!(out, (8..5_008).collect::<Vec<_>>());
}

#[test]
fn nested_farms_compose() {
    let inner_done = Arc::new(AtomicU64::new(0));
    let d = Arc::clone(&inner_done);
    let farm = Farm::new(3, move |_| {
        let d = Arc::clone(&d);
        map_stage(move |x: u64| {
            // Each outer item spawns a small parallel map of its own.
            let sq = parallel_map(vec![x, x + 1], 2, |v| v * v).unwrap();
            d.fetch_add(1, Ordering::Relaxed);
            sq.into_iter().sum::<u64>()
        })
    });
    let out: Vec<u64> = Pipeline::from_source(0..50u64)
        .farm(farm)
        .collect()
        .unwrap();
    assert_eq!(out.len(), 50);
    assert_eq!(inner_done.load(Ordering::Relaxed), 50);
}

#[test]
fn panic_in_one_of_many_workers_is_surfaced() {
    let farm = Farm::new(8, |_| {
        map_stage(|x: u32| {
            if x == 777 {
                panic!("injected failure");
            }
            x
        })
    })
    .policy(SchedPolicy::OnDemand);
    let result = Pipeline::from_source(0..2_000u32).farm(farm).collect();
    match result {
        Err(cwc_repro::fastflow::Error::StagePanicked { message, .. }) => {
            assert_eq!(message, "injected failure");
        }
        other => panic!("expected surfaced panic, got {other:?}"),
    }
}

#[test]
fn reduce_of_large_input_is_exact() {
    let total = parallel_reduce((0..100_000u64).collect(), 8, 0, |a, b| a + b).unwrap();
    assert_eq!(total, 100_000 * 99_999 / 2);
}

#[test]
fn sink_farm_with_more_workers_than_items() {
    let seen = Arc::new(AtomicU64::new(0));
    let s = Arc::clone(&seen);
    Pipeline::from_source(0..3u64)
        .run_to_sink_farm(8, move |_| {
            let s = Arc::clone(&s);
            sink_fn(move |_: u64| {
                s.fetch_add(1, Ordering::Relaxed);
            })
        })
        .unwrap();
    assert_eq!(seen.load(Ordering::Relaxed), 3);
}

#[test]
fn empty_source_terminates_everything() {
    let farm = Farm::new(4, |_| map_stage(|x: u8| x));
    let out: Vec<u8> = Pipeline::from_source(std::iter::empty::<u8>())
        .farm(farm)
        .stage(map_stage(|x| x))
        .collect()
        .unwrap();
    assert!(out.is_empty());
}
