//! Correctness of the incremental propensity engine (PR 3).
//!
//! Two pillars:
//!
//! 1. **Golden trajectories** — fingerprints of full sampled runs recorded
//!    from the *pre-table* engines (the naive full re-enumeration
//!    implementation, seed commit `1b63989`). The rewritten engines must
//!    reproduce every stream bit-for-bit: same sample values at the same
//!    grid times, same event counts, same final state, across irregular
//!    quantum slicings, for the three seed integrators on flat and
//!    compartmentalised models.
//!
//! 2. **Table = recompute** — after an arbitrary prefix of firings
//!    (including structural ones that force rebuilds), the incrementally
//!    maintained reaction table must equal a from-scratch enumeration:
//!    same (site, rule) set, same order, same propensities, same `a0`.

use proptest::prelude::*;
use std::sync::Arc;

use cwc_repro::biomodels::{
    lotka_volterra, neurospora_compartments, schlogl, LotkaVolterraParams, NeurosporaParams,
    SchloglParams,
};
use cwc_repro::cwc::model::Model;
use cwc_repro::gillespie::engine::EngineKind;
use cwc_repro::gillespie::ssa::{SampleClock, SsaEngine, StepOutcome};

// ---------------------------------------------------------------------------
// Golden trajectories (recorded from the pre-table engines)
// ---------------------------------------------------------------------------

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `kind` on `model` in irregular quanta and fingerprints the entire
/// sample stream (times and values bit-for-bit, via `f64::to_bits`).
fn fingerprint(
    model: Arc<Model>,
    kind: EngineKind,
    seed: u64,
    instance: u64,
    t_end: f64,
) -> (u64, u64, Vec<u64>) {
    let mut engine = kind.build(Arc::clone(&model), seed, instance).unwrap();
    let mut clock = SampleClock::new(0.0, t_end / 40.0);
    let mut hash = 0u64;
    let mut events = 0u64;
    let quanta = [0.13, 0.29, 0.5, 0.77, 1.0];
    let mut t = 0.0;
    while t < t_end {
        let q = quanta[(events as usize) % quanta.len()] * t_end / 10.0;
        t = (t + q).min(t_end);
        events += engine.run_sampled(t, &mut clock, |ts, v| {
            hash = fnv1a(hash, &ts.to_bits().to_le_bytes());
            for &x in v {
                hash = fnv1a(hash, &x.to_le_bytes());
            }
        });
    }
    (hash, events, engine.observe())
}

fn model_by_name(name: &str) -> Arc<Model> {
    match name {
        "schlogl" => Arc::new(schlogl(SchloglParams::default())),
        "lotka-volterra" => Arc::new(lotka_volterra(LotkaVolterraParams::default())),
        "neurospora-compartments" => Arc::new(neurospora_compartments(NeurosporaParams::default())),
        other => panic!("unknown golden model {other}"),
    }
}

fn kind_by_name(name: &str) -> EngineKind {
    match name {
        "ssa" => EngineKind::Ssa,
        "first-reaction" => EngineKind::FirstReaction,
        "tau-leap" => EngineKind::TauLeap { tau: 0.01 },
        other => panic!("unknown golden engine {other}"),
    }
}

fn horizon(model: &str) -> f64 {
    match model {
        "schlogl" => 4.0,
        "lotka-volterra" => 8.0,
        _ => 24.0,
    }
}

/// (model, engine, seed, instance, sample_hash, events, final_observables).
type GoldenRow = (
    &'static str,
    &'static str,
    u64,
    u64,
    u64,
    u64,
    &'static [u64],
);

/// Recorded by running the pre-PR engines (naive full re-enumeration).
const GOLDEN: &[GoldenRow] = &[
    ("schlogl", "ssa", 2014, 3, 0x551e905b70da0f99, 14346, &[442]),
    ("schlogl", "ssa", 99, 0, 0xdc8d1d0a78b16d03, 20469, &[583]),
    (
        "schlogl",
        "first-reaction",
        2014,
        3,
        0xb4a981ea33a6ba6e,
        10016,
        &[284],
    ),
    (
        "schlogl",
        "first-reaction",
        99,
        0,
        0xca50925ae3783ca0,
        3959,
        &[105],
    ),
    (
        "schlogl",
        "tau-leap",
        2014,
        3,
        0x2c869fe7d288bfb2,
        5444,
        &[94],
    ),
    (
        "schlogl",
        "tau-leap",
        99,
        0,
        0x70d0f02117291d20,
        6190,
        &[116],
    ),
    (
        "lotka-volterra",
        "ssa",
        2014,
        3,
        0xe3080f02735bf484,
        3179,
        &[217, 220],
    ),
    (
        "lotka-volterra",
        "ssa",
        99,
        0,
        0x7373f1b4d4443efc,
        3018,
        &[134, 121],
    ),
    (
        "lotka-volterra",
        "first-reaction",
        2014,
        3,
        0x74c6082e24681456,
        3438,
        &[150, 104],
    ),
    (
        "lotka-volterra",
        "first-reaction",
        99,
        0,
        0x811fe243f1d31145,
        3244,
        &[99, 97],
    ),
    (
        "lotka-volterra",
        "tau-leap",
        2014,
        3,
        0xf2f4a5c0f6b13267,
        3040,
        &[138, 79],
    ),
    (
        "lotka-volterra",
        "tau-leap",
        99,
        0,
        0xbbed4a94400cf1b1,
        2960,
        &[103, 46],
    ),
    (
        "neurospora-compartments",
        "ssa",
        2014,
        3,
        0x43e8047e11c3ab24,
        15953,
        &[219, 55, 35],
    ),
    (
        "neurospora-compartments",
        "ssa",
        99,
        0,
        0x246487f30a8f68d0,
        16046,
        &[174, 30, 57],
    ),
    (
        "neurospora-compartments",
        "first-reaction",
        2014,
        3,
        0x6ae6005d8dc24f40,
        16675,
        &[29, 51, 118],
    ),
    (
        "neurospora-compartments",
        "first-reaction",
        99,
        0,
        0x6e39fdd94688adcf,
        20023,
        &[9, 282, 321],
    ),
];

#[test]
fn trajectories_are_bit_identical_to_pre_table_engines() {
    for &(model, engine, seed, instance, hash, events, obs) in GOLDEN {
        let (h, e, o) = fingerprint(
            model_by_name(model),
            kind_by_name(engine),
            seed,
            instance,
            horizon(model),
        );
        assert_eq!(
            (h, e, o.as_slice()),
            (hash, events, obs),
            "{model}/{engine} seed={seed} instance={instance} diverged from the pre-table engine"
        );
    }
}

// ---------------------------------------------------------------------------
// One a0 summation per step (satellite: no redundant recomputation)
// ---------------------------------------------------------------------------

#[test]
fn one_a0_sum_per_step() {
    let mut m = Model::new("decay");
    let a = m.species("A");
    m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
    m.initial.add_atoms(a, 5);
    m.observe("A", a);
    let mut engine = SsaEngine::new(Arc::new(m), 3, 0);
    assert_eq!(engine.a0_sums(), 0, "construction must not sum");
    for k in 1..=5u64 {
        assert!(matches!(engine.step(), StepOutcome::Fired { .. }));
        assert_eq!(engine.a0_sums(), k, "exactly one a0 sum per step");
    }
    // The exhausted probe also costs exactly one summation.
    assert_eq!(engine.step(), StepOutcome::Exhausted);
    assert_eq!(engine.a0_sums(), 6);
}

// ---------------------------------------------------------------------------
// Table equals full recompute after arbitrary firing sequences
// ---------------------------------------------------------------------------

/// A model exercising every table-update path: flat mass-action rules,
/// Hill/saturating laws, keep-transport across a membrane (incremental
/// same-site + child + parent updates) and compartment creation /
/// dissolution / destruction (structural rebuilds).
fn zoo_model(a0: u64, b0: u64, cells: u64) -> Arc<Model> {
    let mut m = Model::new("zoo");
    let a = m.species("A");
    let b = m.species("B");
    let c = m.species("C");
    m.rule("convert")
        .consumes("A", 1)
        .produces("B", 1)
        .rate(1.0)
        .build()
        .unwrap();
    m.rule("back")
        .consumes("B", 1)
        .produces("A", 1)
        .rate(0.8)
        .repressed_by("C", 5.0, 2.0)
        .build()
        .unwrap();
    m.rule("in")
        .consumes("A", 1)
        .matches_comp("cell", &[], &[])
        .keeps(0, &[], &[("A", 1)])
        .rate(0.9)
        .build()
        .unwrap();
    m.rule("out")
        .matches_comp("cell", &[], &[("A", 1)])
        .keeps(0, &[], &[])
        .produces("C", 1)
        .rate(0.7)
        .build()
        .unwrap();
    m.rule("digest")
        .at("cell")
        .consumes("A", 1)
        .produces("C", 1)
        .rate(0.5)
        .build()
        .unwrap();
    m.rule("leak")
        .at("cell")
        .consumes("C", 1)
        .rate(0.4)
        .saturating_on("C", 3.0)
        .build()
        .unwrap();
    m.rule("make")
        .consumes("B", 2)
        .creates_comp("cell", &[("B", 1)], &[("A", 1)])
        .rate(0.3)
        .build()
        .unwrap();
    m.rule("burst")
        .matches_comp("cell", &[("B", 1)], &[])
        .dissolves(0)
        .rate(0.2)
        .build()
        .unwrap();
    m.rule("crush")
        .consumes("C", 1)
        .matches_comp("cell", &[], &[])
        .rate(0.1)
        .build()
        .unwrap();
    m.initial.add_atoms(a, a0);
    m.initial.add_atoms(b, b0);
    for _ in 0..cells {
        m.initial
            .add_compartment(cwc_repro::cwc::term::Compartment::new(
                m.alphabet.find_label("cell").unwrap(),
                cwc_repro::cwc::multiset::Multiset::from([(b, 1)]),
                cwc_repro::cwc::term::Term::from_atoms(cwc_repro::cwc::multiset::Multiset::from([
                    (a, 2),
                ])),
            ));
    }
    m.observe("A", a);
    m.observe("C", c);
    Arc::new(m)
}

proptest! {
    #[test]
    fn table_equals_full_recompute_after_any_firing_sequence(
        seed in 0u64..10_000,
        steps in 1usize..80,
        a0 in 0u64..12,
        b0 in 0u64..8,
        cells in 0u64..3,
    ) {
        let model = zoo_model(a0, b0, cells);
        let mut engine = SsaEngine::new(model, seed, 0);
        for k in 0..steps {
            let outcome = engine.step();
            let cached = engine.cached_reactions();
            let fresh = engine.reactions();
            prop_assert!(
                cached == fresh,
                "table diverged from recompute after {} steps (seed {seed}): \
                 cached {cached:?} vs fresh {fresh:?}",
                k + 1
            );
            // a0 must be the identical ordered sum, bit for bit.
            let naive_a0: f64 = fresh.iter().map(|r| r.propensity).sum();
            prop_assert!(
                engine.total_propensity().to_bits() == naive_a0.to_bits(),
                "a0 diverged after {} steps (seed {seed})",
                k + 1
            );
            if outcome == StepOutcome::Exhausted {
                prop_assert!(fresh.is_empty());
                break;
            }
        }
    }
}
