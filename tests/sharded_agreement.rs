//! The sharded farm's core contract: `run_simulation_sharded` with any
//! shard count produces **bit-for-bit** the same `StatRow`s as the
//! single-process `run_simulation` — across models, engine kinds and
//! shard counts — and a failing shard surfaces as a typed error, never a
//! hang.
//!
//! `shards > 1` spawns real `cwc-shard` child processes (cargo builds
//! the binary alongside this test; `distrt` resolves it next to the test
//! executable); `shards = 1` is the degenerate in-process path.

use std::sync::Arc;

use cwc_repro::biomodels;
use cwc_repro::cwc::model::Model;
use cwc_repro::cwcsim::{
    run_simulation, EngineKind, ShardErrorKind, SimConfig, SimError, StatEngineKind,
};
use cwc_repro::distrt::shard::run_simulation_sharded;

fn engine_kinds() -> Vec<EngineKind> {
    vec![
        EngineKind::Ssa,
        EngineKind::TauLeap { tau: 0.05 },
        EngineKind::FirstReaction,
        EngineKind::AdaptiveTau { epsilon: 0.05 },
        EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 8.0,
        },
        // The batched SoA tier: shards run whole-batch farms over their
        // slices (7 instances, width 3 → uneven batches inside shards),
        // yet every replica is bit-identical to scalar SSA.
        EngineKind::Batched { width: 3 },
    ]
}

/// Flat models (every engine kind accepts them), scaled small enough to
/// keep the 3 models × 6 kinds × 3 shard counts matrix fast.
fn models() -> Vec<(&'static str, Arc<Model>)> {
    vec![
        ("decay", Arc::new(biomodels::simple::decay(60, 1.0))),
        (
            "dimerisation",
            Arc::new(biomodels::simple::dimerisation(0.01, 0.1, 120)),
        ),
        (
            "schlogl",
            Arc::new(biomodels::schlogl(biomodels::SchloglParams::default())),
        ),
    ]
}

fn cfg() -> SimConfig {
    SimConfig::new(7, 2.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(2)
        .stat_workers(2)
        .window(4, 2)
        .seed(101)
}

#[test]
fn sharded_rows_are_bit_for_bit_identical_across_the_matrix() {
    for (name, model) in models() {
        for kind in engine_kinds() {
            let base = cfg().engine(kind);
            let single = run_simulation(Arc::clone(&model), &base)
                .unwrap_or_else(|e| panic!("{name}/{kind}: single-process run failed: {e}"));
            assert!(!single.rows.is_empty(), "{name}/{kind}: empty reference");
            for shards in [1usize, 2, 3] {
                let sharded =
                    run_simulation_sharded(Arc::clone(&model), &base.clone().shards(shards))
                        .unwrap_or_else(|e| panic!("{name}/{kind}/shards={shards}: {e}"));
                assert_eq!(
                    sharded.rows, single.rows,
                    "{name}/{kind}/shards={shards}: rows diverged"
                );
                assert_eq!(
                    sharded.events, single.events,
                    "{name}/{kind}/shards={shards}: event counts diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_summary_merges_the_exact_parts_exactly() {
    let model = Arc::new(biomodels::simple::decay(80, 1.0));
    let base = cfg().engines(vec![
        StatEngineKind::MeanVariance,
        StatEngineKind::Histogram {
            lo: 0.0,
            hi: 100.0,
            bins: 20,
        },
    ]);
    let single = run_simulation(Arc::clone(&model), &base).unwrap();
    let sharded = run_simulation_sharded(model, &base.clone().shards(3)).unwrap();
    let (s, m) = (
        &single.summary.observables()[0],
        &sharded.summary.observables()[0],
    );
    assert_eq!(s.running.count(), m.running.count());
    assert_eq!(s.running.min(), m.running.min());
    assert_eq!(s.running.max(), m.running.max());
    assert!((s.running.mean() - m.running.mean()).abs() < 1e-9);
    let (sh, mh) = (s.histogram.as_ref().unwrap(), m.histogram.as_ref().unwrap());
    for b in 0..sh.bins() {
        assert_eq!(sh.bin_count(b), mh.bin_count(b), "bin {b}");
    }
}

#[test]
fn more_shards_than_instances_still_agrees() {
    let model = Arc::new(biomodels::simple::decay(30, 1.0));
    let mut base = cfg();
    base.instances = 3;
    let single = run_simulation(Arc::clone(&model), &base).unwrap();
    let sharded = run_simulation_sharded(model, &base.clone().shards(8)).unwrap();
    assert_eq!(sharded.rows, single.rows);
}

#[test]
fn crashing_shard_process_is_a_typed_error_not_a_hang() {
    use cwc_repro::cwcsim::{run_simulation_sharded_with, Steering};
    use cwc_repro::distrt::shard::ProcessTransport;

    let model = Arc::new(biomodels::simple::decay(20, 1.0));
    // A "worker" that exits immediately without speaking the protocol.
    let mut transport = ProcessTransport::with_binary("/bin/false");
    let err =
        run_simulation_sharded_with(model, &cfg().shards(2), &Steering::new(), &mut transport)
            .unwrap_err();
    match err {
        SimError::Shard(e) => {
            assert!(
                matches!(
                    e.kind,
                    ShardErrorKind::Crashed(_) | ShardErrorKind::Spawn(_)
                ),
                "unexpected kind: {e}"
            );
        }
        other => panic!("expected SimError::Shard, got: {other}"),
    }
}

#[test]
fn missing_worker_binary_is_a_typed_spawn_error() {
    use cwc_repro::cwcsim::{run_simulation_sharded_with, Steering};
    use cwc_repro::distrt::shard::ProcessTransport;

    let model = Arc::new(biomodels::simple::decay(20, 1.0));
    let mut transport = ProcessTransport::with_binary("/no/such/binary/cwc-shard");
    let err =
        run_simulation_sharded_with(model, &cfg().shards(3), &Steering::new(), &mut transport)
            .unwrap_err();
    assert!(
        matches!(&err, SimError::Shard(e) if matches!(e.kind, ShardErrorKind::Spawn(_))),
        "{err}"
    );
    // The message should point the user at the fix.
    assert!(err.to_string().contains("spawn failed"), "{err}");
}
