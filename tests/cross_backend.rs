//! Integration: every execution back-end — multicore pipeline, emulated
//! distributed deployment, simulated GPGPU — must produce *identical*
//! simulation results for identical seeds, under *every* engine kind.
//! Portability without silent numerical drift is the paper's core promise;
//! the engine abstraction must not weaken it.

use std::sync::Arc;

use cwc_repro::biomodels;
use cwc_repro::cwcsim::{run_simulation, EngineKind, SimConfig};
use cwc_repro::distrt::run_distributed_emulation;
use cwc_repro::gillespie::ssa::SampleClock;
use cwc_repro::simt::DeviceMap;

fn cfg() -> SimConfig {
    SimConfig::new(10, 3.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(3)
        .stat_workers(2)
        .window(4, 2)
        .seed(2024)
}

/// The engine matrix of the correctness tests (the batched and leaping
/// kinds need flat mass-action models; every model used here qualifies).
fn engine_kinds() -> [EngineKind; 6] {
    [
        EngineKind::Ssa,
        EngineKind::TauLeap { tau: 0.1 },
        EngineKind::FirstReaction,
        EngineKind::AdaptiveTau { epsilon: 0.05 },
        EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 8.0,
        },
        // Width 3 over 10 instances: batches of 3, 3, 3 and 1 — every
        // replica must be bit-identical to scalar SSA on every backend.
        EngineKind::Batched { width: 3 },
    ]
}

#[test]
fn distributed_emulation_matches_multicore() {
    let model = Arc::new(biomodels::simple::decay(50, 1.0));
    let cfg = cfg();
    let local = run_simulation(Arc::clone(&model), &cfg).unwrap();
    for farms in [1usize, 2, 5] {
        let remote = run_distributed_emulation(Arc::clone(&model), &cfg, farms).unwrap();
        assert_eq!(remote.rows, local.rows, "{farms} farms");
    }
}

#[test]
fn distributed_emulation_matches_multicore_for_every_engine_kind() {
    // The engine kind crosses the wire inside RemoteTaskSpec; remote farms
    // must rebuild the exact same integrators.
    let model = Arc::new(biomodels::simple::birth_death(30.0, 1.0, 10));
    for kind in engine_kinds() {
        let cfg = cfg().engine(kind);
        let local = run_simulation(Arc::clone(&model), &cfg).unwrap();
        let remote = run_distributed_emulation(Arc::clone(&model), &cfg, 3).unwrap();
        assert_eq!(remote.rows, local.rows, "{kind}");
    }
}

#[test]
fn gpu_lockstep_matches_plain_engines() {
    let model = Arc::new(biomodels::lotka_volterra(
        biomodels::LotkaVolterraParams::default(),
    ));
    let cfg = cfg();
    for kind in engine_kinds() {
        let mut device = DeviceMap::with_engine(
            kind,
            Arc::clone(&model),
            cfg.instances,
            cfg.base_seed,
            cfg.t_end,
            cfg.quantum,
            cfg.sample_period,
        )
        .unwrap();
        let outputs = device.run_to_end();

        for i in 0..cfg.instances {
            let mut engine = kind.build(Arc::clone(&model), cfg.base_seed, i).unwrap();
            let mut clock = SampleClock::new(0.0, cfg.sample_period);
            let expected = engine.advance_quantum(cfg.t_end, &mut clock).samples;
            let got: Vec<(f64, Vec<u64>)> = outputs
                .iter()
                .filter(|o| o.instance == i)
                .flat_map(|o| o.samples.clone())
                .collect();
            assert_eq!(got, expected, "{kind}: instance {i} diverged on the device");
        }
    }
}

#[test]
fn gpu_quantum_size_does_not_change_results() {
    let model = Arc::new(biomodels::simple::birth_death(30.0, 1.0, 0));
    type Samples = Vec<(f64, Vec<u64>)>;
    fn by_instance(outputs: Vec<(u64, Samples)>) -> Vec<(u64, Samples)> {
        let mut per_instance: std::collections::BTreeMap<u64, Samples> = Default::default();
        for (i, s) in outputs {
            per_instance.entry(i).or_default().extend(s);
        }
        per_instance.into_iter().collect()
    }
    for kind in engine_kinds() {
        let run = |quantum: f64| {
            let mut device =
                DeviceMap::with_engine(kind, Arc::clone(&model), 6, 5, 2.0, quantum, 0.25).unwrap();
            let mut out = device.run_to_end();
            out.sort_by_key(|o| o.instance);
            out.into_iter()
                .map(|o| (o.instance, o.samples))
                .collect::<Vec<_>>()
        };
        // Different Q/τ ratios, identical trajectories (pending-event /
        // pending-leap exactness).
        assert_eq!(by_instance(run(0.25)), by_instance(run(2.0)), "{kind}");
    }
}

#[test]
fn wire_codec_round_trips_real_batches() {
    use cwc_repro::cwcsim::task::{SampleBatch, SimTask};
    use cwc_repro::distrt::{from_bytes, to_bytes};

    let model = Arc::new(biomodels::simple::decay(30, 1.0));
    for kind in engine_kinds() {
        let mut task =
            SimTask::with_engine(kind, Arc::clone(&model), 3, 0, 2.0, 0.5, 0.25).unwrap();
        while !task.is_done() {
            let mut samples = Vec::new();
            let events = task.run_quantum(&mut samples);
            let batch = SampleBatch {
                instance: task.instance(),
                samples,
                events,
                finished: task.is_done(),
            };
            let bytes = to_bytes(&batch);
            let back: SampleBatch = from_bytes(&bytes).unwrap();
            assert_eq!(back, batch, "{kind}");
        }
    }
}
