//! Integration: every execution back-end — multicore pipeline, emulated
//! distributed deployment, simulated GPGPU — must produce *identical*
//! simulation results for identical seeds. Portability without silent
//! numerical drift is the paper's core promise.

use std::sync::Arc;

use cwc_repro::biomodels;
use cwc_repro::cwcsim::{run_simulation, SimConfig};
use cwc_repro::distrt::run_distributed_emulation;
use cwc_repro::gillespie::ssa::{SampleClock, SsaEngine};
use cwc_repro::simt::DeviceMap;

fn cfg() -> SimConfig {
    SimConfig::new(10, 3.0)
        .quantum(0.5)
        .sample_period(0.25)
        .sim_workers(3)
        .stat_workers(2)
        .window(4, 2)
        .seed(2024)
}

#[test]
fn distributed_emulation_matches_multicore() {
    let model = Arc::new(biomodels::simple::decay(50, 1.0));
    let cfg = cfg();
    let local = run_simulation(Arc::clone(&model), &cfg).unwrap();
    for farms in [1usize, 2, 5] {
        let remote = run_distributed_emulation(Arc::clone(&model), &cfg, farms).unwrap();
        assert_eq!(remote.rows, local.rows, "{farms} farms");
    }
}

#[test]
fn gpu_lockstep_matches_plain_engines() {
    let model = Arc::new(biomodels::lotka_volterra(
        biomodels::LotkaVolterraParams::default(),
    ));
    let cfg = cfg();
    let mut device = DeviceMap::new(
        Arc::clone(&model),
        cfg.instances,
        cfg.base_seed,
        cfg.t_end,
        cfg.quantum,
        cfg.sample_period,
    );
    let outputs = device.run_to_end();

    for i in 0..cfg.instances {
        let mut engine = SsaEngine::new(Arc::clone(&model), cfg.base_seed, i);
        let mut clock = SampleClock::new(0.0, cfg.sample_period);
        let mut expected = Vec::new();
        engine.run_sampled(cfg.t_end, &mut clock, |t, v| expected.push((t, v.to_vec())));
        let got: Vec<(f64, Vec<u64>)> = outputs
            .iter()
            .filter(|o| o.instance == i)
            .flat_map(|o| o.samples.clone())
            .collect();
        assert_eq!(got, expected, "instance {i} diverged on the device");
    }
}

#[test]
fn gpu_quantum_size_does_not_change_results() {
    let model = Arc::new(biomodels::simple::birth_death(30.0, 1.0, 0));
    let run = |quantum: f64| {
        let mut device = DeviceMap::new(Arc::clone(&model), 6, 5, 2.0, quantum, 0.25);
        let mut out = device.run_to_end();
        out.sort_by_key(|o| o.instance);
        out.into_iter()
            .map(|o| (o.instance, o.samples))
            .collect::<Vec<_>>()
    };
    // Different Q/τ ratios, identical trajectories (pending-event exactness).
    type Samples = Vec<(f64, Vec<u64>)>;
    fn by_instance(outputs: Vec<(u64, Samples)>) -> Vec<(u64, Samples)> {
        let mut per_instance: std::collections::BTreeMap<u64, Samples> = Default::default();
        for (i, s) in outputs {
            per_instance.entry(i).or_default().extend(s);
        }
        per_instance.into_iter().collect()
    }
    assert_eq!(by_instance(run(0.25)), by_instance(run(2.0)));
}

#[test]
fn wire_codec_round_trips_real_batches() {
    use cwc_repro::cwcsim::task::{SampleBatch, SimTask};
    use cwc_repro::distrt::{from_bytes, to_bytes};

    let model = Arc::new(biomodels::simple::decay(30, 1.0));
    let mut task = SimTask::new(model, 3, 0, 2.0, 0.5, 0.25);
    while !task.is_done() {
        let mut samples = Vec::new();
        let events = task.run_quantum(&mut samples);
        let batch = SampleBatch {
            instance: task.instance(),
            samples,
            events,
            finished: task.is_done(),
        };
        let bytes = to_bytes(&batch);
        let back: SampleBatch = from_bytes(&bytes).unwrap();
        assert_eq!(back, batch);
    }
}
