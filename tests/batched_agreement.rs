//! The batched SoA tier's core contract (PR 6): every replica of a
//! [`BatchedSsaEngine`] batch is **bit-for-bit** the scalar direct-method
//! trajectory of the same instance.
//!
//! Two pillars, mirroring `tests/incremental_table.rs`:
//!
//! 1. **Golden trajectory fingerprints** — full sampled batched runs over
//!    irregular quantum slicings on the three flat models of the agreement
//!    matrix, hashed bit-for-bit (`f64::to_bits` on every grid time,
//!    every observable value). The golden constants were recorded from the
//!    *scalar* [`SsaEngine`] driven through the identical schedule — the
//!    batched tier must reproduce them exactly, and a live scalar replay
//!    cross-checks the recording method itself.
//!
//! 2. **Propensity-sum identity** — a property test that the batch's
//!    vectorized `a0` equals the scalar engine's running total *in bits*
//!    at every quantum boundary, including the `-0.0` an exhausted state
//!    reports (the sign bit distinguishes "no enabled reactions" from a
//!    genuine zero-propensity sum, so it must survive vectorization).

use proptest::prelude::*;
use std::sync::Arc;

use cwc_repro::biomodels::{schlogl, simple, SchloglParams};
use cwc_repro::cwc::model::Model;
use cwc_repro::gillespie::batch::kernels::KernelDispatch;
use cwc_repro::gillespie::batch::BatchedSsaEngine;
use cwc_repro::gillespie::engine::BatchEngine;
use cwc_repro::gillespie::ssa::{SampleClock, SsaEngine};

// ---------------------------------------------------------------------------
// Golden trajectory fingerprints
// ---------------------------------------------------------------------------

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The irregular quantum schedule: cycles through uneven fractions of the
/// horizon so quantum boundaries land between, on, and beyond event times.
/// Indexed by quantum count (not events) so it is common to every replica
/// of a lockstep batch.
fn schedule(t_end: f64) -> impl Iterator<Item = f64> {
    let quanta = [0.13, 0.29, 0.5, 0.77, 1.0];
    let mut t = 0.0;
    let mut k = 0usize;
    std::iter::from_fn(move || {
        if t >= t_end {
            return None;
        }
        t = (t + quanta[k % quanta.len()] * t_end / 10.0).min(t_end);
        k += 1;
        Some(t)
    })
}

/// Per-replica `(sample_hash, events, final_observables)` of a batched run
/// over the irregular schedule.
fn batched_fingerprints(
    model: Arc<Model>,
    seed: u64,
    first: u64,
    width: usize,
    t_end: f64,
) -> Vec<(u64, u64, Vec<u64>)> {
    batched_fingerprints_with(model, seed, first, width, t_end, KernelDispatch::Auto)
}

/// Like [`batched_fingerprints`], with an explicit kernel dispatch — the
/// scalar and SIMD kernel layers must both reproduce the goldens.
fn batched_fingerprints_with(
    model: Arc<Model>,
    seed: u64,
    first: u64,
    width: usize,
    t_end: f64,
    dispatch: KernelDispatch,
) -> Vec<(u64, u64, Vec<u64>)> {
    let mut batch = BatchedSsaEngine::new(model, seed, first, width)
        .unwrap()
        .with_kernel_dispatch(dispatch);
    let mut clocks: Vec<SampleClock> = (0..width)
        .map(|_| SampleClock::new(0.0, t_end / 40.0))
        .collect();
    let mut hashes = vec![0u64; width];
    let mut events = vec![0u64; width];
    for t in schedule(t_end) {
        for (r, outcome) in batch
            .advance_quantum_batch(t, &mut clocks)
            .into_iter()
            .enumerate()
        {
            events[r] += outcome.events;
            for (ts, v) in &outcome.samples {
                hashes[r] = fnv1a(hashes[r], &ts.to_bits().to_le_bytes());
                for &x in v {
                    hashes[r] = fnv1a(hashes[r], &x.to_le_bytes());
                }
            }
        }
    }
    (0..width)
        .map(|r| (hashes[r], events[r], batch.observe_replica(r)))
        .collect()
}

/// The scalar reference: instance `first + r` through the identical
/// schedule and clock — the definition the batched tier must reproduce.
fn scalar_fingerprints(
    model: Arc<Model>,
    seed: u64,
    first: u64,
    width: usize,
    t_end: f64,
) -> Vec<(u64, u64, Vec<u64>)> {
    (0..width)
        .map(|r| {
            let mut engine = SsaEngine::new(Arc::clone(&model), seed, first + r as u64);
            let mut clock = SampleClock::new(0.0, t_end / 40.0);
            let mut hash = 0u64;
            let mut events = 0u64;
            for t in schedule(t_end) {
                events += engine.run_sampled(t, &mut clock, |ts, v| {
                    hash = fnv1a(hash, &ts.to_bits().to_le_bytes());
                    for &x in v {
                        hash = fnv1a(hash, &x.to_le_bytes());
                    }
                });
            }
            (hash, events, engine.observe())
        })
        .collect()
}

fn model_by_name(name: &str) -> Arc<Model> {
    match name {
        "decay" => Arc::new(simple::decay(60, 1.0)),
        "dimerisation" => Arc::new(simple::dimerisation(0.01, 0.1, 120)),
        "schlogl" => Arc::new(schlogl(SchloglParams::default())),
        other => panic!("unknown golden model {other}"),
    }
}

/// (model, seed, first_instance, replica, sample_hash, events, final obs).
type GoldenRow = (&'static str, u64, u64, usize, u64, u64, &'static [u64]);

/// Recorded from the scalar `SsaEngine` (the tier's definition) at the
/// PR 6 seed; `golden_rows_match_a_live_scalar_replay` re-derives them on
/// every run so a recording error cannot hide a divergence.
const GOLDEN: &[GoldenRow] = &[
    ("decay", 2014, 0, 0, 0xd69a4d0e07b8d117, 56, &[4]),
    ("decay", 2014, 0, 1, 0x881f08949092f5a1, 58, &[2]),
    ("decay", 2014, 0, 2, 0xb8e19d59ffd0c15e, 59, &[1]),
    (
        "dimerisation",
        2014,
        5,
        0,
        0x3f64a89b1cbe79e7,
        62,
        &[36, 42],
    ),
    (
        "dimerisation",
        2014,
        5,
        1,
        0x8368b0c471355efc,
        63,
        &[34, 43],
    ),
    (
        "dimerisation",
        2014,
        5,
        2,
        0x03e540dfd4c682ce,
        59,
        &[30, 45],
    ),
    ("schlogl", 99, 2, 0, 0xb2d31e25e34763d6, 5110, &[84]),
    ("schlogl", 99, 2, 1, 0xecf03633d870f8e4, 26022, &[574]),
    ("schlogl", 99, 2, 2, 0xffd9c36b25f08630, 18222, &[618]),
];

const WIDTH: usize = 3;

fn horizon(model: &str) -> f64 {
    match model {
        "schlogl" => 4.0,
        _ => 3.0,
    }
}

#[test]
fn batched_trajectories_match_the_golden_scalar_fingerprints() {
    for batch_start in (0..GOLDEN.len()).step_by(WIDTH) {
        let &(model, seed, first, _, _, _, _) = &GOLDEN[batch_start];
        let got = batched_fingerprints(model_by_name(model), seed, first, WIDTH, horizon(model));
        for (r, (hash, events, obs)) in got.into_iter().enumerate() {
            let &(_, _, _, replica, ghash, gevents, gobs) = &GOLDEN[batch_start + r];
            assert_eq!(replica, r, "golden table ordering");
            assert_eq!(
                (hash, events, obs.as_slice()),
                (ghash, gevents, gobs),
                "{model} seed={seed} replica {r} diverged from the golden scalar trajectory"
            );
        }
    }
}

/// The kernel-dispatch matrix: forcing the scalar reference and
/// requesting SIMD (which resolves to AVX2 where available, scalar
/// elsewhere) must both land exactly on the golden fingerprints — the
/// kernel layer may never change a bit of a trajectory. Together with
/// CI's `CWC_FORCE_SCALAR_KERNELS` leg this runs the suite "both ways".
#[test]
fn golden_fingerprints_hold_under_every_kernel_dispatch() {
    for dispatch in [
        KernelDispatch::Scalar,
        KernelDispatch::Simd,
        KernelDispatch::Auto,
    ] {
        for batch_start in (0..GOLDEN.len()).step_by(WIDTH) {
            let &(model, seed, first, _, _, _, _) = &GOLDEN[batch_start];
            let got = batched_fingerprints_with(
                model_by_name(model),
                seed,
                first,
                WIDTH,
                horizon(model),
                dispatch,
            );
            for (r, (hash, events, obs)) in got.into_iter().enumerate() {
                let &(_, _, _, _, ghash, gevents, gobs) = &GOLDEN[batch_start + r];
                assert_eq!(
                    (hash, events, obs.as_slice()),
                    (ghash, gevents, gobs),
                    "{model} replica {r} diverged under dispatch {dispatch}"
                );
            }
        }
    }
}

/// Chunk-plus-tail widths through the engine: width 33 runs eight AVX2
/// chunks and one scalar tail lane; every lane must still be the scalar
/// instance's trajectory, whichever kernel set is dispatched.
#[test]
fn wide_batches_match_scalar_instances_under_both_dispatches() {
    let model = model_by_name("schlogl");
    let t_end = 1.0;
    let scalar = scalar_fingerprints(Arc::clone(&model), 7, 2, 33, t_end);
    for dispatch in [KernelDispatch::Scalar, KernelDispatch::Simd] {
        let got = batched_fingerprints_with(Arc::clone(&model), 7, 2, 33, t_end, dispatch);
        assert_eq!(got, scalar, "width-33 batch diverged under {dispatch}");
    }
}

#[test]
fn golden_rows_match_a_live_scalar_replay() {
    for batch_start in (0..GOLDEN.len()).step_by(WIDTH) {
        let &(model, seed, first, _, _, _, _) = &GOLDEN[batch_start];
        let live = scalar_fingerprints(model_by_name(model), seed, first, WIDTH, horizon(model));
        for (r, (hash, events, obs)) in live.into_iter().enumerate() {
            let &(_, _, _, _, ghash, gevents, gobs) = &GOLDEN[batch_start + r];
            assert_eq!(
                (hash, events, obs.as_slice()),
                (ghash, gevents, gobs),
                "{model} seed={seed} replica {r}: golden constant is stale"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Propensity-sum identity (bit-for-bit, including -0.0)
// ---------------------------------------------------------------------------

/// A flat cascade that always exhausts: A decays two ways, B decays too,
/// so for a long enough horizon the terminal state has no enabled
/// reactions and both tiers must report `a0 = -0.0` (bitwise).
fn cascade(a0: u64, b0: u64, k1: f64, k2: f64) -> Arc<Model> {
    let mut m = Model::new("cascade");
    let a = m.species("A");
    let b = m.species("B");
    m.rule("sink").consumes("A", 1).rate(k1).build().unwrap();
    m.rule("convert")
        .consumes("A", 1)
        .produces("B", 1)
        .rate(k2)
        .build()
        .unwrap();
    m.rule("drain").consumes("B", 1).rate(0.7).build().unwrap();
    m.initial.add_atoms(a, a0);
    m.initial.add_atoms(b, b0);
    m.observe("A", a);
    m.observe("B", b);
    Arc::new(m)
}

proptest! {
    #[test]
    fn batched_propensity_sums_equal_scalar_sums_bit_for_bit(
        seed in 0u64..5_000,
        a0 in 0u64..30,
        b0 in 0u64..20,
        k1 in 0.05f64..3.0,
        k2 in 0.0f64..2.0,
        width in 1usize..5,
    ) {
        let model = cascade(a0, b0, k1, k2);
        // Long horizon: most cases reach exhaustion, exercising the -0.0
        // identity and not just the live-propensity path.
        let t_end = 40.0;
        let mut batch = BatchedSsaEngine::new(Arc::clone(&model), seed, 0, width).unwrap();
        let mut clocks: Vec<SampleClock> = (0..width)
            .map(|_| SampleClock::new(0.0, t_end / 8.0))
            .collect();
        let mut scalars: Vec<(SsaEngine, SampleClock)> = (0..width as u64)
            .map(|i| (
                SsaEngine::new(Arc::clone(&model), seed, i),
                SampleClock::new(0.0, t_end / 8.0),
            ))
            .collect();
        for t in schedule(t_end) {
            batch.advance_quantum_batch(t, &mut clocks);
            for (r, (engine, clock)) in scalars.iter_mut().enumerate() {
                engine.run_sampled(t, clock, |_, _| {});
                let scalar_a0 = engine.total_propensity();
                let batch_a0 = batch.total_propensity(r);
                prop_assert!(
                    batch_a0.to_bits() == scalar_a0.to_bits(),
                    "replica {r} a0 diverged at t={t}: batched {batch_a0:?} \
                     ({:#x}) vs scalar {scalar_a0:?} ({:#x})",
                    batch_a0.to_bits(),
                    scalar_a0.to_bits()
                );
            }
        }
        // The terminal comparison must have included genuine exhaustion
        // whenever everything drained: -0.0, not +0.0.
        for (r, (engine, _)) in scalars.iter().enumerate() {
            if engine.observe() == [0, 0] {
                prop_assert!(
                    batch.total_propensity(r).to_bits() == (-0.0f64).to_bits(),
                    "exhausted replica {r} must report -0.0"
                );
            }
        }
    }
}
