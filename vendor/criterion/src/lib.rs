//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. The bench sources under `crates/bench/benches/` use
//! the real criterion surface (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`Throughput`]); this
//! crate accepts that surface and performs a simple wall-clock measurement:
//! a short warm-up, then `sample_size` timed samples, reporting min/mean
//! per-iteration time and derived throughput.
//!
//! No statistics beyond that — comparisons against saved baselines belong
//! to the real crate, which can be swapped in at the workspace manifest.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput of one benchmark iteration, for elements/s or bytes/s rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level harness handle; one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group: shared throughput/sample-size settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timed samples to take per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Measure one benchmark: `f` drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self
                .sample_size
                .unwrap_or(self._criterion.default_sample_size),
        };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        eprintln!("  {group}/{id}: no samples (Bencher::iter never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty samples");
    let rate = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let per_sec = n as f64 / mean.as_secs_f64();
            format!(", {} {unit}", human_rate(per_sec))
        })
        .unwrap_or_default();
    eprintln!(
        "  {group}/{id}: mean {mean:?}, min {min:?} over {} samples{rate}",
        samples.len()
    );
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.2}")
    }
}

/// Bundle benchmark functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("self-test");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
