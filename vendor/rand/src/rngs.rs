//! Concrete generators. Only [`StdRng`] — the one the simulator names.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++.
///
/// Deterministic and seedable; see the crate docs for the (deliberate)
/// difference from the real `rand::rngs::StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        StdRng { s }
    }
}
