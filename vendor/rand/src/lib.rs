//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds on machines with no crates.io access, so the small
//! API subset the simulator uses is re-implemented here under the same
//! package name: [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] and
//! [`rngs::StdRng`]. Swapping in the real crate later only requires editing
//! the workspace manifest — no `use` rewrites.
//!
//! [`rngs::StdRng`] is xoshiro256++ (Blackman & Vigna) seeded through a
//! SplitMix64 stream. It does **not** reproduce the bit stream of the real
//! `rand::rngs::StdRng` (ChaCha12); it only promises what the simulator
//! needs: a deterministic, seedable, statistically solid generator, so
//! identical seeds give identical trajectories on every backend.

#![warn(missing_docs)]

pub mod rngs;

/// A random number generator core: uniform raw bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through a SplitMix64 stream —
    /// nearby seeds yield decorrelated generators.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let take = (bytes.len() - i).min(8);
            bytes[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample. Implemented for `Range` and
/// `RangeInclusive` over the primitive numeric types the workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// SplitMix64: seed expander and the engine behind integer sampling.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method
/// with rejection, so integer sampling is exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain: raw bits.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                // Clamp keeps the sample inside [start, end) even when the
                // scale arithmetic rounds up.
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end {
                    self.start.max(<$t>::from_bits(self.end.to_bits() - 1))
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&x));
            let n: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn min_positive_range_never_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} outside tolerance"
            );
        }
    }
}
