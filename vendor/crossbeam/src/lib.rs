//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate. Only [`utils::CachePadded`] is used by this workspace (the
//! lock-free SPSC queues pad their producer/consumer indices to defeat
//! false sharing); it is re-implemented here so builds work without
//! crates.io access.

#![warn(missing_docs)]

pub mod utils {
    //! Utilities: cache-line padding.

    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so two `CachePadded` fields
    /// never share a cache line (128 covers the spatial-prefetcher pairing
    /// on modern x86 and the 128-byte lines on some aarch64 parts).
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in its own cache line.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn alignment_and_access() {
            let padded = CachePadded::new(7u64);
            assert_eq!(core::mem::align_of_val(&padded), 128);
            assert_eq!(*padded, 7);
            assert_eq!(padded.into_inner(), 7);
        }
    }
}
