//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, accepting the API surface the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*`, [`strategy::Strategy`] with
//! `prop_map`/`prop_recursive`/`boxed`, range and tuple strategies,
//! [`collection::vec`] and [`arbitrary::any`].
//!
//! Semantics are simplified relative to the real crate: cases are drawn
//! from a deterministic per-test RNG (seeded from the test's name, so
//! failures reproduce run-to-run) and there is **no shrinking** — a
//! failure reports the case index and seed instead of a minimised input.
//! Swapping the real crate back in is a workspace-manifest change only.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Single import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many generated cases.
///
/// The body may use `prop_assert*` and `return Ok(())`; it runs inside a
/// closure returning `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
    )*};
}

/// Like `assert!`, but fails the current property case instead of
/// panicking directly (the runner reports the case index and seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

/// Like `assert_ne!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}
