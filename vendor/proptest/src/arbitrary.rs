//! `any::<T>()` — strategies for whole primitive domains.

use std::marker::PhantomData;

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value uniformly from the type's domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy over `T`'s whole domain; construct with [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T` (uniform raw values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.generate(&mut rng)).count();
        assert!((20..80).contains(&trues));
    }

    #[test]
    fn any_u8_covers_range() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..10_000 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 200);
    }
}
