//! The case runner and its deterministic RNG.

use std::fmt;

use rand::SeedableRng;

/// RNG handed to strategies while generating a case.
pub type TestRng = rand::rngs::StdRng;

/// Why a property case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Cases per property. Overridable with `PROPTEST_CASES`.
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// FNV-1a, for a stable per-test base seed.
fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in data.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drive `case` over the configured number of generated cases.
///
/// Each case gets a fresh RNG derived from (test name, case index), so a
/// reported failure is reproducible by name and index alone. Set
/// `PROPTEST_SEED` to perturb every test's stream at once.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
        ^ fnv1a(name);
    let cases = case_count();
    for index in 0..cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(index));
        if let Err(err) = case(&mut rng) {
            panic!(
                "property `{name}` failed at case {index}/{cases} \
                 (base seed {base}): {err}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_passes_trivial_property() {
        run_cases("trivial", |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "property `failing` failed at case 0")]
    fn runner_reports_first_failing_case() {
        run_cases("failing", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn per_test_streams_differ() {
        use rand::RngCore;
        let mut a = TestRng::seed_from_u64(fnv1a("one"));
        let mut b = TestRng::seed_from_u64(fnv1a("two"));
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
