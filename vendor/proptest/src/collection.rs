//! Collection strategies (`vec`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty vec size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_stays_in_range() {
        let strat = vec(0u64..100, 2..5);
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn exact_size_and_inclusive_forms() {
        let mut rng = TestRng::seed_from_u64(5);
        assert_eq!(vec(0u64..9, 3).generate(&mut rng).len(), 3);
        let v = vec(0u64..9, 1..=2).generate(&mut rng);
        assert!((1..=2).contains(&v.len()));
    }
}
