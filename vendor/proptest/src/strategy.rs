//! Value-generation strategies and their combinators.

use std::rc::Rc;

use rand::{Rng, SampleRange};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a generator — there
/// is no value tree and no shrinking.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { base: self, map }
    }

    /// Build a recursive strategy: `recurse` wraps the accumulated
    /// strategy, nesting at most `depth` levels on top of `self`.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// proptest signature compatibility; only `depth` is honoured.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T> std::fmt::Debug for Recursive<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recursive")
            .field("depth", &self.depth)
            .finish()
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.gen_range(0..=self.depth);
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Clone,
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn range_and_tuple_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let (a, b) = (0usize..4, 1u64..5).generate(&mut rng);
            assert!(a < 4);
            assert!((1..5).contains(&b));
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = rng();
        let doubled = (1u64..10).prop_map(|x| x * 2).generate(&mut rng);
        assert_eq!(doubled % 2, 0);
    }

    #[test]
    fn recursive_respects_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(inner) => 1 + depth(inner),
            }
        }
        let strat = (0u64..10)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| inner.prop_map(|t| Tree::Node(Box::new(t))));
        let mut rng = rng();
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_seen > 0, "recursion never taken");
        assert!(max_seen <= 3, "depth bound violated: {max_seen}");
    }

    #[test]
    fn just_yields_value() {
        assert_eq!(Just(41).generate(&mut rng()), 41);
    }
}
