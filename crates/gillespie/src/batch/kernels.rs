//! The batched tier's kernel layer: runtime-dispatched implementations of
//! the four hot loops of [`BatchedSsaEngine`](super::BatchedSsaEngine).
//!
//! Every kernel exists twice — a portable scalar reference and an x86_64
//! AVX2 variant selected at runtime via `is_x86_feature_detected!` — and
//! the two are **bit-for-bit identical** by construction:
//!
//! 1. **Propensity slot recompute** (`refresh`, phase 1): a propensity is
//!    an exact `u64` binomial product with a single final `as f64` cast
//!    and a positive clamp — a pure function of the replica's counts. The
//!    AVX2 path computes four replica lanes at once for the common rule
//!    shapes (`k=1`, `k=2`, `k=1×k=1`), where the whole product stays
//!    below 2⁵² and is therefore *exactly* representable in a `f64` lane;
//!    a per-chunk magnitude guard drops to the scalar formula the moment
//!    exactness could be lost, so overflow saturation and cast rounding
//!    never diverge. Because the value is count-pure, the vector path may
//!    recompute a clean lane that shares a chunk with a dirty one — it
//!    rewrites the identical bits.
//! 2. **Prefix fold + `a0` extraction** (`refresh`, phase 2): the fold
//!    starts from the additive identity `-0.0` and *skips* (never adds)
//!    disabled propensities, preserving the `-0.0` an exhausted replica
//!    reports. The AVX2 fold runs four lanes in lockstep and replicates
//!    the skip with a blend — `acc` either takes `acc + p` or keeps its
//!    old bits — so the adds happen in the same slot order with the same
//!    operands per lane as the scalar fold.
//!    An incremental refresh refolds only from the lowest recomputed
//!    slot, reseeding the accumulator from the stored `prefix[from - 1]`
//!    bits — the exact tail of the full fold, since the lower slots are
//!    untouched since the last refresh.
//! 3. **Direct-method selection** (`select_masked`): the scalar kernel
//!    binary-searches a replica's prefix column for the first slot whose
//!    cumulative propensity exceeds the target. The AVX2 kernel instead
//!    *counts*, four lanes at a time, the slots whose prefix has not yet
//!    crossed — the per-slot predicate is `!(prefix > target)`, bitwise
//!    the negation of the search's, and on a non-decreasing column that
//!    count **is** the crossing index — falling back to the per-lane
//!    binary search on wide slot tables where the scan loses. Both agree
//!    exactly, floating-point-shortfall fallback included.
//! 4. **Lockstep RNG stepping** (`BatchRng`): the W per-replica
//!    xoshiro256++ streams advance in SIMD lanes. The state update is
//!    branch-free `u64` arithmetic (adds, xors, shifts, rotates), so the
//!    vector step emits exactly the scalar streams' outputs; a draw mask
//!    blends the old state back into lanes that must not consume a draw,
//!    keeping every lane's stream position identical to the scalar
//!    engine's draw discipline (see [`crate::rng`]). The selection and
//!    assignment draws of a round share one fused sweep, costing a
//!    single state load/store round-trip.
//!
//! Dispatch is a [`KernelDispatch`] knob (auto/scalar/simd) resolved once
//! per engine; setting the [`FORCE_SCALAR_ENV`] environment variable
//! forces the scalar reference everywhere, which is how CI exercises both
//! implementations against the same golden fingerprints.

use std::ops::Range;

use cwc::multiset::binomial;
use rand::{Rng, RngCore};

use crate::rng::instance_seed;

/// Environment variable that forces the scalar reference kernels
/// regardless of the configured [`KernelDispatch`] (any non-empty value
/// other than `0`). CI's dispatch-coverage leg sets it to run the whole
/// test suite — golden fingerprints included — over the scalar path.
pub const FORCE_SCALAR_ENV: &str = "CWC_FORCE_SCALAR_KERNELS";

/// `dirty` marker: the replica's propensity rows are current.
pub(crate) const CLEAN: u32 = u32::MAX;
/// `dirty` marker: recompute every propensity row of the replica.
pub(crate) const DIRTY_ALL: u32 = u32::MAX - 1;

/// Kernel selection knob, threaded from the run configuration down to
/// [`BatchedSsaEngine`](super::BatchedSsaEngine). The choice never
/// changes results — both implementations are bit-for-bit identical — it
/// only selects how the batched hot loops execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelDispatch {
    /// Use SIMD kernels when the CPU supports them (runtime-detected),
    /// the scalar reference otherwise. The default.
    #[default]
    Auto,
    /// Always use the portable scalar reference kernels.
    Scalar,
    /// Request the SIMD kernels; falls back to scalar when the CPU lacks
    /// AVX2 (results are identical either way, so this is a preference,
    /// not a hard requirement).
    Simd,
}

impl KernelDispatch {
    /// Resolves the knob against the running CPU (and the
    /// [`FORCE_SCALAR_ENV`] override) into a concrete kernel set.
    pub fn resolve(self) -> Kernel {
        if force_scalar_env() || self == KernelDispatch::Scalar {
            return Kernel::Scalar;
        }
        if simd_available() {
            Kernel::Avx2
        } else {
            Kernel::Scalar
        }
    }
}

impl std::str::FromStr for KernelDispatch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelDispatch::Auto),
            "scalar" => Ok(KernelDispatch::Scalar),
            "simd" => Ok(KernelDispatch::Simd),
            other => Err(format!(
                "unknown kernel dispatch `{other}` (expected auto, scalar or simd)"
            )),
        }
    }
}

impl std::fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelDispatch::Auto => "auto",
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Simd => "simd",
        })
    }
}

/// A resolved kernel set — what [`KernelDispatch::resolve`] produced for
/// this process. [`Kernel::Avx2`] is only ever constructed after runtime
/// feature detection succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The portable scalar reference.
    Scalar,
    /// x86_64 AVX2 four-lane kernels.
    Avx2,
}

/// Whether the SIMD kernels can run on this CPU (x86_64 with AVX2).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn force_scalar_env() -> bool {
    match std::env::var_os(FORCE_SCALAR_ENV) {
        Some(v) => !v.is_empty() && v != *"0",
        None => false,
    }
}

// ---------------------------------------------------------------------------
// Propensity recompute + prefix fold
// ---------------------------------------------------------------------------

/// Vectorization plan of one reaction slot, classified once per batch
/// from the rule's reactant multiset. The named shapes are the ones whose
/// selection count the AVX2 path can reproduce exactly in `f64` lanes
/// (under the magnitude guards described in the module docs); everything
/// else takes the scalar formula per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotPlan {
    /// One reactant species, multiplicity 1: `h = n`.
    K1 {
        /// Species index of the reactant.
        sp: usize,
    },
    /// One reactant species, multiplicity 2: `h = n(n-1)/2`.
    K2 {
        /// Species index of the reactant.
        sp: usize,
    },
    /// Two reactant species, multiplicity 1 each: `h = n₁·n₂`.
    K11 {
        /// Species index of the first reactant.
        a: usize,
        /// Species index of the second reactant.
        b: usize,
    },
    /// Any other shape: scalar binomial products per lane.
    General,
}

impl SlotPlan {
    /// Classifies a slot from its reactant multiplicities.
    pub(crate) fn of(reactants: &[(usize, u64)]) -> Self {
        match *reactants {
            [(sp, 1)] => SlotPlan::K1 { sp },
            [(sp, 2)] => SlotPlan::K2 { sp },
            [(a, 1), (b, 1)] => SlotPlan::K11 { a, b },
            _ => SlotPlan::General,
        }
    }
}

/// Immutable inputs of the propensity kernels: the batch's SoA counts and
/// the per-slot rate/reactant/plan tables (slot-indexed, i.e. already
/// filtered to non-zero-rate rules in rule order).
#[derive(Debug)]
pub(crate) struct SlotView<'a> {
    /// Batch width (replica count).
    pub width: usize,
    /// SoA counts: `counts[sp * width + r]`.
    pub counts: &'a [i64],
    /// Per-slot mass-action rate constants.
    pub rates: &'a [f64],
    /// Per-slot vectorization plans.
    pub plans: &'a [SlotPlan],
    /// Per-slot reactant multiplicities, for the general scalar formula.
    pub reactants: &'a [Vec<(usize, u64)>],
}

impl SlotView<'_> {
    /// Number of reaction slots.
    pub(crate) fn slots(&self) -> usize {
        self.plans.len()
    }

    /// The scalar reference propensity: the exact `u64` binomial selection
    /// count with a single final float cast, then the positive clamp —
    /// the definition every kernel must reproduce bit-for-bit.
    pub(crate) fn propensity(&self, slot: usize, r: usize) -> f64 {
        let mut h: u64 = 1;
        for &(sp, k) in &self.reactants[slot] {
            let n = self.counts[sp * self.width + r];
            debug_assert!(n >= 0, "flat SSA state went negative");
            if (n as u64) < k {
                return 0.0;
            }
            h = h.saturating_mul(binomial(n as u64, k));
            if h == 0 {
                return 0.0;
            }
        }
        let p = self.rates[slot] * h as f64;
        if p > 0.0 {
            p
        } else {
            0.0
        }
    }
}

/// Mutable outputs of the refresh kernels: the propensity matrix, the
/// per-replica prefix columns and the enabled bookkeeping, plus the dirty
/// markers the refresh consumes and clears.
#[derive(Debug)]
pub(crate) struct RefreshOut<'a> {
    /// SoA propensities: `props[slot * width + r]`.
    pub props: &'a mut [f64],
    /// SoA prefix sums of the enabled propensities.
    pub prefix: &'a mut [f64],
    /// Per-replica total propensity (`-0.0` when exhausted).
    pub a0: &'a mut [f64],
    /// Per-replica count of enabled slots.
    pub active: &'a mut [u32],
    /// Per-replica first enabled slot (`u32::MAX` when none).
    pub first_active: &'a mut [u32],
    /// Per-replica dirty markers ([`CLEAN`], [`DIRTY_ALL`] or fired slot).
    pub dirty: &'a mut [u32],
}

/// Reusable scratch set of slot indices (stamp-based, O(1) clear), used
/// by the AVX2 refresh to union the incidence lists of a replica chunk.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl SlotSet {
    /// Sizes the set for `slots` slot indices.
    pub(crate) fn new(slots: usize) -> Self {
        SlotSet {
            stamp: vec![0; slots],
            epoch: 0,
        }
    }

    /// Starts a new (empty) union.
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Inserts `slot`; returns `true` the first time it is seen.
    fn insert(&mut self, slot: u32) -> bool {
        let cell = &mut self.stamp[slot as usize];
        if *cell == self.epoch {
            false
        } else {
            *cell = self.epoch;
            true
        }
    }
}

/// Phase 1+2 of the batched round: bring every dirty replica's propensity
/// rows, prefix sums, `a0` and enabled bookkeeping up to date, clearing
/// the dirty markers. Dispatches to the resolved kernel; both paths are
/// bit-for-bit identical (see module docs).
pub(crate) fn refresh(
    kernel: Kernel,
    view: &SlotView<'_>,
    affects: &[Vec<u32>],
    out: &mut RefreshOut<'_>,
    seen: &mut SlotSet,
) {
    match kernel {
        Kernel::Scalar => {
            for r in 0..view.width {
                refresh_lane(view, affects, out, r);
            }
        }
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only constructed by
            // `KernelDispatch::resolve` after `is_x86_feature_detected!`
            // confirmed AVX2 on this CPU.
            unsafe {
                avx2::refresh(view, affects, out, seen)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = seen;
                unreachable!("AVX2 kernel resolved on a non-x86_64 target")
            }
        }
    }
}

/// The scalar reference refresh of one replica lane — recompute the
/// marked slots, then the adds-only prefix fold from the `-0.0` identity
/// (skipping, never adding, disabled propensities). An incremental mark
/// only refolds the suffix from the lowest recomputed slot: the prefix
/// below it is untouched, so reseeding the accumulator from the stored
/// `prefix[from - 1]` bits replays the exact tail of the full fold.
fn refresh_lane(view: &SlotView<'_>, affects: &[Vec<u32>], out: &mut RefreshOut<'_>, r: usize) {
    let w = view.width;
    let nr = view.slots();
    let mark = out.dirty[r];
    if mark == CLEAN {
        return;
    }
    if mark == DIRTY_ALL {
        for j in 0..nr {
            out.props[j * w + r] = view.propensity(j, r);
        }
        fold_lane(view, out, r);
    } else {
        // Enabled-transition bookkeeping: the fold no longer walks the
        // whole column, so the active count is updated by the observed
        // disabled↔enabled flips of the recomputed slots.
        let mut delta = 0i32;
        let mut from = usize::MAX;
        for &j in &affects[mark as usize] {
            let j = j as usize;
            from = from.min(j);
            let old = out.props[j * w + r];
            let new = view.propensity(j, r);
            out.props[j * w + r] = new;
            delta += i32::from(new > 0.0) - i32::from(old > 0.0);
        }
        if from != usize::MAX {
            fold_lane_from(view, out, r, from, delta);
        }
    }
    out.dirty[r] = CLEAN;
}

/// The scalar reference prefix fold of one replica lane.
fn fold_lane(view: &SlotView<'_>, out: &mut RefreshOut<'_>, r: usize) {
    let w = view.width;
    let nr = view.slots();
    let mut a0 = -0.0f64;
    let mut active = 0u32;
    let mut first = u32::MAX;
    for j in 0..nr {
        let p = out.props[j * w + r];
        if p > 0.0 {
            a0 += p;
            if active == 0 {
                first = j as u32;
            }
            active += 1;
        }
        out.prefix[j * w + r] = a0;
    }
    out.a0[r] = a0;
    out.active[r] = active;
    out.first_active[r] = first;
}

/// Partial scalar prefix fold: refolds slots `from..` with the
/// accumulator reseeded from the stored `prefix[from - 1]` (or the
/// `-0.0` identity at slot 0) — bit-for-bit the tail of [`fold_lane`]
/// because the lower slots are unchanged since the last refresh. The
/// active count moves by the caller-observed `delta`; `first_active`
/// keeps its value when it lies below `from` (that region is untouched)
/// and otherwise becomes the first enabled slot at or above `from`.
fn fold_lane_from(
    view: &SlotView<'_>,
    out: &mut RefreshOut<'_>,
    r: usize,
    from: usize,
    delta: i32,
) {
    let w = view.width;
    let nr = view.slots();
    let mut a0 = if from == 0 {
        -0.0f64
    } else {
        out.prefix[(from - 1) * w + r]
    };
    let mut first_ge = u32::MAX;
    for j in from..nr {
        let p = out.props[j * w + r];
        if p > 0.0 {
            a0 += p;
            if first_ge == u32::MAX {
                first_ge = j as u32;
            }
        }
        out.prefix[j * w + r] = a0;
    }
    out.a0[r] = a0;
    out.active[r] = (out.active[r] as i32 + delta) as u32;
    if out.first_active[r] >= from as u32 {
        out.first_active[r] = first_ge;
    }
}

// ---------------------------------------------------------------------------
// Direct-method selection
// ---------------------------------------------------------------------------

/// Slot count up to which the AVX2 selection uses the four-lane counting
/// scan; above it, per-lane binary search wins (the scan is `O(slots)`
/// per chunk, the search `O(log slots)` per lane). Both produce the same
/// index on the non-decreasing prefix columns, so the cutover is purely a
/// speed knob.
const SELECT_SCAN_MAX_SLOTS: usize = 64;

/// Direct-method selection over the prefix columns: for every lane with
/// `mask` set, finds the first slot whose cumulative propensity exceeds
/// the lane's `target` and writes it to `chosen`. Unmasked lanes are left
/// untouched.
///
/// The prefix column is non-decreasing (an adds-only fold of positive
/// propensities), so "first slot crossing the target" is both what a
/// binary search finds and what a count of not-yet-crossed slots yields —
/// the scalar and AVX2 paths use one each and agree exactly, including
/// the last-enabled fallback on floating-point shortfall.
pub(crate) fn select_masked(
    kernel: Kernel,
    prefix: &[f64],
    props: &[f64],
    width: usize,
    mask: &[bool],
    targets: &[f64],
    chosen: &mut [u32],
) {
    match kernel {
        Kernel::Scalar => {
            for r in 0..width {
                if mask[r] {
                    chosen[r] = select_lane(prefix, props, width, r, targets[r]);
                }
            }
        }
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only constructed after runtime
            // AVX2 detection succeeded.
            unsafe {
                avx2::select_masked(prefix, props, width, mask, targets, chosen)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 kernel resolved on a non-x86_64 target")
        }
    }
}

/// The scalar reference selection of one lane: binary search for the
/// first slot whose prefix exceeds `target`. The prefix only increases at
/// enabled slots, so the crossing slot is enabled and equals the scalar
/// table's linear scan; on shortfall the last enabled slot wins.
fn select_lane(prefix: &[f64], props: &[f64], width: usize, r: usize, target: f64) -> u32 {
    let nr = prefix.len() / width;
    let (mut lo, mut hi) = (0usize, nr);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if prefix[mid * width + r] > target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo < nr {
        debug_assert!(props[lo * width + r] > 0.0, "crossed at a disabled slot");
        return lo as u32;
    }
    shortfall_lane(props, width, r)
}

/// Floating-point shortfall fallback (`target >= a0` after rounding): the
/// last enabled slot, exactly the scalar table's backstop.
fn shortfall_lane(props: &[f64], width: usize, r: usize) -> u32 {
    let nr = props.len() / width;
    (0..nr)
        .rev()
        .find(|&j| props[j * width + r] > 0.0)
        .expect("select called with no enabled reaction") as u32
}

// ---------------------------------------------------------------------------
// Lockstep per-replica RNG streams
// ---------------------------------------------------------------------------

/// The W per-replica RNG streams of a batch in SoA form, advanced in
/// lockstep. Lane `r` is exactly the stream of
/// [`sim_rng`](crate::rng::sim_rng)`(base_seed, first_instance + r)` —
/// xoshiro256++ seeded through the same SplitMix64 expansion as the
/// workspace `rand` stub's `seed_from_u64` (pinned bit-for-bit by this
/// module's tests, so a stub swap breaks loudly instead of silently).
#[derive(Debug, Clone)]
pub(crate) struct BatchRng {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
}

impl BatchRng {
    /// Builds the streams of scalar instances
    /// `first_instance .. first_instance + width`.
    pub(crate) fn new(base_seed: u64, first_instance: u64, width: usize) -> Self {
        let mut rng = BatchRng {
            s0: Vec::with_capacity(width),
            s1: Vec::with_capacity(width),
            s2: Vec::with_capacity(width),
            s3: Vec::with_capacity(width),
        };
        for r in 0..width as u64 {
            let s = seed_state(instance_seed(base_seed, first_instance + r));
            rng.s0.push(s[0]);
            rng.s1.push(s[1]);
            rng.s2.push(s[2]);
            rng.s3.push(s[3]);
        }
        rng
    }

    /// Advances the streams of the lanes where `mask` is set by one draw
    /// each, writing the raw word to the same lane of `out`. Unmasked
    /// lanes advance nothing and leave their `out` slot untouched — the
    /// stream positions stay exactly the scalar engines' positions.
    pub(crate) fn fill_masked(&mut self, kernel: Kernel, mask: &[bool], out: &mut [u64]) {
        debug_assert_eq!(mask.len(), self.s0.len());
        debug_assert_eq!(out.len(), self.s0.len());
        match kernel {
            Kernel::Scalar => {
                for r in 0..self.s0.len() {
                    if mask[r] {
                        out[r] = self.step_lane(r);
                    }
                }
            }
            Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `Kernel::Avx2` is only constructed after
                // runtime AVX2 detection succeeded.
                unsafe {
                    avx2::fill_masked(self, mask, out)
                }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("AVX2 kernel resolved on a non-x86_64 target")
            }
        }
    }

    /// Two consecutive masked draws in one sweep: lane `r` first draws
    /// into `out_a` if `mask_a[r]`, then into `out_b` if `mask_b[r]` —
    /// exactly the per-lane stream order of calling
    /// [`BatchRng::fill_masked`] twice, but the AVX2 path loads and
    /// stores each chunk's state once instead of twice. Unmasked slots
    /// are left untouched.
    pub(crate) fn fill_masked2(
        &mut self,
        kernel: Kernel,
        mask_a: &[bool],
        out_a: &mut [u64],
        mask_b: &[bool],
        out_b: &mut [u64],
    ) {
        debug_assert_eq!(mask_a.len(), self.s0.len());
        debug_assert_eq!(mask_b.len(), self.s0.len());
        match kernel {
            Kernel::Scalar => {
                for r in 0..self.s0.len() {
                    if mask_a[r] {
                        out_a[r] = self.step_lane(r);
                    }
                    if mask_b[r] {
                        out_b[r] = self.step_lane(r);
                    }
                }
            }
            Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `Kernel::Avx2` is only constructed after
                // runtime AVX2 detection succeeded.
                unsafe {
                    avx2::fill_masked2(self, mask_a, out_a, mask_b, out_b)
                }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("AVX2 kernel resolved on a non-x86_64 target")
            }
        }
    }

    /// One scalar xoshiro256++ step of lane `r` — the same update the
    /// workspace `rand` stub's `StdRng::next_u64` performs.
    fn step_lane(&mut self, r: usize) -> u64 {
        let result = self.s0[r]
            .wrapping_add(self.s3[r])
            .rotate_left(23)
            .wrapping_add(self.s0[r]);
        let t = self.s1[r] << 17;
        self.s2[r] ^= self.s0[r];
        self.s3[r] ^= self.s1[r];
        self.s1[r] ^= self.s2[r];
        self.s0[r] ^= self.s3[r];
        self.s2[r] ^= t;
        self.s3[r] = self.s3[r].rotate_left(45);
        result
    }
}

/// Expands a `u64` seed into xoshiro256++ state exactly as the workspace
/// `rand` stub's `StdRng::seed_from_u64` does: four words of a SplitMix64
/// stream, with the all-zero fixed point nudged to fixed constants.
fn seed_state(seed: u64) -> [u64; 4] {
    let mut sm = seed;
    let mut s = [0u64; 4];
    for w in &mut s {
        sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = sm;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        *w = z ^ (z >> 31);
    }
    if s == [0; 4] {
        s = [
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
            0x2545_f491_4f6c_dd1d,
        ];
    }
    s
}

/// Adapter that replays one prefetched raw word through the `rand` stub's
/// own range-mapping code, so the batched tier maps raw draws to floats
/// with *exactly* the scalar engines' arithmetic (a float `gen_range`
/// consumes exactly one `next_u64`; pinned by this module's tests).
struct Prefetched(u64);

impl RngCore for Prefetched {
    fn next_u32(&mut self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0
    }
}

/// Maps one raw lane word to a uniform sample of `range` with the scalar
/// engines' exact `gen_range` arithmetic.
pub(crate) fn range_from_raw(raw: u64, range: Range<f64>) -> f64 {
    Prefetched(raw).gen_range(range)
}

// ---------------------------------------------------------------------------
// Width-1 row kernels (the adaptive / hybrid / fixed tau-leap hot path)
// ---------------------------------------------------------------------------
//
// The scalar leaping engines keep *one* replica's propensities in a dense
// row (`props[rule]`) instead of the batch tier's slot-major matrix. Their
// per-draw scans — the a0 / a0_crit folds, the direct-method and critical
// selections — are the width-1 siblings of the lane kernels above and
// follow the same bit-for-bit discipline: the fold is an ordered adds-only
// `-0.0`-identity accumulation that skips non-positive entries, a partial
// refold reseeds from the stored `prefix[from - 1]` bits, and selection on
// the non-decreasing prefix row agrees exactly with the linear accumulate
// scan it replaces (crossing index and floating-point-shortfall included).
// The AVX2 variants keep the adds in scalar order (an ordered fold cannot
// be reassociated) and win by *skipping*: four-lane compares classify
// whole chunks as disabled/unmasked and store the flat accumulator
// without touching the lanes.

/// Dense bitmask over rule indices backed by `u64` words, with
/// ascending-order set-bit iteration — the active-rule list of the
/// width-1 row tier. Bit operations are exact integers, so the mask layer
/// itself needs no scalar/SIMD split; the folds and selections consuming
/// it do.
#[derive(Debug, Clone, Default)]
pub(crate) struct RuleMask {
    words: Vec<u64>,
    len: usize,
}

impl RuleMask {
    /// An all-clear mask over `len` rules.
    pub(crate) fn new(len: usize) -> Self {
        RuleMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Whether bit `i` is set.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` to `on`, returning the previous value.
    #[inline]
    pub(crate) fn assign(&mut self, i: usize, on: bool) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let was = *word & bit != 0;
        if on {
            *word |= bit;
        } else {
            *word &= !bit;
        }
        was
    }

    /// Clears every bit (test-only: the engines rebuild masks in place
    /// via [`RuleMask::assign`]).
    #[cfg(test)]
    pub(crate) fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Ascending iteration over the set bits (test-only: the reference
    /// for [`RuleMask::iter_minus`]; the engines sweep via `iter_minus`).
    #[cfg(test)]
    pub(crate) fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The highest set index, or `None` when the mask is empty.
    pub(crate) fn last_set(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
        }
        None
    }

    /// Ascending iteration over the bits set here and clear in `minus`
    /// (the enabled-and-not-critical sweep order of the leap engines).
    pub(crate) fn iter_minus<'a>(&'a self, minus: &'a RuleMask) -> SetBitsMinus<'a> {
        debug_assert_eq!(self.len, minus.len);
        let current = match (self.words.first(), minus.words.first()) {
            (Some(&a), Some(&b)) => a & !b,
            (Some(&a), None) => a,
            _ => 0,
        };
        SetBitsMinus {
            words: &self.words,
            minus: &minus.words,
            word: 0,
            current,
        }
    }
}

/// Ascending set-bit iterator of a [`RuleMask`] (test-only, see
/// [`RuleMask::iter`]).
#[cfg(test)]
#[derive(Debug)]
pub(crate) struct SetBits<'a> {
    words: &'a [u64],
    word: usize,
    current: u64,
}

#[cfg(test)]
impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word * 64 + bit)
    }
}

/// Ascending iterator over `a & !b` of two [`RuleMask`]s.
#[derive(Debug)]
pub(crate) struct SetBitsMinus<'a> {
    words: &'a [u64],
    minus: &'a [u64],
    word: usize,
    current: u64,
}

impl Iterator for SetBitsMinus<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word] & !self.minus[self.word];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word * 64 + bit)
    }
}

/// Partial refold of a width-1 prefix row over the *enabled* (positive)
/// propensities: reseeds the accumulator from `prefix[from - 1]` (the
/// `-0.0` identity at 0), replays the adds-only fold over `from..`, and
/// returns the total — bit-for-bit the tail of the full fold because the
/// lower slots are untouched since the last refold.
pub(crate) fn row_fold_from(kernel: Kernel, props: &[f64], prefix: &mut [f64], from: usize) -> f64 {
    debug_assert_eq!(props.len(), prefix.len());
    let seed = if from == 0 { -0.0f64 } else { prefix[from - 1] };
    match kernel {
        Kernel::Scalar => {
            let mut acc = seed;
            for j in from..props.len() {
                let p = props[j];
                if p > 0.0 {
                    acc += p;
                }
                prefix[j] = acc;
            }
            acc
        }
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kernel::Avx2` is only constructed by
            // `KernelDispatch::resolve` after runtime AVX2 detection.
            unsafe {
                avx2::row_fold_from(props, prefix, from, seed)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 kernel resolved on a non-x86_64 target")
        }
    }
}

/// Like [`row_fold_from`], adding only the slots set in `mask` (the
/// critical block's a0_crit row). Masked slots are enabled by
/// construction; the defensive `p > 0.0` test keeps the `-0.0` identity
/// safe regardless.
pub(crate) fn row_fold_masked_from(
    kernel: Kernel,
    props: &[f64],
    mask: &RuleMask,
    prefix: &mut [f64],
    from: usize,
) -> f64 {
    debug_assert_eq!(props.len(), prefix.len());
    debug_assert_eq!(props.len(), mask.len);
    let seed = if from == 0 { -0.0f64 } else { prefix[from - 1] };
    match kernel {
        Kernel::Scalar => {
            let mut acc = seed;
            for j in from..props.len() {
                let p = props[j];
                if p > 0.0 && mask.get(j) {
                    acc += p;
                }
                prefix[j] = acc;
            }
            acc
        }
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as in `row_fold_from`.
            unsafe {
                avx2::row_fold_masked_from(props, mask, prefix, from, seed)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 kernel resolved on a non-x86_64 target")
        }
    }
}

/// Adds-only `-0.0`-identity fold of the positive entries of `props` —
/// the a0 of a width-1 row without materialising the prefix column (the
/// hybrid decide path and the fixed-leap absorbing probe need only the
/// total). Bit-identical to the plain `iter().sum()` it replaces whenever
/// at least one propensity is positive; when none is, it returns `-0.0`
/// where the sum returned `0.0`, and the two compare equal in every
/// ordering the engines use.
pub(crate) fn row_sum(kernel: Kernel, props: &[f64]) -> f64 {
    match kernel {
        Kernel::Scalar => {
            let mut acc = -0.0f64;
            for &p in props {
                if p > 0.0 {
                    acc += p;
                }
            }
            acc
        }
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as in `row_fold_from`.
            unsafe {
                avx2::row_sum(props)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 kernel resolved on a non-x86_64 target")
        }
    }
}

/// Direct-method selection on a width-1 non-decreasing prefix row: the
/// first slot whose cumulative propensity exceeds `target`, or
/// `prefix.len()` on floating-point shortfall (the caller applies its
/// engine's backstop rule — last slot for the exact-step scan, last
/// critical slot for the critical block). Scalar: binary search. AVX2:
/// four-lane counting scan up to [`SELECT_SCAN_MAX_SLOTS`] slots, binary
/// search above — identical by the count-of-not-crossed argument of
/// [`select_masked`].
pub(crate) fn row_select(kernel: Kernel, prefix: &[f64], target: f64) -> usize {
    match kernel {
        Kernel::Scalar => row_search(prefix, target),
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as in `row_fold_from`.
            unsafe {
                avx2::row_select(prefix, target)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 kernel resolved on a non-x86_64 target")
        }
    }
}

/// The scalar reference selection: binary search for the first slot whose
/// prefix exceeds `target`. On a non-decreasing row this is exactly the
/// linear accumulate scan's crossing index, because the prefix only
/// increases at enabled slots.
fn row_search(prefix: &[f64], target: f64) -> usize {
    let (mut lo, mut hi) = (0usize, prefix.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if prefix[mid] > target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

// ---------------------------------------------------------------------------
// AVX2 kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{BatchRng, RefreshOut, SlotPlan, SlotSet, SlotView, CLEAN, DIRTY_ALL};
    use core::arch::x86_64::*;

    /// f64 lanes per AVX2 vector.
    const LANES: usize = 4;
    /// Largest count exactly convertible by [`small_counts_to_f64`] (and
    /// identical to the scalar `as f64` cast, which is exact below 2⁵³).
    const MAX_EXACT: i64 = (1 << 52) - 1;
    /// Largest count whose pair product stays below 2⁵² — the guard for
    /// the two-factor plans, keeping every intermediate exact in `f64`.
    const MAX_EXACT_PAIR: i64 = (1 << 26) - 1;

    /// AVX2 refresh: four replica lanes per chunk, scalar reference on
    /// the tail lanes. A chunk is refreshed whenever any of its lanes is
    /// dirty — recomputing a clean lane rewrites identical bits because
    /// the propensity and the fold are pure functions of the counts.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn refresh(
        view: &SlotView<'_>,
        affects: &[Vec<u32>],
        out: &mut RefreshOut<'_>,
        seen: &mut SlotSet,
    ) {
        let w = view.width;
        let nr = view.slots();
        let mut r0 = 0;
        while r0 + LANES <= w {
            let marks = [
                out.dirty[r0],
                out.dirty[r0 + 1],
                out.dirty[r0 + 2],
                out.dirty[r0 + 3],
            ];
            if marks.iter().all(|&m| m == CLEAN) {
                r0 += LANES;
                continue;
            }
            if marks.contains(&DIRTY_ALL) {
                for slot in 0..nr {
                    compute_slot4(view, slot, r0, out.props);
                }
                fold4(view, out, r0);
            } else {
                // Union of the dirty lanes' incidence lists: each slot is
                // recomputed once for the whole chunk, tracking per-lane
                // disabled↔enabled flips (enabled masks are all-ones, so
                // subtracting the new mask and adding the old one nets the
                // active-count delta) and the lowest recomputed slot, from
                // which the partial fold refolds the prefix suffix.
                seen.begin();
                let zero_pd = _mm256_setzero_pd();
                let mut delta = _mm256_setzero_si256();
                let mut from = usize::MAX;
                for &mark in &marks {
                    if mark == CLEAN {
                        continue;
                    }
                    for &slot in &affects[mark as usize] {
                        if seen.insert(slot) {
                            let j = slot as usize;
                            from = from.min(j);
                            // SAFETY: slot and chunk bounds are guaranteed
                            // by the SoA layout (`j < nr`, `r0 + LANES <= w`);
                            // the pointer is re-derived after the recompute's
                            // mutable borrow of `props` ends.
                            let old = _mm256_loadu_pd(out.props.as_ptr().add(j * w + r0));
                            compute_slot4(view, j, r0, out.props);
                            let new = _mm256_loadu_pd(out.props.as_ptr().add(j * w + r0));
                            let old_en =
                                _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_GT_OQ>(old, zero_pd));
                            let new_en =
                                _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_GT_OQ>(new, zero_pd));
                            delta = _mm256_add_epi64(delta, old_en);
                            delta = _mm256_sub_epi64(delta, new_en);
                        }
                    }
                }
                if from != usize::MAX {
                    fold4_from(view, out, r0, from, delta);
                }
            }
            out.dirty[r0..r0 + LANES].fill(CLEAN);
            r0 += LANES;
        }
        for r in r0..w {
            super::refresh_lane(view, affects, out, r);
        }
    }

    /// Recomputes one reaction slot for the four replica lanes at `r0`.
    /// Vector path for the planned shapes under the exactness guards,
    /// scalar reference otherwise.
    #[target_feature(enable = "avx2")]
    unsafe fn compute_slot4(view: &SlotView<'_>, slot: usize, r0: usize, props: &mut [f64]) {
        let w = view.width;
        let rate = view.rates[slot];
        match view.plans[slot] {
            SlotPlan::K1 { sp } => {
                let n = load_counts(view.counts, sp * w + r0);
                if exceeds(n, MAX_EXACT) {
                    return scalar_slot4(view, slot, r0, props);
                }
                let h = small_counts_to_f64(n);
                store_scaled_clamped(rate, h, props, slot * w + r0);
            }
            SlotPlan::K2 { sp } => {
                let n = load_counts(view.counts, sp * w + r0);
                if exceeds(n, MAX_EXACT_PAIR) {
                    return scalar_slot4(view, slot, r0, props);
                }
                let nf = small_counts_to_f64(n);
                // binomial(n, 2) = n(n-1)/2: the product stays below 2⁵²
                // (guarded), so multiply and halving are exact, matching
                // the integer formula bit-for-bit.
                let h = _mm256_mul_pd(
                    _mm256_mul_pd(nf, _mm256_sub_pd(nf, _mm256_set1_pd(1.0))),
                    _mm256_set1_pd(0.5),
                );
                store_scaled_clamped(rate, h, props, slot * w + r0);
            }
            SlotPlan::K11 { a, b } => {
                let na = load_counts(view.counts, a * w + r0);
                let nb = load_counts(view.counts, b * w + r0);
                if exceeds(na, MAX_EXACT_PAIR) || exceeds(nb, MAX_EXACT_PAIR) {
                    return scalar_slot4(view, slot, r0, props);
                }
                let h = _mm256_mul_pd(small_counts_to_f64(na), small_counts_to_f64(nb));
                store_scaled_clamped(rate, h, props, slot * w + r0);
            }
            SlotPlan::General => scalar_slot4(view, slot, r0, props),
        }
    }

    /// The scalar reference formula on each lane of a chunk.
    fn scalar_slot4(view: &SlotView<'_>, slot: usize, r0: usize, props: &mut [f64]) {
        let w = view.width;
        for lane in 0..LANES {
            props[slot * w + r0 + lane] = view.propensity(slot, r0 + lane);
        }
    }

    /// Four-lane prefix fold: same slot order, same adds, with the
    /// enabled-only accumulation expressed as a blend so disabled slots
    /// keep the accumulator's old bits (`-0.0` identity preserved).
    #[target_feature(enable = "avx2")]
    unsafe fn fold4(view: &SlotView<'_>, out: &mut RefreshOut<'_>, r0: usize) {
        let w = view.width;
        let nr = view.slots();
        let zero_pd = _mm256_setzero_pd();
        let zero_si = _mm256_setzero_si256();
        let mut acc = _mm256_set1_pd(-0.0);
        let mut active = zero_si;
        let mut first = _mm256_set1_epi64x(u32::MAX as i64);
        for j in 0..nr {
            let p = _mm256_loadu_pd(out.props.as_ptr().add(j * w + r0));
            let enabled = _mm256_cmp_pd::<_CMP_GT_OQ>(p, zero_pd);
            acc = _mm256_blendv_pd(acc, _mm256_add_pd(acc, p), enabled);
            let enabled_si = _mm256_castpd_si256(enabled);
            let is_first = _mm256_and_si256(enabled_si, _mm256_cmpeq_epi64(active, zero_si));
            first = _mm256_blendv_epi8(first, _mm256_set1_epi64x(j as i64), is_first);
            // Enabled lanes are all-ones (-1): subtracting increments.
            active = _mm256_sub_epi64(active, enabled_si);
            _mm256_storeu_pd(out.prefix.as_mut_ptr().add(j * w + r0), acc);
        }
        _mm256_storeu_pd(out.a0.as_mut_ptr().add(r0), acc);
        let mut counts = [0i64; LANES];
        let mut firsts = [0i64; LANES];
        _mm256_storeu_si256(counts.as_mut_ptr().cast::<__m256i>(), active);
        _mm256_storeu_si256(firsts.as_mut_ptr().cast::<__m256i>(), first);
        for lane in 0..LANES {
            out.active[r0 + lane] = counts[lane] as u32;
            out.first_active[r0 + lane] = firsts[lane] as u32;
        }
    }

    /// Four-lane partial prefix fold: refolds slots `from..` with the
    /// accumulator reseeded from the stored `prefix[from - 1]` lanes (or
    /// the `-0.0` identity at slot 0) — the exact tail of [`fold4`], since
    /// the lower slots are untouched. `delta` carries the per-lane
    /// enabled-transition counts observed during the slot recompute;
    /// `first_active` keeps lanes whose value lies below `from` and
    /// otherwise takes the first enabled slot at or above it (the scalar
    /// [`super::fold_lane_from`] rule).
    #[target_feature(enable = "avx2")]
    unsafe fn fold4_from(
        view: &SlotView<'_>,
        out: &mut RefreshOut<'_>,
        r0: usize,
        from: usize,
        delta: __m256i,
    ) {
        let w = view.width;
        let nr = view.slots();
        let zero_pd = _mm256_setzero_pd();
        let mut acc = if from == 0 {
            _mm256_set1_pd(-0.0)
        } else {
            _mm256_loadu_pd(out.prefix.as_ptr().add((from - 1) * w + r0))
        };
        let mut first_ge = _mm256_set1_epi64x(u32::MAX as i64);
        let mut seen_any = _mm256_setzero_si256();
        for j in from..nr {
            let p = _mm256_loadu_pd(out.props.as_ptr().add(j * w + r0));
            let enabled = _mm256_cmp_pd::<_CMP_GT_OQ>(p, zero_pd);
            acc = _mm256_blendv_pd(acc, _mm256_add_pd(acc, p), enabled);
            let enabled_si = _mm256_castpd_si256(enabled);
            let is_first = _mm256_andnot_si256(seen_any, enabled_si);
            first_ge = _mm256_blendv_epi8(first_ge, _mm256_set1_epi64x(j as i64), is_first);
            seen_any = _mm256_or_si256(seen_any, enabled_si);
            _mm256_storeu_pd(out.prefix.as_mut_ptr().add(j * w + r0), acc);
        }
        _mm256_storeu_pd(out.a0.as_mut_ptr().add(r0), acc);
        let mut deltas = [0i64; LANES];
        let mut firsts = [0i64; LANES];
        _mm256_storeu_si256(deltas.as_mut_ptr().cast::<__m256i>(), delta);
        _mm256_storeu_si256(firsts.as_mut_ptr().cast::<__m256i>(), first_ge);
        for lane in 0..LANES {
            let r = r0 + lane;
            out.active[r] = (i64::from(out.active[r]) + deltas[lane]) as u32;
            if out.first_active[r] >= from as u32 {
                out.first_active[r] = firsts[lane] as u32;
            }
        }
    }

    /// Loads four consecutive replica counts as `i64` lanes.
    #[target_feature(enable = "avx2")]
    unsafe fn load_counts(counts: &[i64], at: usize) -> __m256i {
        debug_assert!(at + LANES <= counts.len());
        _mm256_loadu_si256(counts.as_ptr().add(at).cast::<__m256i>())
    }

    /// Whether any lane exceeds `limit` (counts are non-negative, so the
    /// signed compare is exact).
    #[target_feature(enable = "avx2")]
    unsafe fn exceeds(n: __m256i, limit: i64) -> bool {
        let over = _mm256_cmpgt_epi64(n, _mm256_set1_epi64x(limit));
        _mm256_movemask_epi8(over) != 0
    }

    /// Exact `u64 → f64` conversion for lanes in `[0, 2⁵²)`: OR the value
    /// into the mantissa of 2⁵² and subtract 2⁵² — no rounding occurs, so
    /// the result equals the scalar `as f64` cast bit-for-bit.
    #[target_feature(enable = "avx2")]
    unsafe fn small_counts_to_f64(n: __m256i) -> __m256d {
        let magic = _mm256_set1_epi64x(0x4330_0000_0000_0000);
        _mm256_sub_pd(
            _mm256_castsi256_pd(_mm256_or_si256(n, magic)),
            _mm256_set1_pd(4_503_599_627_370_496.0),
        )
    }

    /// `props[at..at+4] = clamp(rate * h)` with the scalar positive clamp:
    /// lanes not strictly positive store exactly `+0.0` (the AND with the
    /// all-zero mask), matching the scalar `if p > 0.0 { p } else { 0.0 }`.
    #[target_feature(enable = "avx2")]
    unsafe fn store_scaled_clamped(rate: f64, h: __m256d, props: &mut [f64], at: usize) {
        debug_assert!(at + LANES <= props.len());
        let p = _mm256_mul_pd(_mm256_set1_pd(rate), h);
        let positive = _mm256_cmp_pd::<_CMP_GT_OQ>(p, _mm256_setzero_pd());
        _mm256_storeu_pd(props.as_mut_ptr().add(at), _mm256_and_pd(p, positive));
    }

    /// Masked four-lane xoshiro256++ step: all lanes compute the next
    /// word, but only masked lanes commit the new state (and their `out`
    /// slot) — unmasked streams stay put, like the scalar discipline.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_masked(rng: &mut BatchRng, mask: &[bool], out: &mut [u64]) {
        let w = rng.s0.len();
        let mut r0 = 0;
        while r0 + LANES <= w {
            let lanes = [
                lane_mask(mask[r0]),
                lane_mask(mask[r0 + 1]),
                lane_mask(mask[r0 + 2]),
                lane_mask(mask[r0 + 3]),
            ];
            if lanes == [0; LANES] {
                r0 += LANES;
                continue;
            }
            let m = _mm256_setr_epi64x(lanes[0], lanes[1], lanes[2], lanes[3]);
            let mut v = load_state(rng, r0);
            let res = masked_step4(&mut v, m);
            store_state(rng, r0, v);
            let old = load_u64(out, r0);
            store_u64(out, r0, _mm256_blendv_epi8(old, res, m));
            r0 += LANES;
        }
        for r in r0..w {
            if mask[r] {
                out[r] = rng.step_lane(r);
            }
        }
    }

    /// Two consecutive masked four-lane draws per chunk with one state
    /// round-trip: the per-lane draw order (first `mask_a`, then
    /// `mask_b`) is exactly two [`fill_masked`] sweeps.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_masked2(
        rng: &mut BatchRng,
        mask_a: &[bool],
        out_a: &mut [u64],
        mask_b: &[bool],
        out_b: &mut [u64],
    ) {
        let w = rng.s0.len();
        let mut r0 = 0;
        while r0 + LANES <= w {
            let la = [
                lane_mask(mask_a[r0]),
                lane_mask(mask_a[r0 + 1]),
                lane_mask(mask_a[r0 + 2]),
                lane_mask(mask_a[r0 + 3]),
            ];
            let lb = [
                lane_mask(mask_b[r0]),
                lane_mask(mask_b[r0 + 1]),
                lane_mask(mask_b[r0 + 2]),
                lane_mask(mask_b[r0 + 3]),
            ];
            if la == [0; LANES] && lb == [0; LANES] {
                r0 += LANES;
                continue;
            }
            let ma = _mm256_setr_epi64x(la[0], la[1], la[2], la[3]);
            let mb = _mm256_setr_epi64x(lb[0], lb[1], lb[2], lb[3]);
            let mut v = load_state(rng, r0);
            let res_a = masked_step4(&mut v, ma);
            let old_a = load_u64(out_a, r0);
            store_u64(out_a, r0, _mm256_blendv_epi8(old_a, res_a, ma));
            let res_b = masked_step4(&mut v, mb);
            let old_b = load_u64(out_b, r0);
            store_u64(out_b, r0, _mm256_blendv_epi8(old_b, res_b, mb));
            store_state(rng, r0, v);
            r0 += LANES;
        }
        for r in r0..w {
            if mask_a[r] {
                out_a[r] = rng.step_lane(r);
            }
            if mask_b[r] {
                out_b[r] = rng.step_lane(r);
            }
        }
    }

    /// One masked four-lane xoshiro256++ step on in-register state: every
    /// lane computes the next word, but only masked lanes commit the new
    /// state; the raw results of all lanes are returned (callers blend
    /// them into their output under the same mask).
    #[target_feature(enable = "avx2")]
    unsafe fn masked_step4(v: &mut [__m256i; 4], m: __m256i) -> __m256i {
        // result = rotl(s0 + s3, 23) + s0
        let sum = _mm256_add_epi64(v[0], v[3]);
        let res = _mm256_add_epi64(rotl23(sum), v[0]);
        // xoshiro256++ state update, all in branch-free u64 lanes.
        let t = _mm256_slli_epi64::<17>(v[1]);
        let n2 = _mm256_xor_si256(v[2], v[0]);
        let n3 = _mm256_xor_si256(v[3], v[1]);
        let n1 = _mm256_xor_si256(v[1], n2);
        let n0 = _mm256_xor_si256(v[0], n3);
        let n2 = _mm256_xor_si256(n2, t);
        let n3 = rotl45(n3);
        v[0] = _mm256_blendv_epi8(v[0], n0, m);
        v[1] = _mm256_blendv_epi8(v[1], n1, m);
        v[2] = _mm256_blendv_epi8(v[2], n2, m);
        v[3] = _mm256_blendv_epi8(v[3], n3, m);
        res
    }

    #[target_feature(enable = "avx2")]
    unsafe fn load_state(rng: &BatchRng, r0: usize) -> [__m256i; 4] {
        [
            load_u64(&rng.s0, r0),
            load_u64(&rng.s1, r0),
            load_u64(&rng.s2, r0),
            load_u64(&rng.s3, r0),
        ]
    }

    #[target_feature(enable = "avx2")]
    unsafe fn store_state(rng: &mut BatchRng, r0: usize, v: [__m256i; 4]) {
        store_u64(&mut rng.s0, r0, v[0]);
        store_u64(&mut rng.s1, r0, v[1]);
        store_u64(&mut rng.s2, r0, v[2]);
        store_u64(&mut rng.s3, r0, v[3]);
    }

    /// Four-lane direct-method selection (see [`super::select_masked`]):
    /// counts the slots each lane's prefix has not yet crossed. The
    /// per-slot predicate is `!(prefix > target)` — bitwise the binary
    /// search's — and the prefix column is non-decreasing, so the count
    /// equals the search's crossing index; once every lane crossed, later
    /// slots cannot cross back and the scan stops early.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn select_masked(
        prefix: &[f64],
        props: &[f64],
        width: usize,
        mask: &[bool],
        targets: &[f64],
        chosen: &mut [u32],
    ) {
        let nr = prefix.len() / width;
        let mut r0 = 0;
        while r0 + LANES <= width {
            if !(mask[r0] || mask[r0 + 1] || mask[r0 + 2] || mask[r0 + 3]) {
                r0 += LANES;
                continue;
            }
            if nr > super::SELECT_SCAN_MAX_SLOTS {
                for r in r0..r0 + LANES {
                    if mask[r] {
                        chosen[r] = super::select_lane(prefix, props, width, r, targets[r]);
                    }
                }
                r0 += LANES;
                continue;
            }
            let t = _mm256_loadu_pd(targets.as_ptr().add(r0));
            let mut not_crossed_count = _mm256_setzero_si256();
            for j in 0..nr {
                let p = _mm256_loadu_pd(prefix.as_ptr().add(j * width + r0));
                // `not greater than` (unordered-quiet) is exactly the
                // negation of the search's `prefix > target` per slot.
                let not_crossed = _mm256_cmp_pd::<_CMP_NGT_UQ>(p, t);
                let nc_si = _mm256_castpd_si256(not_crossed);
                if _mm256_testz_si256(nc_si, nc_si) == 1 {
                    break;
                }
                // Not-crossed lanes are all-ones (-1): subtract increments.
                not_crossed_count = _mm256_sub_epi64(not_crossed_count, nc_si);
            }
            let mut counts = [0i64; LANES];
            _mm256_storeu_si256(counts.as_mut_ptr().cast::<__m256i>(), not_crossed_count);
            for (lane, &count) in counts.iter().enumerate() {
                let r = r0 + lane;
                if !mask[r] {
                    continue;
                }
                let idx = count as usize;
                chosen[r] = if idx < nr {
                    debug_assert!(props[idx * width + r] > 0.0, "crossed at a disabled slot");
                    idx as u32
                } else {
                    super::shortfall_lane(props, width, r)
                };
            }
            r0 += LANES;
        }
        for r in r0..width {
            if mask[r] {
                chosen[r] = super::select_lane(prefix, props, width, r, targets[r]);
            }
        }
    }

    fn lane_mask(bit: bool) -> i64 {
        if bit {
            -1
        } else {
            0
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn rotl23(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi64::<23>(x), _mm256_srli_epi64::<41>(x))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn rotl45(x: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_slli_epi64::<45>(x), _mm256_srli_epi64::<19>(x))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn load_u64(v: &[u64], at: usize) -> __m256i {
        debug_assert!(at + LANES <= v.len());
        _mm256_loadu_si256(v.as_ptr().add(at).cast::<__m256i>())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn store_u64(v: &mut [u64], at: usize, x: __m256i) {
        debug_assert!(at + LANES <= v.len());
        _mm256_storeu_si256(v.as_mut_ptr().add(at).cast::<__m256i>(), x)
    }

    // -- width-1 row kernels ------------------------------------------------

    /// Branchless chunk body shared by the row folds: keeps the lanes
    /// selected by `keep` and replaces the rest with `-0.0`, whose
    /// addition is an exact identity on every f64 (`x + (-0.0) == x`
    /// bit-for-bit, including `x == ±0.0` under round-to-nearest), so the
    /// four unconditional serial adds produce exactly the bits of the
    /// per-lane conditional fold.
    #[inline(always)]
    unsafe fn fold_chunk(p: __m256d, keep: __m256d, acc: &mut f64, prefix: *mut f64) {
        let masked = _mm256_blendv_pd(_mm256_set1_pd(-0.0), p, keep);
        let mut lanes = [0.0f64; LANES];
        _mm256_storeu_pd(lanes.as_mut_ptr(), masked);
        let mut a = *acc;
        a += lanes[0];
        *prefix = a;
        a += lanes[1];
        *prefix.add(1) = a;
        a += lanes[2];
        *prefix.add(2) = a;
        a += lanes[3];
        *prefix.add(3) = a;
        *acc = a;
    }

    /// AVX2 `row_fold_from`: the adds happen in exactly the scalar order
    /// (an ordered fold cannot be reassociated without changing bits);
    /// the vector win is chunk classification — a four-lane compare spots
    /// all-disabled chunks and stores the flat accumulator without
    /// touching the lanes — plus the branchless `-0.0`-identity chunk
    /// body of [`fold_chunk`] for the rest.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_fold_from(
        props: &[f64],
        prefix: &mut [f64],
        from: usize,
        seed: f64,
    ) -> f64 {
        let n = props.len();
        let mut acc = seed;
        let mut j = from;
        while j + LANES <= n {
            let p = _mm256_loadu_pd(props.as_ptr().add(j));
            let pos = _mm256_cmp_pd::<_CMP_GT_OQ>(p, _mm256_setzero_pd());
            let bits = _mm256_movemask_pd(pos);
            if bits == 0 {
                _mm256_storeu_pd(prefix.as_mut_ptr().add(j), _mm256_set1_pd(acc));
            } else {
                fold_chunk(p, pos, &mut acc, prefix.as_mut_ptr().add(j));
            }
            j += LANES;
        }
        while j < n {
            let p = props[j];
            if p > 0.0 {
                acc += p;
            }
            prefix[j] = acc;
            j += 1;
        }
        acc
    }

    /// AVX2 `row_fold_masked_from`: like [`row_fold_from`] with the add
    /// predicate `p > 0 && mask`. The head runs scalar until the slot
    /// index is 4-aligned, so every chunk's mask nibble sits inside one
    /// `u64` word (64 is a multiple of 4).
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_fold_masked_from(
        props: &[f64],
        mask: &super::RuleMask,
        prefix: &mut [f64],
        from: usize,
        seed: f64,
    ) -> f64 {
        let n = props.len();
        let mut acc = seed;
        let mut j = from;
        while j < n && j % LANES != 0 {
            let p = props[j];
            if p > 0.0 && mask.get(j) {
                acc += p;
            }
            prefix[j] = acc;
            j += 1;
        }
        // Nibble → per-lane all-ones/all-zeros selector (index bit k sets
        // lane k), so the chunk body can blend instead of branching.
        const LANE_MASKS: [[u64; 4]; 16] = {
            let mut t = [[0u64; 4]; 16];
            let mut m = 0;
            while m < 16 {
                let mut lane = 0;
                while lane < 4 {
                    if m & (1 << lane) != 0 {
                        t[m][lane] = u64::MAX;
                    }
                    lane += 1;
                }
                m += 1;
            }
            t
        };
        while j + LANES <= n {
            let nibble = ((mask.words[j / 64] >> (j % 64)) & 0xF) as usize;
            if nibble == 0 {
                _mm256_storeu_pd(prefix.as_mut_ptr().add(j), _mm256_set1_pd(acc));
                j += LANES;
                continue;
            }
            let p = _mm256_loadu_pd(props.as_ptr().add(j));
            let pos = _mm256_cmp_pd::<_CMP_GT_OQ>(p, _mm256_setzero_pd());
            let sel = _mm256_loadu_pd(LANE_MASKS[nibble].as_ptr().cast::<f64>());
            let keep = _mm256_and_pd(pos, sel);
            fold_chunk(p, keep, &mut acc, prefix.as_mut_ptr().add(j));
            j += LANES;
        }
        while j < n {
            let p = props[j];
            if p > 0.0 && mask.get(j) {
                acc += p;
            }
            prefix[j] = acc;
            j += 1;
        }
        acc
    }

    /// AVX2 `row_sum`: the fold total without the prefix column.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_sum(props: &[f64]) -> f64 {
        let n = props.len();
        let mut acc = -0.0f64;
        let mut j = 0;
        while j + LANES <= n {
            let p = _mm256_loadu_pd(props.as_ptr().add(j));
            let pos = _mm256_cmp_pd::<_CMP_GT_OQ>(p, _mm256_setzero_pd());
            let bits = _mm256_movemask_pd(pos);
            if bits != 0 {
                for lane in 0..LANES {
                    if bits & (1 << lane) != 0 {
                        acc += props[j + lane];
                    }
                }
            }
            j += LANES;
        }
        while j < n {
            let p = props[j];
            if p > 0.0 {
                acc += p;
            }
            j += 1;
        }
        acc
    }

    /// AVX2 `row_select`: the counting scan of [`select_masked`] on one
    /// row — on a non-decreasing prefix the count of not-yet-crossed
    /// slots *is* the crossing index, and the scan stops at the first
    /// chunk that is not entirely uncrossed. Wide rows fall back to the
    /// scalar binary search, which finds the same index.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by construction of [`super::Kernel::Avx2`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_select(prefix: &[f64], target: f64) -> usize {
        let n = prefix.len();
        if n > super::SELECT_SCAN_MAX_SLOTS {
            return super::row_search(prefix, target);
        }
        let t = _mm256_set1_pd(target);
        let mut count = 0usize;
        let mut j = 0;
        while j + LANES <= n {
            let p = _mm256_loadu_pd(prefix.as_ptr().add(j));
            // `not greater than` (unordered-quiet): the negation of the
            // search's `prefix > target`, per slot.
            let not_crossed = _mm256_cmp_pd::<_CMP_NGT_UQ>(p, t);
            let bits = _mm256_movemask_pd(not_crossed);
            count += bits.count_ones() as usize;
            if bits != 0xF {
                return count;
            }
            j += LANES;
        }
        while j < n {
            if prefix[j] > target {
                return count;
            }
            count += 1;
            j += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sim_rng;
    use proptest::prelude::*;

    /// The widths the satellite spec pins: scalar-only (1), tail-only
    /// (3), exact chunks (8, 32) and chunks-plus-tail (33).
    const WIDTHS: [usize; 5] = [1, 3, 8, 32, 33];

    /// Both kernels when the CPU has AVX2, scalar alone otherwise (the
    /// proptests then still pin the scalar reference against itself).
    fn kernels_under_test() -> Vec<Kernel> {
        if simd_available() {
            vec![Kernel::Scalar, Kernel::Avx2]
        } else {
            vec![Kernel::Scalar]
        }
    }

    /// A synthetic slot table covering every plan shape: K1, K2, K11 and
    /// two General fallbacks (a triple product and a k=3 binomial).
    fn test_reactants() -> Vec<Vec<(usize, u64)>> {
        vec![
            vec![(0, 1)],
            vec![(1, 2)],
            vec![(0, 1), (2, 1)],
            vec![(0, 1), (1, 1), (2, 1)],
            vec![(2, 3)],
        ]
    }

    const SPECIES: usize = 3;

    /// Every kernel output of one refresh, as raw bits (floats included),
    /// for whole-buffer equality assertions.
    type Bits = (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u32>, Vec<u32>, Vec<u32>);

    struct Buffers {
        props: Vec<f64>,
        prefix: Vec<f64>,
        a0: Vec<f64>,
        active: Vec<u32>,
        first_active: Vec<u32>,
        dirty: Vec<u32>,
    }

    impl Buffers {
        fn new(slots: usize, width: usize) -> Self {
            Buffers {
                props: vec![0.0; slots * width],
                prefix: vec![0.0; slots * width],
                a0: vec![-0.0; width],
                active: vec![0; width],
                first_active: vec![u32::MAX; width],
                dirty: vec![DIRTY_ALL; width],
            }
        }

        fn clone_of(other: &Buffers) -> Self {
            Buffers {
                props: other.props.clone(),
                prefix: other.prefix.clone(),
                a0: other.a0.clone(),
                active: other.active.clone(),
                first_active: other.first_active.clone(),
                dirty: other.dirty.clone(),
            }
        }

        fn out(&mut self) -> RefreshOut<'_> {
            RefreshOut {
                props: &mut self.props,
                prefix: &mut self.prefix,
                a0: &mut self.a0,
                active: &mut self.active,
                first_active: &mut self.first_active,
                dirty: &mut self.dirty,
            }
        }

        fn bits(&self) -> Bits {
            (
                self.props.iter().map(|p| p.to_bits()).collect(),
                self.prefix.iter().map(|p| p.to_bits()).collect(),
                self.a0.iter().map(|p| p.to_bits()).collect(),
                self.active.clone(),
                self.first_active.clone(),
                self.dirty.clone(),
            )
        }
    }

    fn refresh_with(
        kernel: Kernel,
        width: usize,
        counts: &[i64],
        rates: &[f64],
        reactants: &[Vec<(usize, u64)>],
        affects: &[Vec<u32>],
        bufs: &mut Buffers,
    ) {
        let plans: Vec<SlotPlan> = reactants.iter().map(|r| SlotPlan::of(r)).collect();
        let view = SlotView {
            width,
            counts,
            rates,
            plans: &plans,
            reactants,
        };
        let mut seen = SlotSet::new(reactants.len());
        refresh(kernel, &view, affects, &mut bufs.out(), &mut seen);
    }

    proptest! {
        #[test]
        fn propensity_and_fold_kernels_are_bit_identical(
            width_idx in 0usize..5,
            pool in proptest::collection::vec(0u64..400, SPECIES * 33),
            rates in proptest::collection::vec(0.01f64..5.0, 5),
        ) {
            let width = WIDTHS[width_idx];
            let reactants = test_reactants();
            let affects: Vec<Vec<u32>> = vec![Vec::new(); reactants.len()];
            let mut counts = vec![0i64; SPECIES * width];
            for sp in 0..SPECIES {
                for r in 0..width {
                    counts[sp * width + r] = pool[sp * 33 + r] as i64;
                }
            }
            let mut reference: Option<_> = None;
            for kernel in kernels_under_test() {
                let mut bufs = Buffers::new(reactants.len(), width);
                refresh_with(kernel, width, &counts, &rates, &reactants, &affects, &mut bufs);
                let got = bufs.bits();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => prop_assert!(
                        &got == want,
                        "kernel {kernel:?} diverged from the scalar reference at width {width}"
                    ),
                }
            }
        }
    }

    #[test]
    fn magnitude_guards_fall_back_to_the_scalar_formula_bit_for_bit() {
        // Counts straddling both guards: the K1 2⁵² bound and the paired
        // 2²⁶ bound, plus saturation-heavy values for the General slots.
        let width = 8;
        let huge: [i64; 8] = [
            0,
            1,
            (1 << 26) - 1,
            (1 << 26) + 5,
            (1 << 52) - 1,
            (1 << 52) + 7,
            (1 << 60) + 123,
            12_345,
        ];
        let reactants = test_reactants();
        let affects: Vec<Vec<u32>> = vec![Vec::new(); reactants.len()];
        let rates = [1.5, 0.25, 2.0, 0.75, 1.0];
        let mut counts = vec![0i64; SPECIES * width];
        for sp in 0..SPECIES {
            for r in 0..width {
                counts[sp * width + r] = huge[(r + sp) % huge.len()];
            }
        }
        let mut reference: Option<_> = None;
        for kernel in kernels_under_test() {
            let mut bufs = Buffers::new(reactants.len(), width);
            refresh_with(
                kernel, width, &counts, &rates, &reactants, &affects, &mut bufs,
            );
            let got = bufs.bits();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "guard fallback diverged ({kernel:?})"),
            }
        }
    }

    #[test]
    fn exhausted_lanes_fold_to_negative_zero_in_every_kernel() {
        for &width in &WIDTHS {
            let reactants = test_reactants();
            let affects: Vec<Vec<u32>> = vec![Vec::new(); reactants.len()];
            let rates = [1.0, 1.0, 1.0, 1.0, 1.0];
            let counts = vec![0i64; SPECIES * width];
            for kernel in kernels_under_test() {
                let mut bufs = Buffers::new(reactants.len(), width);
                refresh_with(
                    kernel, width, &counts, &rates, &reactants, &affects, &mut bufs,
                );
                for r in 0..width {
                    assert_eq!(
                        bufs.a0[r].to_bits(),
                        (-0.0f64).to_bits(),
                        "kernel {kernel:?} width {width} lane {r}"
                    );
                    assert_eq!(bufs.active[r], 0);
                    assert_eq!(bufs.first_active[r], u32::MAX);
                }
            }
        }
    }

    #[test]
    fn incidence_union_refresh_matches_the_scalar_reference() {
        // Two decoupled decay slots; lanes of one chunk fire *different*
        // slots, so the AVX2 chunk recomputes the union of both incidence
        // lists — including rows that are clean in some lanes, which must
        // rewrite identical bits.
        let width = 8;
        let reactants = vec![vec![(0, 1)], vec![(1, 1)]];
        // Slot 0 consumes species 0, slot 1 consumes species 1.
        let affects: Vec<Vec<u32>> = vec![vec![0], vec![1]];
        let rates = [1.0, 2.0];
        let mut counts = vec![0i64; 2 * width];
        for sp in 0..2 {
            for r in 0..width {
                counts[sp * width + r] = 10 + (sp * width + r) as i64;
            }
        }
        // Consistent baseline: full refresh under the scalar reference.
        let mut scalar = Buffers::new(reactants.len(), width);
        refresh_with(
            Kernel::Scalar,
            width,
            &counts,
            &rates,
            &reactants,
            &affects,
            &mut scalar,
        );
        let baseline = Buffers::clone_of(&scalar);
        // "Fire" slot 0 on lanes 1 and 6, slot 1 on lane 2: mixed marks
        // within and across chunks.
        for (lane, slot) in [(1usize, 0u32), (6, 0), (2, 1)] {
            let sp = reactants[slot as usize][0].0;
            counts[sp * width + lane] -= 1;
            scalar.dirty[lane] = slot;
        }
        refresh_with(
            Kernel::Scalar,
            width,
            &counts,
            &rates,
            &reactants,
            &affects,
            &mut scalar,
        );
        for kernel in kernels_under_test() {
            if kernel == Kernel::Scalar {
                continue;
            }
            let mut bufs = Buffers::clone_of(&baseline);
            for (lane, slot) in [(1usize, 0u32), (6, 0), (2, 1)] {
                bufs.dirty[lane] = slot;
            }
            refresh_with(
                kernel, width, &counts, &rates, &reactants, &affects, &mut bufs,
            );
            assert_eq!(bufs.bits(), scalar.bits(), "incidence union ({kernel:?})");
        }
    }

    proptest! {
        #[test]
        fn masked_rng_kernels_emit_the_scalar_streams_bit_for_bit(
            base_seed in 0u64..10_000,
            first in 0u64..1_000,
            width_idx in 0usize..5,
            mask_words in proptest::collection::vec(0u64..u64::MAX, 40),
        ) {
            let width = WIDTHS[width_idx];
            for kernel in kernels_under_test() {
                let mut batch = BatchRng::new(base_seed, first, width);
                let mut scalars: Vec<_> =
                    (0..width as u64).map(|r| sim_rng(base_seed, first + r)).collect();
                let mut out = vec![0u64; width];
                for word in &mask_words {
                    let mask: Vec<bool> =
                        (0..width).map(|r| (word >> (r % 64)) & 1 == 1).collect();
                    batch.fill_masked(kernel, &mask, &mut out);
                    for (r, scalar) in scalars.iter_mut().enumerate() {
                        if mask[r] {
                            prop_assert!(
                                out[r] == scalar.next_u64(),
                                "kernel {kernel:?} lane {r} left the scalar stream"
                            );
                        }
                    }
                }
                // Unmasked lanes must not have advanced: a full draw now
                // still matches the scalar streams.
                let mask = vec![true; width];
                batch.fill_masked(kernel, &mask, &mut out);
                for (r, scalar) in scalars.iter_mut().enumerate() {
                    prop_assert!(out[r] == scalar.next_u64());
                }
            }
        }

        #[test]
        fn range_from_raw_replays_gen_range_exactly(
            base_seed in 0u64..10_000,
            instance in 0u64..1_000,
            hi in 0.5f64..1.0e6,
        ) {
            // A float `gen_range` must consume exactly one raw word and
            // map it with the stub's arithmetic — the contract that lets
            // the batched tier prefetch raw lanes and replay them.
            let mut direct = sim_rng(base_seed, instance);
            let mut prefetch = direct.clone();
            let want: f64 = direct.gen_range(0.0..hi);
            let raw = prefetch.next_u64();
            let got = range_from_raw(raw, 0.0..hi);
            prop_assert!(got.to_bits() == want.to_bits());
            // Stream positions agree afterwards, too.
            prop_assert!(direct.next_u64() == prefetch.next_u64());

            let mut direct = sim_rng(base_seed, instance.wrapping_add(7));
            let mut prefetch = direct.clone();
            let want: f64 = direct.gen_range(f64::MIN_POSITIVE..1.0);
            let got = range_from_raw(prefetch.next_u64(), f64::MIN_POSITIVE..1.0);
            prop_assert!(got.to_bits() == want.to_bits());
        }
    }

    #[test]
    fn batch_rng_seeding_matches_sim_rng_for_every_width() {
        for &width in &WIDTHS {
            let mut batch = BatchRng::new(2014, 3, width);
            let mask = vec![true; width];
            let mut out = vec![0u64; width];
            let mut scalars: Vec<_> = (0..width as u64).map(|r| sim_rng(2014, 3 + r)).collect();
            for draw in 0..12 {
                batch.fill_masked(Kernel::Scalar, &mask, &mut out);
                for (r, scalar) in scalars.iter_mut().enumerate() {
                    assert_eq!(out[r], scalar.next_u64(), "draw {draw} lane {r} w {width}");
                }
            }
        }
    }

    /// The obviously-correct selection: the first slot whose prefix
    /// exceeds the target, last enabled slot on floating-point shortfall —
    /// the scalar reaction table's linear scan, verbatim.
    fn naive_select(prefix: &[f64], props: &[f64], width: usize, r: usize, target: f64) -> u32 {
        let nr = prefix.len() / width;
        for j in 0..nr {
            if prefix[j * width + r] > target {
                return j as u32;
            }
        }
        (0..nr)
            .rev()
            .find(|&j| props[j * width + r] > 0.0)
            .expect("no enabled slot") as u32
    }

    /// A slot table wider than [`SELECT_SCAN_MAX_SLOTS`], forcing the
    /// AVX2 selection onto its per-lane binary-search arm.
    fn long_reactants() -> Vec<Vec<(usize, u64)>> {
        (0..SELECT_SCAN_MAX_SLOTS + 16)
            .map(|j| vec![(j % SPECIES, 1)])
            .collect()
    }

    proptest! {
        #[test]
        fn selection_kernels_agree_with_the_linear_scan(
            width_idx in 0usize..5,
            pool in proptest::collection::vec(0u64..50, SPECIES * 33),
            fracs in proptest::collection::vec(0.0f64..1.05, 33),
            mask_word in 0u64..u64::MAX,
        ) {
            let width = WIDTHS[width_idx];
            // Both sides of the counting-scan/binary-search cutover.
            for reactants in [test_reactants(), long_reactants()] {
                let rates = vec![0.7; reactants.len()];
                let affects: Vec<Vec<u32>> = vec![Vec::new(); reactants.len()];
                let mut counts = vec![0i64; SPECIES * width];
                for sp in 0..SPECIES {
                    for r in 0..width {
                        counts[sp * width + r] = pool[sp * 33 + r] as i64;
                    }
                }
                let mut bufs = Buffers::new(reactants.len(), width);
                refresh_with(
                    Kernel::Scalar,
                    width,
                    &counts,
                    &rates,
                    &reactants,
                    &affects,
                    &mut bufs,
                );
                // Multi-channel lanes only (the engine's precondition);
                // `frac >= 1` lands the target at or past `a0`, forcing
                // the last-enabled shortfall fallback.
                let mask: Vec<bool> = (0..width)
                    .map(|r| bufs.active[r] > 1 && (mask_word >> (r % 64)) & 1 == 1)
                    .collect();
                let targets: Vec<f64> =
                    (0..width).map(|r| fracs[r] * bufs.a0[r]).collect();
                let mut reference: Option<Vec<u32>> = None;
                for kernel in kernels_under_test() {
                    let mut chosen = vec![u32::MAX; width];
                    select_masked(
                        kernel, &bufs.prefix, &bufs.props, width, &mask, &targets, &mut chosen,
                    );
                    for r in 0..width {
                        if mask[r] {
                            let want =
                                naive_select(&bufs.prefix, &bufs.props, width, r, targets[r]);
                            prop_assert!(
                                chosen[r] == want,
                                "kernel {kernel:?} lane {r} chose {} over {want} \
                                 ({} slots, width {width})",
                                chosen[r],
                                reactants.len()
                            );
                        } else {
                            prop_assert!(chosen[r] == u32::MAX, "unmasked lane {r} written");
                        }
                    }
                    match &reference {
                        None => reference = Some(chosen),
                        Some(want) => prop_assert!(&chosen == want, "kernels diverged"),
                    }
                }
            }
        }

        #[test]
        fn fused_double_fill_matches_two_sequential_fills(
            base_seed in 0u64..10_000,
            first in 0u64..1_000,
            width_idx in 0usize..5,
            words in proptest::collection::vec(0u64..u64::MAX, 12),
        ) {
            let width = WIDTHS[width_idx];
            for kernel in kernels_under_test() {
                let mut fused = BatchRng::new(base_seed, first, width);
                let mut sequential = fused.clone();
                let mut out_a = vec![0u64; width];
                let mut out_b = vec![0u64; width];
                let mut want_a = vec![0u64; width];
                let mut want_b = vec![0u64; width];
                for pair in words.chunks(2) {
                    let mask_a: Vec<bool> =
                        (0..width).map(|r| (pair[0] >> (r % 64)) & 1 == 1).collect();
                    let mask_b: Vec<bool> =
                        (0..width).map(|r| (pair[1] >> (r % 64)) & 1 == 1).collect();
                    fused.fill_masked2(kernel, &mask_a, &mut out_a, &mask_b, &mut out_b);
                    sequential.fill_masked(kernel, &mask_a, &mut want_a);
                    sequential.fill_masked(kernel, &mask_b, &mut want_b);
                    for r in 0..width {
                        if mask_a[r] {
                            prop_assert!(
                                out_a[r] == want_a[r],
                                "kernel {kernel:?} lane {r} first draw diverged"
                            );
                        }
                        if mask_b[r] {
                            prop_assert!(
                                out_b[r] == want_b[r],
                                "kernel {kernel:?} lane {r} second draw diverged"
                            );
                        }
                    }
                }
                // The fused sweep left every stream in the sequential
                // position: a full draw still agrees lane for lane.
                let mask = vec![true; width];
                fused.fill_masked(kernel, &mask, &mut out_a);
                sequential.fill_masked(kernel, &mask, &mut want_a);
                prop_assert!(out_a == want_a, "kernel {kernel:?} desynced the streams");
            }
        }

        #[test]
        fn incremental_refresh_matches_a_full_rebuild(
            width_idx in 0usize..5,
            pool in proptest::collection::vec(1u64..40, SPECIES * 33),
            fired in proptest::collection::vec(0usize..5, 33),
        ) {
            // Random single-slot dirty marks against a from-scratch
            // rebuild of the same counts: the partial prefix fold and its
            // active/first-active transition bookkeeping must land on the
            // full fold's bits in every kernel.
            let width = WIDTHS[width_idx];
            let reactants = test_reactants();
            let rates = [1.5, 0.25, 2.0, 0.75, 1.0];
            // The batch constructor's incidence: slots reading a species
            // the fired slot's delta changes. Consuming one unit of every
            // reactant is a valid delta for this synthetic table.
            let affects: Vec<Vec<u32>> = reactants
                .iter()
                .map(|fired_rs| {
                    reactants
                        .iter()
                        .enumerate()
                        .filter(|(_, rs)| {
                            rs.iter().any(|&(sp, _)| {
                                fired_rs.iter().any(|&(fsp, _)| fsp == sp)
                            })
                        })
                        .map(|(j, _)| j as u32)
                        .collect()
                })
                .collect();
            let mut counts = vec![0i64; SPECIES * width];
            for sp in 0..SPECIES {
                for r in 0..width {
                    counts[sp * width + r] = pool[sp * 33 + r] as i64;
                }
            }
            for kernel in kernels_under_test() {
                let mut bufs = Buffers::new(reactants.len(), width);
                refresh_with(kernel, width, &counts, &rates, &reactants, &affects, &mut bufs);
                // "Fire" one slot per lane: apply its consumption and mark
                // the lane dirty with the slot.
                let mut after = counts.clone();
                for r in 0..width {
                    let slot = fired[r];
                    for &(sp, k) in &reactants[slot] {
                        after[sp * width + r] = (after[sp * width + r] - k as i64).max(0);
                    }
                    bufs.dirty[r] = slot as u32;
                }
                refresh_with(kernel, width, &after, &rates, &reactants, &affects, &mut bufs);
                let mut full = Buffers::new(reactants.len(), width);
                refresh_with(kernel, width, &after, &rates, &reactants, &affects, &mut full);
                prop_assert!(
                    bufs.bits() == full.bits(),
                    "kernel {kernel:?} incremental refresh diverged from a full rebuild \
                     at width {width}"
                );
            }
        }
    }

    #[test]
    fn dispatch_resolution_honours_cpu_and_knob() {
        // The env override is exercised by CI's dispatch-coverage leg
        // (running the whole suite under CWC_FORCE_SCALAR_KERNELS); when
        // it is set, everything must resolve scalar.
        if std::env::var_os(FORCE_SCALAR_ENV).is_some() {
            assert_eq!(KernelDispatch::Auto.resolve(), Kernel::Scalar);
            assert_eq!(KernelDispatch::Simd.resolve(), Kernel::Scalar);
            assert_eq!(KernelDispatch::Scalar.resolve(), Kernel::Scalar);
            return;
        }
        assert_eq!(KernelDispatch::Scalar.resolve(), Kernel::Scalar);
        let want = if simd_available() {
            Kernel::Avx2
        } else {
            Kernel::Scalar
        };
        assert_eq!(KernelDispatch::Auto.resolve(), want);
        assert_eq!(KernelDispatch::Simd.resolve(), want);
        assert_eq!("simd".parse::<KernelDispatch>(), Ok(KernelDispatch::Simd));
        assert_eq!("auto".parse::<KernelDispatch>(), Ok(KernelDispatch::Auto));
        assert!("avx512".parse::<KernelDispatch>().is_err());
    }

    // -- width-1 row kernels ------------------------------------------------

    /// Scalar reference for the row fold: the literal legacy loop.
    fn ref_fold(props: &[f64], keep: impl Fn(usize) -> bool) -> (Vec<f64>, f64) {
        let mut acc = -0.0f64;
        let mut prefix = vec![0.0; props.len()];
        for (j, &p) in props.iter().enumerate() {
            if p > 0.0 && keep(j) {
                acc += p;
            }
            prefix[j] = acc;
        }
        (prefix, acc)
    }

    fn mask_from_words(len: usize, words: &[u64]) -> RuleMask {
        let mut mask = RuleMask::new(len);
        for j in 0..len {
            if words[j / 64] & (1 << (j % 64)) != 0 {
                mask.assign(j, true);
            }
        }
        mask
    }

    proptest! {
        #[test]
        fn row_folds_are_bit_identical_across_kernels_and_refold_starts(
            raw in proptest::collection::vec(0.001f64..50.0, 1..150),
            words in proptest::collection::vec(0u64..u64::MAX, 3),
            from_num in 0usize..150,
            bump_num in 0usize..150,
        ) {
            // Roughly 40% of slots disabled: the drawn value doubles as
            // the coin (the stub proptest has no weighted-choice strategy).
            let raw: Vec<f64> = raw.iter().map(|&p| if p < 20.0 { 0.0 } else { p }).collect();
            let n = raw.len();
            let mask = mask_from_words(n, &words);
            let (ref_prefix, ref_total) = ref_fold(&raw, |_| true);
            let (ref_mprefix, ref_mtotal) = ref_fold(&raw, |j| mask.get(j));
            let ref_sum: f64 = {
                let mut acc = -0.0f64;
                for &p in &raw {
                    if p > 0.0 {
                        acc += p;
                    }
                }
                acc
            };
            // A refold start and a mutation somewhere at-or-after it: the
            // partial refold seeded from prefix[from-1] must equal a full
            // refold of the mutated row.
            let from = from_num % n;
            let bump = from + bump_num % (n - from);
            let mut bumped = raw.clone();
            bumped[bump] = if bumped[bump] > 0.0 { 0.0 } else { 7.25 };
            let (ref_bprefix, ref_btotal) = ref_fold(&bumped, |_| true);
            let (ref_bmprefix, ref_bmtotal) = ref_fold(&bumped, |j| mask.get(j));
            for kernel in kernels_under_test() {
                let mut prefix = vec![0.0; n];
                let total = row_fold_from(kernel, &raw, &mut prefix, 0);
                prop_assert!(total.to_bits() == ref_total.to_bits(), "{kernel:?} total");
                prop_assert!(
                    prefix.iter().zip(&ref_prefix).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kernel:?} full fold prefix diverged"
                );
                prop_assert!(
                    row_sum(kernel, &raw).to_bits() == ref_sum.to_bits(),
                    "{kernel:?} row_sum"
                );
                // Partial refold over the mutated row.
                let mut scratch = ref_prefix.clone();
                scratch[..from].copy_from_slice(&ref_bprefix[..from]);
                let btotal = row_fold_from(kernel, &bumped, &mut scratch, from);
                prop_assert!(
                    btotal.to_bits() == ref_btotal.to_bits(),
                    "{kernel:?} refold total"
                );
                prop_assert!(
                    scratch.iter().zip(&ref_bprefix).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kernel:?} partial refold from {from} diverged"
                );
                // Masked variants, full and partial.
                let mut mprefix = vec![0.0; n];
                let mtotal = row_fold_masked_from(kernel, &raw, &mask, &mut mprefix, 0);
                prop_assert!(
                    mtotal.to_bits() == ref_mtotal.to_bits(),
                    "{kernel:?} masked total"
                );
                prop_assert!(
                    mprefix.iter().zip(&ref_mprefix).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kernel:?} masked fold prefix diverged"
                );
                let mut mscratch = ref_mprefix.clone();
                mscratch[..from].copy_from_slice(&ref_bmprefix[..from]);
                let bmtotal = row_fold_masked_from(kernel, &bumped, &mask, &mut mscratch, from);
                prop_assert_eq!(bmtotal.to_bits(), ref_bmtotal.to_bits());
                prop_assert!(
                    mscratch.iter().zip(&ref_bmprefix).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kernel:?} masked partial refold from {from} diverged"
                );
            }
        }

        #[test]
        fn row_select_agrees_with_the_linear_scan(
            raw in proptest::collection::vec(0.001f64..50.0, 1..150),
            frac in 0.0f64..1.1,
        ) {
            let raw: Vec<f64> = raw.iter().map(|&p| if p < 20.0 { 0.0 } else { p }).collect();
            let n = raw.len();
            let (prefix, total) = ref_fold(&raw, |_| true);
            // Sweep across the row, past the end (shortfall) included.
            let target = total.max(0.0) * frac;
            let want = prefix.iter().position(|&p| p > target).unwrap_or(n);
            for kernel in kernels_under_test() {
                prop_assert!(
                    row_select(kernel, &prefix, target) == want,
                    "{kernel:?} select at target {target}"
                );
            }
        }

        #[test]
        fn rule_mask_iterators_match_the_bit_definition(
            words_a in proptest::collection::vec(0u64..u64::MAX, 3),
            words_b in proptest::collection::vec(0u64..u64::MAX, 3),
            len in 1usize..150,
        ) {
            let a = mask_from_words(len, &words_a);
            let b = mask_from_words(len, &words_b);
            let want_a: Vec<usize> = (0..len).filter(|&j| a.get(j)).collect();
            let want_minus: Vec<usize> =
                (0..len).filter(|&j| a.get(j) && !b.get(j)).collect();
            prop_assert_eq!(a.iter().collect::<Vec<_>>(), want_a.clone());
            prop_assert_eq!(a.iter_minus(&b).collect::<Vec<_>>(), want_minus);
            prop_assert_eq!(a.last_set(), want_a.last().copied());
        }
    }

    #[test]
    fn rule_mask_assign_reports_the_previous_bit_and_clear_resets() {
        let mut mask = RuleMask::new(70);
        assert!(!mask.assign(3, true));
        assert!(mask.assign(3, true));
        assert!(!mask.assign(69, true));
        assert_eq!(mask.last_set(), Some(69));
        assert!(mask.assign(69, false));
        assert_eq!(mask.last_set(), Some(3));
        mask.clear();
        assert_eq!(mask.last_set(), None);
        assert_eq!(mask.iter().count(), 0);
    }

    #[test]
    fn row_select_covers_both_scan_and_search_regimes() {
        // A long non-decreasing row forces the binary-search path
        // (> SELECT_SCAN_MAX_SLOTS); a short one takes the counting scan.
        for n in [5usize, 64, 65, 200] {
            let props: Vec<f64> = (0..n).map(|j| (j % 3) as f64).collect();
            let (prefix, total) = ref_fold(&props, |_| true);
            for kernel in kernels_under_test() {
                for target in [-0.0, 0.0, total * 0.4999, total - 1e-9, total, total + 1.0] {
                    let want = prefix.iter().position(|&p| p > target).unwrap_or(n);
                    assert_eq!(
                        row_select(kernel, &prefix, target),
                        want,
                        "kernel {kernel:?} len {n} target {target}"
                    );
                }
            }
        }
    }
}
