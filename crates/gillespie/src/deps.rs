//! One-time model "compilation": per-rule read/write sets and the reaction
//! dependency graph.
//!
//! The CWC stochastic step is "significantly more complex than a plain
//! Gillespie algorithm" because every propensity is a tree-matching count.
//! Re-running every match after every firing is what makes the naive step
//! loop slow; but one firing perturbs a single site (plus, for transport
//! rules, the compartments it moves atoms across), so only the rules that
//! *read* what the fired rule *wrote* can change propensity. This module
//! derives that information once per model — the optimized-direct-method
//! dependency graph of StochKit lineage, generalised to compartment trees:
//!
//! - per rule, the species it reads at its site (pattern atoms + kinetic
//!   law inputs) and inside matched compartments (wrap / content pattern
//!   atoms);
//! - per rule, the net species it writes: at its own site
//!   ([`RuleDeps::site_delta`], also the stoichiometry vector tau-leaping
//!   uses) and inside each compartment it keeps ([`KeptChild`]);
//! - whether the rule is *structural* — it creates, destroys or dissolves
//!   compartments, changing the site tree itself. Structural firings
//!   invalidate every cached match (the reaction table does a full
//!   rebuild); non-structural firings re-match only the affected lists
//!   below.
//!
//! The affected lists answer "rule `r` just fired at site `S`; which
//! `(site, rule)` propensities may have changed?":
//!
//! - [`same_site_affected`](ModelDeps::same_site_affected): rules at `S`
//!   whose reads intersect `r`'s writes (at the site or inside kept
//!   compartments);
//! - [`child_affected`](ModelDeps::child_affected): rules *inside* each
//!   compartment `r` keeps, when `r` moves atoms across that membrane;
//! - [`parent_affected`](ModelDeps::parent_affected): rules at the parent
//!   of `S` whose compartment patterns read `S`'s content changes from the
//!   outside.
//!
//! Compilation is `O(rules² · pattern size)` — paid once per model, shared
//! by every simulation instance via `Arc` (see
//! [`EngineKind::build_with_deps`](crate::engine::EngineKind::build_with_deps)).

use std::collections::BTreeMap;

use cwc::model::Model;
use cwc::multiset::Multiset;
use cwc::rule::{CompProduction, RateLaw, Rule};
use cwc::species::{Label, Species};

/// Net effect of a rule on one compartment it keeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeptChild {
    /// Index of the LHS compartment pattern this rewrites.
    pub pattern: usize,
    /// Label of the kept compartment.
    pub label: Label,
    /// Net membrane change `(species, delta)`, ascending species order.
    pub wrap_delta: Vec<(Species, i64)>,
    /// Net content-atom change `(species, delta)`, ascending species order.
    pub content_delta: Vec<(Species, i64)>,
}

/// Compiled read/write summary of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleDeps {
    /// Site label the rule applies at.
    pub site: Label,
    /// True when the rule changes the compartment tree itself (creates,
    /// destroys or dissolves a compartment): its write set cannot be known
    /// statically and a firing forces a full table rebuild.
    pub structural: bool,
    /// Species read from the site's own content atoms: pattern atoms plus
    /// kinetic-law inputs. Ascending species order.
    pub site_reads: Vec<Species>,
    /// Species read from matched compartments' membranes.
    pub child_wrap_reads: Vec<Species>,
    /// Species read from matched compartments' content atoms.
    pub child_content_reads: Vec<Species>,
    /// Net species change at the site `(species, delta)`, ascending
    /// species order — exactly the stoichiometry vector of the reaction
    /// for flat rules. Meaningful only when `!structural`.
    pub site_delta: Vec<(Species, i64)>,
    /// Net changes inside each kept compartment (empty for flat rules).
    pub kept: Vec<KeptChild>,
}

impl RuleDeps {
    fn compile(rule: &Rule) -> Self {
        let mut site_reads: Vec<Species> = rule.lhs.atoms.iter().map(|(s, _)| s).collect();
        match rule.law {
            RateLaw::MassAction => {}
            RateLaw::HillRepression { inhibitor, .. } => site_reads.push(inhibitor),
            RateLaw::HillActivation { activator, .. } => site_reads.push(activator),
            RateLaw::Saturating { substrate, .. } => site_reads.push(substrate),
        }
        site_reads.sort_unstable();
        site_reads.dedup();

        let mut child_wrap_reads = Vec::new();
        let mut child_content_reads = Vec::new();
        for cp in &rule.lhs.comps {
            child_wrap_reads.extend(cp.wrap.iter().map(|(s, _)| s));
            child_content_reads.extend(cp.atoms.iter().map(|(s, _)| s));
        }
        child_wrap_reads.sort_unstable();
        child_wrap_reads.dedup();
        child_content_reads.sort_unstable();
        child_content_reads.dedup();

        let mut kept = Vec::new();
        let mut kept_count = 0usize;
        let mut has_new_or_dissolve = false;
        for cp in &rule.rhs.comps {
            match cp {
                CompProduction::Keep {
                    index,
                    add_wrap,
                    add_atoms,
                } => {
                    kept_count += 1;
                    let pat = &rule.lhs.comps[*index];
                    kept.push(KeptChild {
                        pattern: *index,
                        label: pat.label,
                        wrap_delta: multiset_delta(add_wrap, &pat.wrap),
                        content_delta: multiset_delta(add_atoms, &pat.atoms),
                    });
                }
                CompProduction::New { .. } | CompProduction::Dissolve { .. } => {
                    has_new_or_dissolve = true;
                }
            }
        }
        kept.sort_by_key(|k| k.pattern);
        // Any matched compartment not kept is destroyed — also structural.
        let structural = has_new_or_dissolve || kept_count != rule.lhs.comps.len();

        RuleDeps {
            site: rule.site,
            structural,
            site_reads,
            child_wrap_reads,
            child_content_reads,
            site_delta: multiset_delta(&rule.rhs.atoms, &rule.lhs.atoms),
            kept,
        }
    }

    /// True when the rule matches compartments (has LHS compartment
    /// patterns).
    pub fn reads_children(&self) -> bool {
        !self.child_wrap_reads.is_empty() || !self.child_content_reads.is_empty()
    }
}

/// `plus − minus` as a sparse signed delta, ascending species order,
/// zero entries dropped.
fn multiset_delta(plus: &Multiset, minus: &Multiset) -> Vec<(Species, i64)> {
    let mut d: BTreeMap<Species, i64> = BTreeMap::new();
    for (s, n) in plus.iter() {
        *d.entry(s).or_insert(0) += n as i64;
    }
    for (s, n) in minus.iter() {
        *d.entry(s).or_insert(0) -= n as i64;
    }
    d.into_iter().filter(|&(_, v)| v != 0).collect()
}

/// True when the sorted species list intersects the delta's species.
fn reads_hit(reads: &[Species], delta: &[(Species, i64)]) -> bool {
    // Both sides are sorted; merge-walk.
    let mut i = 0;
    let mut j = 0;
    while i < reads.len() && j < delta.len() {
        match reads[i].cmp(&delta[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Compiled model: per-rule summaries plus the reaction dependency graph.
///
/// Compile once per model ([`ModelDeps::compile`]) and share across
/// instances; construction is the only non-trivial cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDeps {
    rules: Vec<RuleDeps>,
    /// `same_site[r]`: rules (with `r`'s site label) to re-match at the
    /// fired site.
    same_site: Vec<Vec<u32>>,
    /// `child_rules[r][k]`: rules (at `rules[r].kept[k]`'s label) to
    /// re-match inside that kept compartment.
    child_rules: Vec<Vec<Vec<u32>>>,
    /// `parent_rules[r]`: candidate rules to re-match at the fired site's
    /// parent (filter by the parent's actual label at run time).
    parent_rules: Vec<Vec<u32>>,
}

std::thread_local! {
    /// Compilations performed by *this thread* — see
    /// [`ModelDeps::thread_compile_count`].
    static COMPILE_COUNT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl ModelDeps {
    /// Compilations this thread has performed via [`ModelDeps::compile`].
    ///
    /// Diagnostic instrumentation: the distributed farm ships compiled
    /// deps over the wire so workers never recompile a model, and the
    /// tests pinning that contract compare this counter before and after
    /// serving a shard. Thread-local on purpose — `compile` runs on the
    /// caller's thread, so parallel test threads cannot perturb each
    /// other's deltas.
    pub fn thread_compile_count() -> u64 {
        COMPILE_COUNT.with(std::cell::Cell::get)
    }

    /// Compiles `model`'s rules into read/write sets and affected-rule
    /// lists.
    pub fn compile(model: &Model) -> Self {
        COMPILE_COUNT.with(|c| c.set(c.get() + 1));
        let rules: Vec<RuleDeps> = model.rules.iter().map(RuleDeps::compile).collect();
        let n = rules.len();
        let mut same_site = vec![Vec::new(); n];
        let mut child_rules = vec![Vec::new(); n];
        let mut parent_rules = vec![Vec::new(); n];

        for (r, rd) in rules.iter().enumerate() {
            if rd.structural {
                // Structural firings rebuild the whole table; no lists.
                continue;
            }
            for (q, qd) in rules.iter().enumerate() {
                // Rules with zero rate never enter the table.
                if model.rules[q].rate == 0.0 {
                    continue;
                }
                // (a) q at the fired site itself.
                if qd.site == rd.site && same_site_hit(&model.rules[q], qd, rd) {
                    same_site[r].push(q as u32);
                }
                // (c) q at the fired site's parent, reading the site's
                // content from the outside through a compartment pattern.
                if !rd.site_delta.is_empty()
                    && model.rules[q].lhs.comps.iter().any(|p| {
                        p.label == rd.site
                            && rd.site_delta.iter().any(|&(s, _)| p.atoms.count(s) > 0)
                    })
                {
                    parent_rules[r].push(q as u32);
                }
            }
            // (b) q inside each compartment r keeps and writes into.
            for k in &rd.kept {
                let mut qs = Vec::new();
                if !k.content_delta.is_empty() {
                    for (q, qd) in rules.iter().enumerate() {
                        if model.rules[q].rate == 0.0 {
                            continue;
                        }
                        if qd.site == k.label && reads_hit(&qd.site_reads, &k.content_delta) {
                            qs.push(q as u32);
                        }
                    }
                }
                child_rules[r].push(qs);
            }
        }

        ModelDeps {
            rules,
            same_site,
            child_rules,
            parent_rules,
        }
    }

    /// Reassembles compiled deps from their parts — the wire decoder's
    /// entry point, so shipped deps are *received*, never recompiled.
    ///
    /// Only internal consistency is checked here (list lengths line up,
    /// every affected-rule index is in range); semantic agreement with a
    /// model is [`ModelDeps::validate_for`]'s job.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency —
    /// callers receiving deps from an untrusted stream must treat it as
    /// a protocol error, not compile around it.
    pub fn from_parts(
        rules: Vec<RuleDeps>,
        same_site: Vec<Vec<u32>>,
        child_rules: Vec<Vec<Vec<u32>>>,
        parent_rules: Vec<Vec<u32>>,
    ) -> Result<Self, String> {
        let n = rules.len();
        if same_site.len() != n || child_rules.len() != n || parent_rules.len() != n {
            return Err(format!(
                "affected-list lengths ({}/{}/{}) do not match the {n} rules",
                same_site.len(),
                child_rules.len(),
                parent_rules.len()
            ));
        }
        let check_indices = |list: &[u32], what: &str| -> Result<(), String> {
            match list.iter().find(|&&q| q as usize >= n) {
                Some(q) => Err(format!("{what} index {q} out of range for {n} rules")),
                None => Ok(()),
            }
        };
        for (r, rd) in rules.iter().enumerate() {
            check_indices(&same_site[r], "same-site affected-rule")?;
            check_indices(&parent_rules[r], "parent affected-rule")?;
            // The compiler emits one child list per kept compartment for
            // non-structural rules and an empty row for structural ones
            // (their firings rebuild the whole table).
            let expected = if rd.structural { 0 } else { rd.kept.len() };
            if child_rules[r].len() != expected {
                return Err(format!(
                    "rule {r} expects {expected} child lists but carries {}",
                    child_rules[r].len()
                ));
            }
            for qs in &child_rules[r] {
                check_indices(qs, "child affected-rule")?;
            }
        }
        Ok(ModelDeps {
            rules,
            same_site,
            child_rules,
            parent_rules,
        })
    }

    /// Checks that these deps could have been compiled *from `model`*:
    /// one summary per rule, every kept-compartment index inside the
    /// rule's LHS pattern list. A worker receiving deps over the wire
    /// runs this before trusting them — a mismatch means the coordinator
    /// shipped deps for a different model (or the stream was corrupted
    /// in a structurally-consistent way) and simulating with them would
    /// silently produce wrong trajectories.
    ///
    /// # Errors
    ///
    /// Returns a description of the first disagreement with `model`.
    pub fn validate_for(&self, model: &Model) -> Result<(), String> {
        if self.rules.len() != model.rules.len() {
            return Err(format!(
                "deps cover {} rules but the model has {}",
                self.rules.len(),
                model.rules.len()
            ));
        }
        for (r, rd) in self.rules.iter().enumerate() {
            let rule = &model.rules[r];
            if rd.site != rule.site {
                return Err(format!("rule {r}: deps site differs from the model's"));
            }
            for k in &rd.kept {
                if k.pattern >= rule.lhs.comps.len() {
                    return Err(format!(
                        "rule {r}: kept-compartment pattern index {} out of range for {} \
                         LHS compartment patterns",
                        k.pattern,
                        rule.lhs.comps.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True for a rule-less model.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The compiled summary of rule `r`.
    pub fn rule(&self, r: usize) -> &RuleDeps {
        &self.rules[r]
    }

    /// True when firing rule `r` changes the compartment tree (forces a
    /// full table rebuild).
    pub fn is_structural(&self, r: usize) -> bool {
        self.rules[r].structural
    }

    /// Rules to re-match at the site where `r` fired.
    pub fn same_site_affected(&self, r: usize) -> &[u32] {
        &self.same_site[r]
    }

    /// Rules to re-match inside `r`'s `k`-th kept compartment (indexed
    /// like [`RuleDeps::kept`]).
    pub fn child_affected(&self, r: usize, k: usize) -> &[u32] {
        &self.child_rules[r][k]
    }

    /// All of `r`'s per-kept-compartment affected-rule lists. One list
    /// per [`RuleDeps::kept`] entry for a non-structural rule; **empty**
    /// for a structural rule (a structural firing rebuilds the whole
    /// table, so the compiler skips its lists) — serializers must walk
    /// this row, not `kept`, to reproduce the compiled shape exactly.
    pub fn child_lists(&self, r: usize) -> &[Vec<u32>] {
        &self.child_rules[r]
    }

    /// Candidate rules to re-match at the fired site's parent; callers
    /// filter by the parent site's actual label.
    pub fn parent_affected(&self, r: usize) -> &[u32] {
        &self.parent_rules[r]
    }
}

/// Does firing `r` (non-structural) change `q`'s propensity at the same
/// site? `q` reads the site's atoms, or reads compartments `r` wrote into.
fn same_site_hit(q_rule: &Rule, qd: &RuleDeps, rd: &RuleDeps) -> bool {
    if reads_hit(&qd.site_reads, &rd.site_delta) {
        return true;
    }
    // Compartment patterns of q read the wrap/content of children that r
    // (a transport rule) wrote into — label-aware for precision.
    q_rule.lhs.comps.iter().any(|p| {
        rd.kept.iter().any(|k| {
            k.label == p.label
                && (k.wrap_delta.iter().any(|&(s, _)| p.wrap.count(s) > 0)
                    || k.content_delta.iter().any(|&(s, _)| p.atoms.count(s) > 0))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels_free::*;

    /// Local model builders (the models crate depends on this one).
    mod biomodels_free {
        use cwc::model::Model;

        pub fn birth_death() -> Model {
            let mut m = Model::new("bd");
            let _ = m.species("A");
            let g = m.species("G");
            m.rule("birth")
                .consumes("G", 1)
                .produces("G", 1)
                .produces("A", 1)
                .rate(2.0)
                .build()
                .unwrap();
            m.rule("death").consumes("A", 1).rate(1.0).build().unwrap();
            m.initial.add_atoms(g, 1);
            m
        }

        pub fn transport() -> Model {
            // in:  A (cell: |)  -> (cell: | A')      [keep, content write]
            // out: (cell: | A') -> A                 [keep, content read]
            // decay inside cell: A' -> ∅             [at cell]
            // make: B -> (cell: |)                   [structural: New]
            // burst: (cell: |) -> ∅ spilled          [structural: Dissolve]
            let mut m = Model::new("transport");
            m.rule("in")
                .consumes("A", 1)
                .matches_comp("cell", &[], &[])
                .keeps(0, &[], &[("Ain", 1)])
                .rate(1.0)
                .build()
                .unwrap();
            m.rule("out")
                .matches_comp("cell", &[], &[("Ain", 1)])
                .keeps(0, &[], &[])
                .produces("A", 1)
                .rate(1.0)
                .build()
                .unwrap();
            m.rule("decay")
                .at("cell")
                .consumes("Ain", 1)
                .rate(1.0)
                .build()
                .unwrap();
            m.rule("make")
                .consumes("B", 1)
                .creates_comp("cell", &[], &[])
                .rate(1.0)
                .build()
                .unwrap();
            m.rule("burst")
                .matches_comp("cell", &[], &[])
                .dissolves(0)
                .rate(1.0)
                .build()
                .unwrap();
            m
        }
    }

    #[test]
    fn flat_rule_reads_and_delta() {
        let m = birth_death();
        let deps = ModelDeps::compile(&m);
        assert_eq!(deps.len(), 2);
        let birth = deps.rule(0);
        assert!(!birth.structural);
        let a = m.alphabet.find_species("A").unwrap();
        let g = m.alphabet.find_species("G").unwrap();
        assert_eq!(birth.site_reads, vec![g]);
        assert_eq!(birth.site_delta, vec![(a, 1)]); // G nets out
        let death = deps.rule(1);
        assert_eq!(death.site_reads, vec![a]);
        assert_eq!(death.site_delta, vec![(a, -1)]);
    }

    #[test]
    fn dependency_graph_is_sparse() {
        let m = birth_death();
        let deps = ModelDeps::compile(&m);
        // birth writes A: only death reads A — birth itself reads G only.
        assert_eq!(deps.same_site_affected(0), &[1]);
        // death writes A(-1): death reads A (itself); birth does not.
        assert_eq!(deps.same_site_affected(1), &[1]);
        assert!(deps.parent_affected(0).is_empty());
        assert!(!deps.is_empty());
    }

    #[test]
    fn structural_rules_are_flagged() {
        let m = transport();
        let deps = ModelDeps::compile(&m);
        assert!(!deps.is_structural(0)); // keep-only transport
        assert!(!deps.is_structural(1));
        assert!(!deps.is_structural(2)); // flat at label
        assert!(deps.is_structural(3)); // creates_comp
        assert!(deps.is_structural(4)); // dissolves
                                        // Structural rules carry no affected lists.
        assert!(deps.same_site_affected(3).is_empty());
        assert!(deps.parent_affected(4).is_empty());
    }

    #[test]
    fn transport_rules_link_across_the_membrane() {
        let m = transport();
        let deps = ModelDeps::compile(&m);
        let ain = m.alphabet.find_species("Ain").unwrap();

        // "in" keeps the cell and writes Ain into it.
        let ind = deps.rule(0);
        assert_eq!(ind.kept.len(), 1);
        assert_eq!(ind.kept[0].content_delta, vec![(ain, 1)]);
        // Inside the cell, "decay" reads Ain → re-matched after "in".
        assert_eq!(deps.child_affected(0, 0), &[2]);
        // At the same (top) site, "in" consumed an A it also reads, and
        // "out" reads the cell's Ain through its compartment pattern.
        assert_eq!(deps.same_site_affected(0), &[0, 1]);

        // "decay" (inside the cell) changes the cell content seen from the
        // top: "out" pattern reads Ain → parent-affected.
        assert_eq!(deps.parent_affected(2), &[1]);

        // "out" consumes the cell's Ain and produces top-level A: at top,
        // "in" reads A → affected; "out" reads cell Ain → affected.
        let out_affected = deps.same_site_affected(1);
        assert_eq!(out_affected, &[0, 1]);
        // And inside the cell, "decay" loses a reactant.
        assert_eq!(deps.child_affected(1, 0), &[2]);
    }

    #[test]
    fn law_inputs_count_as_reads() {
        let mut m = Model::new("hill");
        let _ = m.species("P");
        m.rule("expr")
            .produces("P", 1)
            .rate(1.0)
            .repressed_by("R", 10.0, 2.0)
            .build()
            .unwrap();
        m.rule("repress")
            .produces("R", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let deps = ModelDeps::compile(&m);
        let r = m.alphabet.find_species("R").unwrap();
        assert!(deps.rule(0).site_reads.contains(&r));
        // Producing R re-matches the repressed rule.
        assert_eq!(deps.same_site_affected(1), &[0]);
    }

    /// Disassembles deps into owned parts via the public accessors —
    /// exactly what the wire encoder does.
    #[allow(clippy::type_complexity)]
    fn parts_of(
        deps: &ModelDeps,
    ) -> (
        Vec<RuleDeps>,
        Vec<Vec<u32>>,
        Vec<Vec<Vec<u32>>>,
        Vec<Vec<u32>>,
    ) {
        let n = deps.len();
        (
            (0..n).map(|r| deps.rule(r).clone()).collect(),
            (0..n)
                .map(|r| deps.same_site_affected(r).to_vec())
                .collect(),
            (0..n).map(|r| deps.child_lists(r).to_vec()).collect(),
            (0..n).map(|r| deps.parent_affected(r).to_vec()).collect(),
        )
    }

    #[test]
    fn from_parts_reassembles_compiled_deps_exactly() {
        for m in [birth_death(), transport()] {
            let deps = ModelDeps::compile(&m);
            let (rules, same_site, child_rules, parent_rules) = parts_of(&deps);
            let back = ModelDeps::from_parts(rules, same_site, child_rules, parent_rules)
                .expect("compiled parts are consistent");
            assert_eq!(back, deps);
            back.validate_for(&m)
                .expect("reassembled deps fit the model");
        }
    }

    #[test]
    fn from_parts_rejects_structural_inconsistencies() {
        let m = transport();
        let deps = ModelDeps::compile(&m);
        let (rules, same_site, child_rules, parent_rules) = parts_of(&deps);
        // Mismatched list lengths.
        let err = ModelDeps::from_parts(
            rules.clone(),
            Vec::new(),
            child_rules.clone(),
            parent_rules.clone(),
        )
        .unwrap_err();
        assert!(err.contains("lengths"), "{err}");
        // An affected index beyond the rule count.
        let mut bad = same_site.clone();
        bad[0].push(99);
        let err = ModelDeps::from_parts(
            rules.clone(),
            bad,
            child_rules.clone(),
            parent_rules.clone(),
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // A kept compartment with a missing child list.
        let mut bad = child_rules.clone();
        bad[0].clear();
        let err = ModelDeps::from_parts(rules, same_site, bad, parent_rules).unwrap_err();
        assert!(err.contains("child lists"), "{err}");
    }

    #[test]
    fn validate_for_rejects_deps_from_another_model() {
        let deps = ModelDeps::compile(&birth_death());
        let err = deps.validate_for(&transport()).unwrap_err();
        assert!(err.contains("rules"), "{err}");
    }

    #[test]
    fn compile_counter_is_thread_local_and_monotonic() {
        let before = ModelDeps::thread_compile_count();
        let _ = ModelDeps::compile(&birth_death());
        assert_eq!(ModelDeps::thread_compile_count(), before + 1);
        // Another thread's compilations do not perturb this thread's count.
        std::thread::spawn(|| {
            let _ = ModelDeps::compile(&transport());
        })
        .join()
        .unwrap();
        assert_eq!(ModelDeps::thread_compile_count(), before + 1);
    }

    #[test]
    fn zero_rate_rules_stay_out_of_affected_lists() {
        let mut m = Model::new("z");
        let a = m.species("A");
        m.rule("live").consumes("A", 1).rate(1.0).build().unwrap();
        m.rule("dead").consumes("A", 1).rate(0.0).build().unwrap();
        m.initial.add_atoms(a, 5);
        let deps = ModelDeps::compile(&m);
        assert_eq!(deps.same_site_affected(0), &[0]);
    }
}
