//! Approximate tau-leaping for flat (compartment-free) models.
//!
//! **Extension beyond the paper.** The paper's simulator uses the exact
//! Gillespie algorithm only; StochKit (its related work) ships tau-leaping
//! as an alternative integrator, so this crate provides one too for flat
//! models — rules that neither match nor rewrite compartments — where the
//! state reduces to a species-count vector and Poisson leaping is sound.
//!
//! The implementation is the basic non-negative Poisson leap: each leap of
//! length τ fires each reaction `k_r ~ Poisson(a_r τ)` times; if any
//! species would go negative the leap is halved and retried (down to a
//! floor, below which we fall back to exact stepping semantics by taking a
//! tiny leap).

use std::sync::Arc;

use cwc::model::Model;
use cwc::species::{Label, Species};
use rand::Rng;

use crate::rng::{sim_rng, SimRng};

/// Error constructing a [`TauLeapEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TauLeapError {
    /// The model has a rule with compartment patterns or productions.
    NotFlat {
        /// Name of the offending rule.
        rule: String,
    },
    /// The model has a rule that does not apply at the top level.
    NotTopLevel {
        /// Name of the offending rule.
        rule: String,
    },
    /// The model has a rule with a non-mass-action kinetic law.
    NotMassAction {
        /// Name of the offending rule.
        rule: String,
    },
}

impl std::fmt::Display for TauLeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TauLeapError::NotFlat { rule } => {
                write!(
                    f,
                    "rule `{rule}` uses compartments; tau-leaping needs a flat model"
                )
            }
            TauLeapError::NotTopLevel { rule } => {
                write!(
                    f,
                    "rule `{rule}` applies inside a compartment; tau-leaping needs top-level rules"
                )
            }
            TauLeapError::NotMassAction { rule } => {
                write!(f, "rule `{rule}` has a non-mass-action law; tau-leaping supports mass action only")
            }
        }
    }
}

impl std::error::Error for TauLeapError {}

/// Flat-model approximate simulator using Poisson tau-leaping.
#[derive(Debug, Clone)]
pub struct TauLeapEngine {
    model: Arc<Model>,
    species: Vec<Species>,
    /// `state[i]` = copies of `species[i]`.
    state: Vec<i64>,
    /// Per-rule reactant multiplicities, `(species index, count)`.
    reactants: Vec<Vec<(usize, u64)>>,
    /// Per-rule net stoichiometric change per firing.
    delta: Vec<Vec<(usize, i64)>>,
    rates: Vec<f64>,
    time: f64,
    rng: SimRng,
    leaps: u64,
    firings: u64,
}

impl TauLeapEngine {
    /// Builds a leaping engine from a flat model.
    ///
    /// # Errors
    ///
    /// Returns [`TauLeapError`] when any rule uses compartments or applies
    /// below the top level.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Result<Self, TauLeapError> {
        let species: Vec<Species> = model.alphabet.all_species().collect();
        let index_of = |s: Species| -> usize {
            species
                .iter()
                .position(|&x| x == s)
                .expect("species interned in this model")
        };
        let mut reactants = Vec::new();
        let mut delta = Vec::new();
        let mut rates = Vec::new();
        for rule in &model.rules {
            if !rule.is_flat() {
                return Err(TauLeapError::NotFlat {
                    rule: rule.name.clone(),
                });
            }
            if rule.site != Label::TOP {
                return Err(TauLeapError::NotTopLevel {
                    rule: rule.name.clone(),
                });
            }
            if !rule.law.is_mass_action() {
                return Err(TauLeapError::NotMassAction {
                    rule: rule.name.clone(),
                });
            }
            let r: Vec<(usize, u64)> = rule
                .lhs
                .atoms
                .iter()
                .map(|(s, n)| (index_of(s), n))
                .collect();
            let mut d: std::collections::BTreeMap<usize, i64> = Default::default();
            for (s, n) in rule.lhs.atoms.iter() {
                *d.entry(index_of(s)).or_insert(0) -= n as i64;
            }
            for (s, n) in rule.rhs.atoms.iter() {
                *d.entry(index_of(s)).or_insert(0) += n as i64;
            }
            reactants.push(r);
            delta.push(d.into_iter().filter(|(_, v)| *v != 0).collect());
            rates.push(rule.rate);
        }
        let state = species
            .iter()
            .map(|&s| model.initial.atoms.count(s) as i64)
            .collect();
        Ok(TauLeapEngine {
            model,
            species,
            state,
            reactants,
            delta,
            rates,
            time: 0.0,
            rng: sim_rng(base_seed, instance),
            leaps: 0,
            firings: 0,
        })
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Total leaps taken.
    pub fn leaps(&self) -> u64 {
        self.leaps
    }

    /// Total reaction firings applied (across all leaps).
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Current copy number of `species`.
    pub fn count(&self, species: Species) -> u64 {
        self.species
            .iter()
            .position(|&s| s == species)
            .map(|i| self.state[i] as u64)
            .unwrap_or(0)
    }

    /// Evaluates the model's observables (top-level counts only, which is
    /// exact for flat models).
    pub fn observe(&self) -> Vec<u64> {
        self.model
            .observables
            .iter()
            .map(|o| self.count(o.species))
            .collect()
    }

    fn propensity(&self, r: usize) -> f64 {
        let mut h = 1.0;
        for &(i, k) in &self.reactants[r] {
            let n = self.state[i];
            if n < k as i64 {
                return 0.0;
            }
            h *= cwc::multiset::binomial(n as u64, k) as f64;
        }
        self.rates[r] * h
    }

    /// Advances by one leap of at most `tau`, shrinking on negativity.
    ///
    /// Returns the leap actually taken (0.0 when the state is absorbing).
    pub fn leap(&mut self, tau: f64) -> f64 {
        let props: Vec<f64> = (0..self.rates.len()).map(|r| self.propensity(r)).collect();
        let a0: f64 = props.iter().sum();
        if a0 <= 0.0 {
            return 0.0;
        }
        let mut tau = tau;
        let floor = tau / 1024.0;
        loop {
            let mut candidate = self.state.clone();
            let mut firings = 0u64;
            for (r, &a) in props.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let k = poisson(&mut self.rng, a * tau);
                firings += k;
                for &(i, d) in &self.delta[r] {
                    candidate[i] += d * k as i64;
                }
            }
            if candidate.iter().all(|&c| c >= 0) {
                self.state = candidate;
                self.time += tau;
                self.leaps += 1;
                self.firings += firings;
                return tau;
            }
            tau /= 2.0;
            if tau < floor {
                // Take a deterministic micro-step: apply nothing, advance
                // time by the floor to guarantee progress.
                self.time += floor;
                self.leaps += 1;
                return floor;
            }
        }
    }

    /// Runs leaps of size `tau` until `t_end`.
    pub fn run_until(&mut self, t_end: f64, tau: f64) {
        while self.time < t_end {
            let remaining = t_end - self.time;
            let step = tau.min(remaining);
            if self.leap(step) == 0.0 {
                self.time = t_end;
            }
        }
    }
}

/// Poisson sampling: Knuth's product method for small λ, normal
/// approximation (Box–Muller) for large λ.
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // N(λ, λ) approximation, clamped at zero.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn rejects_compartment_models() {
        let mut m = Model::new("c");
        m.rule("r")
            .matches_comp("cell", &[], &[])
            .keeps(0, &[], &[("A", 1)])
            .rate(1.0)
            .build()
            .unwrap();
        let err = TauLeapEngine::new(Arc::new(m), 0, 0).unwrap_err();
        assert!(matches!(err, TauLeapError::NotFlat { .. }));
    }

    #[test]
    fn rejects_nested_site_rules() {
        let mut m = Model::new("c");
        m.rule("r")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let err = TauLeapEngine::new(Arc::new(m), 0, 0).unwrap_err();
        assert!(matches!(err, TauLeapError::NotTopLevel { .. }));
    }

    #[test]
    fn decay_mean_matches_exponential() {
        let model = decay_model(10_000, 1.0);
        let mut e = TauLeapEngine::new(model, 42, 0).unwrap();
        e.run_until(1.0, 0.01);
        let remaining = e.observe()[0] as f64;
        let expected = 10_000.0 * (-1.0f64).exp(); // ≈ 3679
        assert!(
            (remaining - expected).abs() < 0.05 * expected,
            "remaining {remaining}, expected ≈ {expected}"
        );
        assert!(e.leaps() >= 100);
        assert!(e.firings() > 5_000);
    }

    #[test]
    fn state_never_goes_negative() {
        // Aggressive τ on a small population forces the shrink path.
        let model = decay_model(5, 10.0);
        let mut e = TauLeapEngine::new(model, 7, 0).unwrap();
        e.run_until(2.0, 0.5);
        let a = e.observe()[0];
        assert!(a <= 5);
    }

    #[test]
    fn absorbing_state_terminates() {
        let model = decay_model(0, 1.0);
        let mut e = TauLeapEngine::new(model, 7, 0).unwrap();
        e.run_until(3.0, 0.1);
        assert_eq!(e.time(), 3.0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = sim_rng(1, 1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = sim_rng(2, 1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 200.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = sim_rng(3, 1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }
}
