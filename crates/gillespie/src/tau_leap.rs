//! Approximate fixed-step tau-leaping for flat (compartment-free) models.
//!
//! **Extension beyond the paper.** The paper's simulator uses the exact
//! Gillespie algorithm only; StochKit (its related work) ships tau-leaping
//! as an alternative integrator, so this crate provides one too for flat
//! models — rules that neither match nor rewrite compartments — where the
//! state reduces to a species-count vector and Poisson leaping is sound
//! (the reduction lives in [`crate::flat`], shared with the adaptive and
//! hybrid engines).
//!
//! The implementation is the basic non-negative Poisson leap: each leap of
//! length τ fires each reaction `k_r ~ Poisson(a_r τ)` times; if any
//! species would go negative the leap is halved and retried (down to a
//! floor, below which we fall back to exact stepping semantics by taking a
//! tiny leap). For the *adaptive* step-size selection that picks τ from
//! the state instead of a fixed knob, see [`crate::adaptive`].
//!
//! ## Quantum-exact execution
//!
//! The quantum-execution API ([`run_sampled`](TauLeapEngine::run_sampled),
//! used by [`crate::engine::Engine`]) keeps the engine slicing-invariant:
//! leap lengths depend only on the committed state and the RNG stream —
//! never on where a scheduling quantum ends — and a leap whose end lies
//! beyond the quantum horizon is drawn once, held *pending*, and committed
//! in a later quantum instead of being re-drawn or truncated. Samples
//! inside a leap interval report the committed state in force, matching
//! the exact engines' alignment convention, so rescheduling cannot change
//! a trajectory (the farm's correctness contract).

use std::sync::Arc;

use cwc::model::Model;
use cwc::species::Species;

use crate::batch::kernels::{self, Kernel, KernelDispatch};
use crate::deps::ModelDeps;
use crate::flat::{poisson, FlatModel, FlatModelError};
use crate::rng::{sim_rng, SimRng};
use crate::ssa::SampleClock;

/// Error constructing a [`TauLeapEngine`] — the shared flat-model
/// rejection type (see [`FlatModelError`]).
pub type TauLeapError = FlatModelError;

/// Default native leap length, used when none is configured via
/// [`TauLeapEngine::with_tau`] (the `EngineKind::TauLeap` knob always sets
/// one explicitly).
pub const DEFAULT_TAU: f64 = 0.1;

/// A drawn-but-not-yet-committed leap (see module docs).
#[derive(Debug, Clone)]
struct PendingLeap {
    /// Candidate state after the leap.
    state: Vec<i64>,
    /// Absolute time at which the leap commits.
    end: f64,
    /// Firings the leap applies when committed.
    firings: u64,
}

/// Flat-model approximate simulator using fixed-step Poisson tau-leaping.
#[derive(Debug, Clone)]
pub struct TauLeapEngine {
    model: Arc<Model>,
    /// Compiled flat reduction: species index space, reactants, net
    /// stoichiometry, rates.
    flat: FlatModel,
    /// `state[i]` = copies of `flat.species[i]` (the last *committed*
    /// state).
    state: Vec<i64>,
    /// Time of the last committed leap boundary.
    committed: f64,
    /// Reported simulation clock (advances to quantum horizons; always
    /// ≥ `committed`).
    time: f64,
    /// Native leap length for the quantum-execution API.
    tau: f64,
    /// Leap drawn past a quantum horizon, held until the horizon passes
    /// its end (see module docs).
    pending: Option<PendingLeap>,
    rng: SimRng,
    instance: u64,
    leaps: u64,
    firings: u64,
    /// Configured kernel knob (see [`KernelDispatch`]).
    dispatch: KernelDispatch,
    /// The knob resolved against this CPU; a performance knob only —
    /// both kernel sets are bit-for-bit identical.
    kernel: Kernel,
    /// Reusable propensity row for leap drawing.
    props_buf: Vec<f64>,
    /// Rules with nonzero propensity at the leap start, ascending — the
    /// Poisson sweep iterates these instead of scanning every rule.
    active_buf: Vec<u32>,
    /// Reusable candidate-state row (recycled through the committed
    /// state on leap commits).
    cand_buf: Vec<i64>,
}

impl TauLeapEngine {
    /// Builds a leaping engine from a flat model, compiling its
    /// stoichiometry locally.
    ///
    /// # Errors
    ///
    /// Returns [`TauLeapError`] when any rule uses compartments or applies
    /// below the top level.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Result<Self, TauLeapError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_deps(model, deps, base_seed, instance)
    }

    /// Like [`TauLeapEngine::new`], reusing an already-compiled
    /// [`ModelDeps`]: the per-rule net species deltas of the compilation
    /// pass *are* the stoichiometry vectors Poisson leaping needs.
    ///
    /// # Errors
    ///
    /// Returns [`TauLeapError`] when any rule uses compartments or applies
    /// below the top level.
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Result<Self, TauLeapError> {
        let flat = FlatModel::compile(&model, &deps, "tau-leaping")?;
        let state = flat.initial_state(&model);
        Ok(TauLeapEngine {
            model,
            flat,
            state,
            committed: 0.0,
            time: 0.0,
            tau: DEFAULT_TAU,
            pending: None,
            rng: sim_rng(base_seed, instance),
            instance,
            leaps: 0,
            firings: 0,
            dispatch: KernelDispatch::Auto,
            kernel: KernelDispatch::Auto.resolve(),
            props_buf: Vec::new(),
            active_buf: Vec::new(),
            cand_buf: Vec::new(),
        })
    }

    /// Selects the kernel implementation for the per-leap propensity
    /// fold (builder-style; the default is [`KernelDispatch::Auto`]).
    /// Both dispatches are bit-for-bit identical, so this is a
    /// performance knob, never a semantics knob.
    #[must_use]
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self.kernel = dispatch.resolve();
        self
    }

    /// The configured kernel dispatch knob.
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Sets the native leap length used by the quantum-execution API.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not finite and positive.
    pub fn with_tau(mut self, tau: f64) -> Self {
        assert!(
            tau.is_finite() && tau > 0.0,
            "leap length must be positive and finite"
        );
        self.tau = tau;
        self
    }

    /// The native leap length.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        &self.model
    }

    /// Total leaps taken.
    pub fn leaps(&self) -> u64 {
        self.leaps
    }

    /// Total reaction firings applied (across all committed leaps).
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Current copy number of `species`.
    pub fn count(&self, species: Species) -> u64 {
        self.flat.count(&self.state, species)
    }

    /// The committed per-species state vector, ordered like the model's
    /// interned species. Exposed so invariant tests (e.g. non-negativity)
    /// can inspect the raw counts.
    pub fn counts(&self) -> &[i64] {
        &self.state
    }

    /// Evaluates the model's observables (top-level counts only, which is
    /// exact for flat models).
    pub fn observe(&self) -> Vec<u64> {
        self.flat.observe(&self.model, &self.state)
    }

    /// Draws one leap of at most `tau` from the committed state (halving
    /// on negativity), without committing it. Returns `None` when the
    /// state is absorbing.
    fn draw_leap(&mut self, tau: f64) -> Option<PendingLeap> {
        self.flat
            .propensities_into(&self.state, &mut self.props_buf);
        // Bit-identical to the historical `props.iter().sum()`: zero
        // propensities are exact additive identities on a non-negative
        // running sum (the kernels' `-0.0` start only surfaces in the
        // absorbing case, where the `<= 0.0` test below agrees for both
        // zeros).
        let a0 = kernels::row_sum(self.kernel, &self.props_buf);
        if a0 <= 0.0 {
            return None;
        }
        // The Poisson sweep walks the nonzero-propensity rules
        // (ascending) — the same rules, in the same order, the
        // historical full scan drew for, so RNG consumption is unchanged.
        self.active_buf.clear();
        self.active_buf.extend(
            self.props_buf
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a > 0.0)
                .map(|(r, _)| r as u32),
        );
        let mut tau = tau;
        let floor = tau / 1024.0;
        loop {
            self.cand_buf.clone_from(&self.state);
            let mut firings = 0u64;
            for &r in &self.active_buf {
                let r = r as usize;
                let k = poisson(&mut self.rng, self.props_buf[r] * tau);
                firings += k;
                for &(i, d) in &self.flat.delta[r] {
                    self.cand_buf[i] += d * k as i64;
                }
            }
            if self.cand_buf.iter().all(|&c| c >= 0) {
                return Some(PendingLeap {
                    state: std::mem::take(&mut self.cand_buf),
                    end: self.committed + tau,
                    firings,
                });
            }
            tau /= 2.0;
            if tau < floor {
                // Take a deterministic micro-step: apply nothing, advance
                // time by the floor to guarantee progress.
                return Some(PendingLeap {
                    state: self.state.clone(),
                    end: self.committed + floor,
                    firings: 0,
                });
            }
        }
    }

    /// Applies the pending leap, returning its firings.
    fn commit_pending(&mut self) -> u64 {
        let p = self.pending.take().expect("pending leap to commit");
        // Recycle the outgoing state row as the next draw's candidate
        // buffer.
        self.cand_buf = std::mem::replace(&mut self.state, p.state);
        self.committed = p.end;
        if self.time < p.end {
            self.time = p.end;
        }
        self.leaps += 1;
        self.firings += p.firings;
        p.firings
    }

    /// Advances by one leap of at most `tau`, shrinking on negativity.
    ///
    /// Returns the leap actually taken (0.0 when the state is absorbing).
    /// Commits any leap held pending by the quantum-execution API first.
    pub fn leap(&mut self, tau: f64) -> f64 {
        if self.pending.is_some() {
            self.commit_pending();
        }
        match self.draw_leap(tau) {
            None => 0.0,
            Some(p) => {
                let taken = p.end - self.committed;
                self.pending = Some(p);
                self.commit_pending();
                taken
            }
        }
    }

    /// Runs leaps of size `tau` until `t_end`.
    pub fn run_until(&mut self, t_end: f64, tau: f64) {
        while self.time < t_end {
            let remaining = t_end - self.time;
            let step = tau.min(remaining);
            if self.leap(step) == 0.0 {
                self.time = t_end;
            }
        }
    }

    /// Runs until `t_end` on the native leap grid, invoking
    /// `on_sample(t, observables)` at every grid time `clock` yields
    /// within the interval. Returns the firings *committed* during the
    /// call.
    ///
    /// This is the slicing-invariant quantum-execution path (see module
    /// docs): leaps never truncate at `t_end`; one drawn past the horizon
    /// stays pending for a later call.
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, mut on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        let mut fired = 0;
        loop {
            if self.pending.is_none() {
                self.pending = self.draw_leap(self.tau);
            }
            let t_next = self
                .pending
                .as_ref()
                .map(|p| p.end)
                .unwrap_or(f64::INFINITY);
            // Emit all samples that fall before the next commit and within
            // the quantum; they report the committed state in force.
            let horizon = t_next.min(t_end);
            while let Some(ts) = clock.peek() {
                if ts > horizon {
                    break;
                }
                let values = self.observe();
                on_sample(ts, &values);
                clock.advance();
            }
            if t_next > t_end {
                if self.time < t_end {
                    self.time = t_end;
                }
                return fired;
            }
            fired += self.commit_pending();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn birth_death_model(birth: f64, death: f64, n0: u64) -> Arc<Model> {
        let mut m = Model::new("bd");
        let a = m.species("A");
        m.rule("birth")
            .produces("A", 1)
            .rate(birth)
            .build()
            .unwrap();
        m.rule("death")
            .consumes("A", 1)
            .rate(death)
            .build()
            .unwrap();
        m.initial.add_atoms(a, n0);
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn rejects_compartment_models() {
        let mut m = Model::new("c");
        m.rule("r")
            .matches_comp("cell", &[], &[])
            .keeps(0, &[], &[("A", 1)])
            .rate(1.0)
            .build()
            .unwrap();
        let err = TauLeapEngine::new(Arc::new(m), 0, 0).unwrap_err();
        assert!(matches!(err, TauLeapError::NotFlat { .. }));
        assert!(err.to_string().contains("tau-leaping"));
        assert!(err.to_string().contains("`r`"));
    }

    #[test]
    fn rejects_nested_site_rules() {
        let mut m = Model::new("c");
        m.rule("r")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let err = TauLeapEngine::new(Arc::new(m), 0, 0).unwrap_err();
        assert!(matches!(err, TauLeapError::NotTopLevel { .. }));
    }

    #[test]
    fn decay_mean_matches_exponential() {
        let model = decay_model(10_000, 1.0);
        let mut e = TauLeapEngine::new(model, 42, 0).unwrap();
        e.run_until(1.0, 0.01);
        let remaining = e.observe()[0] as f64;
        let expected = 10_000.0 * (-1.0f64).exp(); // ≈ 3679
        assert!(
            (remaining - expected).abs() < 0.05 * expected,
            "remaining {remaining}, expected ≈ {expected}"
        );
        assert!(e.leaps() >= 100);
        assert!(e.firings() > 5_000);
    }

    #[test]
    fn state_never_goes_negative() {
        // Aggressive τ on a small population forces the shrink path.
        let model = decay_model(5, 10.0);
        let mut e = TauLeapEngine::new(model, 7, 0).unwrap();
        e.run_until(2.0, 0.5);
        let a = e.observe()[0];
        assert!(a <= 5);
        assert!(e.counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn absorbing_state_terminates() {
        let model = decay_model(0, 1.0);
        let mut e = TauLeapEngine::new(model, 7, 0).unwrap();
        e.run_until(3.0, 0.1);
        assert_eq!(e.time(), 3.0);
    }

    #[test]
    fn quantum_slicing_is_bit_identical() {
        // The same leap schedule whether advanced in one quantum or many:
        // pending leaps survive rescheduling instead of being re-drawn.
        let model = birth_death_model(40.0, 1.0, 10);
        let mut whole = TauLeapEngine::new(Arc::clone(&model), 5, 3)
            .unwrap()
            .with_tau(0.07);
        let mut wc = SampleClock::new(0.0, 0.25);
        let mut ws = Vec::new();
        whole.run_sampled(6.0, &mut wc, |t, v| ws.push((t, v.to_vec())));

        let mut sliced = TauLeapEngine::new(model, 5, 3).unwrap().with_tau(0.07);
        let mut sc = SampleClock::new(0.0, 0.25);
        let mut ss = Vec::new();
        // Irregular quanta covering the same horizon.
        for t in [0.1, 0.33, 1.0, 1.01, 2.5, 4.99, 6.0] {
            sliced.run_sampled(t, &mut sc, |t, v| ss.push((t, v.to_vec())));
        }
        assert_eq!(ws, ss);
        assert_eq!(whole.counts(), sliced.counts());
        assert_eq!(whole.firings(), sliced.firings());
        assert_eq!(whole.leaps(), sliced.leaps());
        assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn samples_report_committed_state_in_force() {
        // With τ = 10 (far beyond the horizon) on a pure-birth model (no
        // negativity halving), the first leap spans the whole quantum and
        // never commits, so every sample must report the initial state.
        let model = birth_death_model(5.0, 0.0, 50);
        let mut e = TauLeapEngine::new(model, 1, 0).unwrap().with_tau(10.0);
        let mut clock = SampleClock::new(0.0, 0.5);
        let mut samples = Vec::new();
        e.run_sampled(2.0, &mut clock, |t, v| samples.push((t, v[0])));
        assert_eq!(samples.len(), 5); // grid 0, 0.5, ..., 2.0
        assert!(samples.iter().all(|&(_, a)| a == 50));
        assert_eq!(e.time(), 2.0);
        assert_eq!(e.firings(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tau_panics() {
        let model = decay_model(1, 1.0);
        let _ = TauLeapEngine::new(model, 1, 0).unwrap().with_tau(0.0);
    }
}
