//! Deterministic random number plumbing.
//!
//! Every simulation instance owns its own PRNG, seeded by mixing a base
//! seed with the instance id. Runs are therefore reproducible bit-for-bit
//! for a fixed base seed regardless of how instances are scheduled across
//! workers, hosts or the simulated GPGPU — which is what lets the
//! integration tests assert that the distributed and GPU execution paths
//! produce *identical* trajectories to the multicore one.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The PRNG used by all simulation engines.
pub type SimRng = StdRng;

/// SplitMix64 finaliser; decorrelates consecutive instance ids.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of simulation instance `instance` from `base`.
pub fn instance_seed(base: u64, instance: u64) -> u64 {
    splitmix64(base ^ splitmix64(instance.wrapping_add(0x5851_f42d_4c95_7f2d)))
}

/// Builds the PRNG for one simulation instance.
///
/// # Examples
///
/// ```
/// use gillespie::rng::sim_rng;
/// use rand::RngCore;
///
/// let mut a = sim_rng(42, 0);
/// let mut b = sim_rng(42, 0);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
pub fn sim_rng(base: u64, instance: u64) -> SimRng {
    SimRng::seed_from_u64(instance_seed(base, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = sim_rng(7, 3);
        let mut b = sim_rng(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_instances_differ() {
        let mut a = sim_rng(7, 0);
        let mut b = sim_rng(7, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5, "instance streams should be decorrelated");
    }

    #[test]
    fn different_bases_differ() {
        assert_ne!(instance_seed(1, 0), instance_seed(2, 0));
    }

    #[test]
    fn consecutive_instance_seeds_are_spread_out() {
        // SplitMix64 should not leave consecutive seeds close together.
        let s0 = instance_seed(0, 0);
        let s1 = instance_seed(0, 1);
        assert!(s0.abs_diff(s1) > 1 << 32);
    }
}
