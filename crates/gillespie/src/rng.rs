//! Deterministic random number plumbing.
//!
//! Every simulation instance owns its own PRNG, seeded by mixing a base
//! seed with the instance id. Runs are therefore reproducible bit-for-bit
//! for a fixed base seed regardless of how instances are scheduled across
//! workers, hosts or the simulated GPGPU — which is what lets the
//! integration tests assert that the distributed and GPU execution paths
//! produce *identical* trajectories to the multicore one.
//!
//! ## Draw discipline
//!
//! Reproducibility needs more than fixed seeds: every engine consumes its
//! instance stream in a *documented, state-determined order*, so a
//! trajectory is a pure function of `(model, base seed, instance)`. Per
//! step:
//!
//! - **direct method** ([`crate::ssa::SsaEngine`]): one uniform in
//!   `[ε, 1)` for the exponential waiting time (drawn once and kept
//!   pending across quantum boundaries), one uniform in `[0, a0)` for the
//!   reaction selection **iff more than one reaction is enabled** (a
//!   single-channel selection is deterministic and consumes nothing), and
//!   one uniform in `[0, 1)` for the assignment choice;
//! - **first-reaction method** ([`crate::first_reaction::FirstReactionEngine`]):
//!   one uniform in `[ε, 1)` per enabled reaction, in enumeration order
//!   (drawn once per event and kept pending across quantum boundaries),
//!   then one uniform in `[0, 1)` for the assignment choice;
//! - **tau-leaping** ([`crate::tau_leap::TauLeapEngine`]): per drawn leap,
//!   one Poisson variate per reaction with non-zero propensity, in rule
//!   order, re-drawn on each negativity-halving retry;
//! - **adaptive tau-leaping** ([`crate::adaptive::AdaptiveTauEngine`]):
//!   per drawn transition, in this order — (a) when the CGP bound falls
//!   below the SSA-fallback threshold, one uniform in `[ε, 1)` for the
//!   waiting time and one uniform in `[0, a0)` for the selection (the
//!   selection uniform is *always* consumed, single-channel states
//!   included — unlike the direct method, so the two streams are not
//!   interchangeable); otherwise (b) one uniform in `[ε, 1)` for the
//!   critical block's exponential clock **iff any critical reaction is
//!   enabled**, then one Poisson variate per enabled *non-critical*
//!   reaction in rule order, then one uniform in `[0, a0_crit)` for the
//!   critical selection **iff the critical clock fired first**. A
//!   negativity overshoot halves the bound and re-runs (b) from the top —
//!   every draw remains a pure function of the committed state and the
//!   stream position, so slicing cannot perturb it;
//! - **hybrid SSA/tau** ([`crate::hybrid::HybridEngine`]): *two* streams.
//!   The exact phase consumes the instance's primary stream through an
//!   embedded direct-method engine, with exactly the direct-method
//!   discipline above — a hybrid trajectory is bit-for-bit identical to
//!   plain SSA until the first phase switch. The leap phase consumes a
//!   dedicated stream seeded from `base_seed ^ LEAP_STREAM_SALT` (same
//!   instance mixing), drawing one Poisson variate per enabled reaction
//!   in rule order per *candidate* leap — including candidates that
//!   negativity-halving shrinks or abandons entirely (an abandoned
//!   candidate still advanced the leap stream by one draw set). The
//!   switch test itself (`τ·a0` vs the threshold) is a pure function of
//!   the committed state and consumes nothing, and the primary stream is
//!   never touched outside exact segments — so the exact stream's
//!   alignment is independent of how often leaping engages;
//! - **batched SSA** ([`crate::batch::BatchedSsaEngine`]): replica `r` of
//!   a batch with first instance `f` owns the stream of instance `f + r`
//!   (same [`sim_rng`] derivation) and replicates the **direct method**
//!   discipline above on it, draw for draw — streams never interleave
//!   across replicas, so the lockstep schedule cannot perturb a
//!   trajectory and every replica is bit-for-bit scalar SSA instance
//!   `f + r`.
//!
//! On single-channel states the first two disciplines coincide — one
//! waiting-time uniform, no selection, one assignment uniform — so a
//! first-reaction engine sharing the direct method's stream
//! ([`FirstReactionEngine::coupled`](crate::first_reaction::FirstReactionEngine::coupled))
//! reproduces its trajectories bit-for-bit on single-channel models. The
//! property tests use this coupling as an oracle for the waiting-time and
//! propensity formulas.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The PRNG used by all simulation engines.
pub type SimRng = StdRng;

/// SplitMix64 finaliser; decorrelates consecutive instance ids.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of simulation instance `instance` from `base`.
pub fn instance_seed(base: u64, instance: u64) -> u64 {
    splitmix64(base ^ splitmix64(instance.wrapping_add(0x5851_f42d_4c95_7f2d)))
}

/// Builds the PRNG for one simulation instance.
///
/// # Examples
///
/// ```
/// use gillespie::rng::sim_rng;
/// use rand::RngCore;
///
/// let mut a = sim_rng(42, 0);
/// let mut b = sim_rng(42, 0);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
pub fn sim_rng(base: u64, instance: u64) -> SimRng {
    SimRng::seed_from_u64(instance_seed(base, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = sim_rng(7, 3);
        let mut b = sim_rng(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_instances_differ() {
        let mut a = sim_rng(7, 0);
        let mut b = sim_rng(7, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5, "instance streams should be decorrelated");
    }

    #[test]
    fn different_bases_differ() {
        assert_ne!(instance_seed(1, 0), instance_seed(2, 0));
    }

    #[test]
    fn consecutive_instance_seeds_are_spread_out() {
        // SplitMix64 should not leave consecutive seeds close together.
        let s0 = instance_seed(0, 0);
        let s1 = instance_seed(0, 1);
        assert!(s0.abs_diff(s1) > 1 << 32);
    }
}
