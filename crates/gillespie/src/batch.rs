//! The batched SoA engine tier: many replicas of one flat model in
//! lockstep.
//!
//! [`BatchedSsaEngine`] advances a *batch* of direct-method trajectories
//! of a single flat mass-action model together, over structure-of-arrays
//! state: `counts[species][replica]`, propensities and their running
//! prefix sums laid out replica-contiguous so the per-round propensity
//! refresh streams through memory row by row (StochKit-FF's ensemble
//! batching, StochSoCs' parallel propensity units — see PAPERS.md). The
//! batch is the stepping stone towards a real `simt` CUDA kernel: the
//! memory layout *is* the coalesced device layout.
//!
//! ## Bit-for-bit scalar equivalence
//!
//! Replica `r` of a batch with first instance `f` is **bit-for-bit
//! identical** to the scalar [`SsaEngine`](crate::ssa::SsaEngine) instance
//! `f + r`: same RNG stream ([`sim_rng`](crate::rng::sim_rng) with the
//! same per-instance seed derivation), same draw discipline (documented in
//! [`crate::rng`]), and the same floating-point operations in the same
//! order:
//!
//! - propensities are exact `u64` binomial products (the tree-matcher's
//!   `selection_count` replayed on dense counts) with a single final
//!   `as f64` cast and the same positive clamp;
//! - `a0` is the prefix-sum fold of the *enabled* propensities in rule
//!   order, starting from the additive identity `-0.0` — exactly the
//!   filtered `Iterator::sum` of the scalar reaction table, so an
//!   exhausted replica reports the same `-0.0` total;
//! - selection binary-searches the prefix column for the first slot whose
//!   cumulative propensity exceeds the selection uniform. Because `-0.0 +
//!   p` and `0.0 + p` are bitwise equal for every enabled `p > 0`, one
//!   prefix array serves both the `a0` fold (identity `-0.0`) and the
//!   selection scan (identity `0.0`) without a bit of divergence, and
//!   because the prefix only increases at enabled slots, the crossing
//!   index found by the search is the exact entry the scalar linear scan
//!   returns (last-enabled fallback on floating-point shortfall included);
//! - single-channel states select deterministically and consume **no**
//!   selection uniform, and every firing consumes one assignment uniform
//!   (drawn and discarded — flat rules have a trivial assignment, but the
//!   scalar engine consumes the draw, so the batch must too).
//!
//! The quantum loop is the scalar `run_sampled` loop run round-robin: each
//! round refreshes the propensity matrix for every replica that fired
//! (phase 1 — incremental: only the slots whose reactants read a species
//! the firing changed are recomputed, via a precomputed slot-incidence
//! table, before an adds-only prefix rebuild) and then advances every live
//! replica by one waiting-time/sample/fire iteration (phase 2). Replica
//! streams never interleave — each replica owns its RNG — so the lockstep
//! schedule cannot perturb a trajectory.
//!
//! The hot loops themselves — the slot recompute, the prefix fold, the
//! direct-method selection and the lockstep RNG stepping — live in the
//! [`kernels`] layer, which dispatches at runtime between a portable
//! scalar reference and x86_64 AVX2 four-lane kernels
//! ([`KernelDispatch`]); the two are bit-for-bit identical, so the knob
//! only changes how fast a batch runs, never what it computes.

pub mod kernels;

use std::sync::Arc;

use cwc::model::{Model, ObservableSite};

use crate::deps::ModelDeps;
use crate::engine::{BatchEngine, EngineError, QuantumOutcome};
use crate::flat::{FlatModel, FlatModelError};
use crate::ssa::SampleClock;

use kernels::{BatchRng, Kernel, KernelDispatch, RefreshOut, SlotPlan, SlotSet, SlotView};
use kernels::{CLEAN, DIRTY_ALL};

/// The engine name used in flat-model rejection messages.
pub const BATCHED_ENGINE_NAME: &str = "the batched SSA engine";

/// One observable of the batch: the dynamic top-level species slot (if
/// any) plus the constant contribution of inert initial-term compartments.
///
/// Flat rules only rewrite top-level atoms, so any compartment in the
/// initial term is inert and its contribution to an observable is a
/// constant — adding it back reproduces the scalar engine's
/// `eval_observables` on the full term exactly.
#[derive(Debug, Clone, Copy)]
struct ObsSpec {
    /// Species index into the state vector, `None` when the observable
    /// never reads top-level counts (`AtLabel` sites).
    state_index: Option<usize>,
    /// Constant contribution of the initial term's compartments.
    offset: u64,
}

/// A batch of direct-method replicas of one flat mass-action model,
/// advancing in lockstep over SoA state (see module docs).
///
/// # Examples
///
/// ```
/// use cwc::model::Model;
/// use gillespie::batch::BatchedSsaEngine;
/// use gillespie::engine::BatchEngine;
/// use gillespie::ssa::SampleClock;
/// use std::sync::Arc;
///
/// let mut m = Model::new("decay");
/// let a = m.species("A");
/// m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
/// m.initial.add_atoms(a, 20);
/// m.observe("A", a);
///
/// let mut batch = BatchedSsaEngine::new(Arc::new(m), 42, 0, 4).unwrap();
/// let mut clocks: Vec<SampleClock> =
///     (0..4).map(|_| SampleClock::new(0.0, 0.5)).collect();
/// let outcomes = batch.advance_quantum_batch(2.0, &mut clocks);
/// assert_eq!(outcomes.len(), 4);
/// assert_eq!(batch.time(), 2.0); // lockstep: every replica at the horizon
/// ```
#[derive(Debug, Clone)]
pub struct BatchedSsaEngine {
    model: Arc<Model>,
    width: usize,
    first_instance: u64,
    /// CSR offsets into `slot_delta`: slot `j`'s net stoichiometry lives
    /// at `slot_delta[slot_delta_idx[j]..slot_delta_idx[j + 1]]`. The
    /// flat layout keeps the fire loop free of per-rule pointer chasing.
    slot_delta_idx: Vec<u32>,
    /// Flattened per-slot net stoichiometric changes `(species, delta)`.
    slot_delta: Vec<(u32, i64)>,
    /// Per-slot reactant multiplicities `(species index, count)`.
    slot_reactants: Vec<Vec<(usize, u64)>>,
    /// Per-slot mass-action rate constants.
    slot_rates: Vec<f64>,
    /// Per-slot vectorization plans (see [`kernels`]).
    plans: Vec<SlotPlan>,
    /// Observable evaluation plan (see [`ObsSpec`]).
    observables: Vec<ObsSpec>,
    /// SoA state: `counts[sp * width + r]` is species `sp` of replica `r`.
    counts: Vec<i64>,
    /// SoA propensities: `props[j * width + r]` is reaction slot `j`.
    props: Vec<f64>,
    /// SoA running prefix sums of the enabled propensities, per replica
    /// folded from `-0.0` in slot order; `prefix[(nr-1) * width + r]` is
    /// the replica's `a0`.
    prefix: Vec<f64>,
    /// Per-replica total propensity (`-0.0` when exhausted, like the
    /// scalar table's filtered sum).
    a0: Vec<f64>,
    /// Per-replica count of enabled reaction slots.
    active: Vec<u32>,
    /// Per-replica first enabled slot (`u32::MAX` when none).
    first_active: Vec<u32>,
    /// Per-replica simulation time. All equal at quantum boundaries.
    times: Vec<f64>,
    /// Per-replica drawn-but-unfired event time (quantum exactness),
    /// `NAN` when no draw is outstanding — event times are sums and
    /// quotients of finite positives, so they are never `NaN` and the
    /// sentinel is unambiguous (an overflowed `+inf` event parks the
    /// replica forever, exactly like the scalar engine).
    pending: Vec<f64>,
    /// Per-replica RNG streams in SoA form: lane `r` is exactly the
    /// scalar stream of instance `first_instance + r`, stepped in
    /// lockstep by the RNG kernel.
    rng: BatchRng,
    /// Per-replica reactions fired so far.
    steps: Vec<u64>,
    /// Per-slot incidence list: the slots whose propensity reads a species
    /// that firing this slot changes — the only propensities a firing can
    /// move, so the refresh recomputes just those (the batch-local
    /// analogue of the scalar table's dependency-graph update).
    affects: Vec<Vec<u32>>,
    /// Per-replica refresh obligation: [`CLEAN`], [`DIRTY_ALL`] (recompute
    /// every slot — the initial state), or the slot that fired since the
    /// last refresh (recompute only its incidence list).
    dirty: Vec<u32>,
    /// The configured kernel selection knob.
    dispatch: KernelDispatch,
    /// The kernel set `dispatch` resolved to on this CPU.
    kernel: Kernel,
    /// Scratch slot-union set for the chunked incidence refresh.
    seen: SlotSet,
    /// Round scratch: per-replica draw mask of the current batched draw.
    draw_mask: Vec<bool>,
    /// Round scratch: per-replica firing decision of the current round.
    fire_mask: Vec<bool>,
    /// Round scratch: raw lane words of the current batched draw.
    raws: Vec<u64>,
    /// Round scratch: raw lane words of the round's assignment draws
    /// (drawn fused with the selection draws, then discarded — see
    /// [`advance_quantum_batch`](BatchEngine::advance_quantum_batch)).
    raws_assign: Vec<u64>,
    /// Round scratch: per-replica selection targets of the current round.
    targets: Vec<f64>,
    /// Round scratch: per-replica selected slots of the current round.
    chosen: Vec<u32>,
}

impl BatchedSsaEngine {
    /// Creates a batch of `width` replicas covering scalar instances
    /// `first_instance .. first_instance + width`, compiling the model's
    /// dependency graph locally. Farms compile once and share it via
    /// [`BatchedSsaEngine::with_deps`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::FlatModel`] when the model is not flat,
    /// top-level, mass-action — the error names the offending rule.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero (validated earlier by
    /// [`EngineKind::validate`](crate::engine::EngineKind::validate)).
    pub fn new(
        model: Arc<Model>,
        base_seed: u64,
        first_instance: u64,
        width: usize,
    ) -> Result<Self, EngineError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_deps(model, deps, base_seed, first_instance, width)
    }

    /// Like [`BatchedSsaEngine::new`], reusing an already-compiled
    /// dependency graph.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::FlatModel`] when the model is not flat,
    /// top-level, mass-action.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        first_instance: u64,
        width: usize,
    ) -> Result<Self, EngineError> {
        assert!(width >= 1, "a batch needs at least one replica");
        let flat = FlatModel::compile(&model, &deps, BATCHED_ENGINE_NAME)?;
        let reactions: Vec<usize> = (0..flat.rules())
            .filter(|&r| flat.rates[r] != 0.0)
            .collect();
        let initial = flat.initial_state(&model);
        let species_count = flat.species.len();
        let mut counts = vec![0i64; species_count * width];
        for (sp, &n) in initial.iter().enumerate() {
            counts[sp * width..(sp + 1) * width].fill(n);
        }
        let observables = model
            .observables
            .iter()
            .map(|o| {
                let state_index = match o.site {
                    ObservableSite::AtLabel(_) => None,
                    _ => flat.species.iter().position(|&s| s == o.species),
                };
                let dynamic = state_index.map(|i| initial[i] as u64).unwrap_or(0);
                ObsSpec {
                    state_index,
                    offset: o.eval(&model.initial) - dynamic,
                }
            })
            .collect();
        let nr = reactions.len();
        // Slot-to-slot firing incidence: firing slot `s` can only move the
        // propensity of slots whose reactants read a species `s`'s delta
        // actually changes. Quadratic in the (small) reaction count, built
        // once per batch.
        let affects: Vec<Vec<u32>> = reactions
            .iter()
            .map(|&rule| {
                reactions
                    .iter()
                    .enumerate()
                    .filter(|&(_, &other)| {
                        flat.reactants[other].iter().any(|&(sp, _)| {
                            flat.delta[rule].iter().any(|&(dsp, d)| dsp == sp && d != 0)
                        })
                    })
                    .map(|(j, _)| j as u32)
                    .collect()
            })
            .collect();
        let slot_reactants: Vec<Vec<(usize, u64)>> = reactions
            .iter()
            .map(|&rule| flat.reactants[rule].to_vec())
            .collect();
        let slot_rates: Vec<f64> = reactions.iter().map(|&rule| flat.rates[rule]).collect();
        let mut slot_delta_idx = Vec::with_capacity(nr + 1);
        let mut slot_delta = Vec::new();
        slot_delta_idx.push(0u32);
        for &rule in &reactions {
            slot_delta.extend(flat.delta[rule].iter().map(|&(sp, d)| (sp as u32, d)));
            slot_delta_idx.push(slot_delta.len() as u32);
        }
        let plans: Vec<SlotPlan> = slot_reactants.iter().map(|rs| SlotPlan::of(rs)).collect();
        let dispatch = KernelDispatch::Auto;
        Ok(BatchedSsaEngine {
            model,
            width,
            first_instance,
            slot_delta_idx,
            slot_delta,
            slot_reactants,
            slot_rates,
            plans,
            observables,
            counts,
            props: vec![0.0; nr * width],
            prefix: vec![0.0; nr * width],
            a0: vec![-0.0; width],
            active: vec![0; width],
            first_active: vec![u32::MAX; width],
            times: vec![0.0; width],
            pending: vec![f64::NAN; width],
            rng: BatchRng::new(base_seed, first_instance, width),
            steps: vec![0; width],
            affects,
            dirty: vec![DIRTY_ALL; width],
            dispatch,
            kernel: dispatch.resolve(),
            seen: SlotSet::new(nr),
            draw_mask: vec![false; width],
            fire_mask: vec![false; width],
            raws: vec![0; width],
            raws_assign: vec![0; width],
            targets: vec![0.0; width],
            chosen: vec![0; width],
        })
    }

    /// Sets the kernel selection knob, re-resolving it against the CPU
    /// (builder-style; the default is [`KernelDispatch::Auto`]). Both
    /// kernel sets are bit-for-bit identical, so this may be changed at
    /// any point without perturbing the trajectory.
    #[must_use]
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self.kernel = dispatch.resolve();
        self
    }

    /// The configured kernel selection knob.
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Whether the knob resolved to the SIMD kernels on this CPU.
    pub fn simd_kernels_active(&self) -> bool {
        self.kernel == Kernel::Avx2
    }

    /// Checks that `model` can drive a batch at all (flat, top-level,
    /// mass-action), without building one — the engine-contract layer
    /// rejects bad models at run start through this.
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] naming the offending rule.
    pub fn check_model(model: &Model, deps: &ModelDeps) -> Result<(), FlatModelError> {
        FlatModel::compile(model, deps, BATCHED_ENGINE_NAME).map(|_| ())
    }

    /// The model driving this batch.
    pub fn model(&self) -> &Arc<Model> {
        &self.model
    }

    /// Number of replicas in the batch.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Scalar instance id of the batch's first replica.
    pub fn first_instance(&self) -> u64 {
        self.first_instance
    }

    /// Scalar instance id of replica `r`.
    pub fn instance(&self, r: usize) -> u64 {
        self.first_instance + r as u64
    }

    /// Lockstep simulation time of the batch (every replica agrees at
    /// quantum boundaries).
    pub fn time(&self) -> f64 {
        self.times[0]
    }

    /// Reactions fired by replica `r` so far.
    pub fn steps_replica(&self, r: usize) -> u64 {
        self.steps[r]
    }

    /// Evaluates the model's observables on replica `r` — identical to the
    /// scalar engine's `eval_observables` on the replica's term (inert
    /// initial-term compartments contribute their constant offset).
    pub fn observe_replica(&self, r: usize) -> Vec<u64> {
        self.observables
            .iter()
            .map(|o| {
                let dynamic = o
                    .state_index
                    .map(|sp| self.counts[sp * self.width + r] as u64)
                    .unwrap_or(0);
                dynamic + o.offset
            })
            .collect()
    }

    /// Total propensity `a0` of replica `r`, refreshing stale replicas
    /// first. Bit-identical to the scalar table's
    /// [`total`](crate::table::ReactionTable::total) — including the
    /// `-0.0` an exhausted replica reports.
    pub fn total_propensity(&mut self, r: usize) -> f64 {
        self.refresh();
        self.a0[r]
    }

    /// Phase 1: bring every dirty replica's propensity rows, prefix sums,
    /// `a0` and enabled bookkeeping up to date. A replica marked with a
    /// fired slot recomputes only that slot's incidence list (the
    /// dependency-graph update the scalar table does incrementally); a
    /// [`DIRTY_ALL`] replica recomputes every slot. Either way the
    /// propensity formula is the same pure function of the counts, so the
    /// incremental path is bit-identical to a full recompute.
    ///
    /// The prefix fold then rebuilds in one adds-only pass: it starts from
    /// `-0.0` and adds only enabled propensities — skipping, not adding,
    /// zeros — because `-0.0 + 0.0 == +0.0` would silently flip the
    /// exhausted-replica identity the scalar sum keeps.
    ///
    /// Both phases run in the resolved [`kernels`] implementation: the
    /// scalar reference or the AVX2 four-lane path, bit-for-bit identical.
    fn refresh(&mut self) {
        kernels::refresh(
            self.kernel,
            &SlotView {
                width: self.width,
                counts: &self.counts,
                rates: &self.slot_rates,
                plans: &self.plans,
                reactants: &self.slot_reactants,
            },
            &self.affects,
            &mut RefreshOut {
                props: &mut self.props,
                prefix: &mut self.prefix,
                a0: &mut self.a0,
                active: &mut self.active,
                first_active: &mut self.first_active,
                dirty: &mut self.dirty,
            },
            &mut self.seen,
        );
    }

    /// Applies the committed firing of `slot` on replica `r`: the net
    /// stoichiometry, the time advance, and the dirty mark driving the
    /// next incremental refresh. The selection and assignment draws have
    /// already been consumed by the lockstep draw phases.
    fn apply_fire(&mut self, r: usize, slot: usize, event_time: f64) {
        let lo = self.slot_delta_idx[slot] as usize;
        let hi = self.slot_delta_idx[slot + 1] as usize;
        for &(sp, d) in &self.slot_delta[lo..hi] {
            self.counts[sp as usize * self.width + r] += d;
        }
        self.times[r] = event_time;
        self.steps[r] += 1;
        // Firing requires fresh propensities, so the replica was clean;
        // remember the slot for the incremental refresh.
        debug_assert_eq!(self.dirty[r], CLEAN, "fired a stale replica");
        self.dirty[r] = slot as u32;
    }
}

impl BatchEngine for BatchedSsaEngine {
    /// Advances every replica to `t_goal` in lockstep rounds: phase 1
    /// refreshes the propensity matrix for replicas that fired, phase 2
    /// runs one scalar `run_sampled` iteration per live replica —
    /// waiting-time draw (kept pending across quantum boundaries), grid
    /// samples up to `min(t_next, t_goal)` observing the state in force,
    /// then the firing. A replica whose next event falls beyond the
    /// horizon parks at `t_goal` exactly, so the batch stays in lockstep.
    ///
    /// The per-replica draws of a round are batched by type — waiting
    /// time, selection, assignment — through the lockstep RNG kernel.
    /// Each replica still consumes its own stream in exactly the scalar
    /// order (waiting time, then selection iff multi-channel, then
    /// assignment), because streams never interleave across replicas and
    /// the three phases preserve that order within a round.
    fn advance_quantum_batch(
        &mut self,
        t_goal: f64,
        clocks: &mut [SampleClock],
    ) -> Vec<QuantumOutcome> {
        let w = self.width;
        assert_eq!(clocks.len(), w, "one sampling clock per replica");
        let mut outcomes: Vec<QuantumOutcome> = (0..w)
            .map(|_| QuantumOutcome {
                samples: Vec::new(),
                events: 0,
            })
            .collect();
        let mut live = vec![true; w];
        let mut remaining = w;
        while remaining > 0 {
            self.refresh();
            // Waiting-time draws for every live replica without a pending
            // event (absorbing replicas draw nothing).
            for (r, &alive) in live.iter().enumerate() {
                self.draw_mask[r] = alive && self.pending[r].is_nan() && self.a0[r] > 0.0;
            }
            self.rng
                .fill_masked(self.kernel, &self.draw_mask, &mut self.raws);
            for r in 0..w {
                if self.draw_mask[r] {
                    let u1 = kernels::range_from_raw(self.raws[r], f64::MIN_POSITIVE..1.0);
                    self.pending[r] = self.times[r] + (-u1.ln() / self.a0[r]);
                }
            }
            // Grid samples up to the event horizon, then park-or-fire.
            // The selection-draw mask rides along: only multi-channel
            // firing replicas consume a selection uniform (single-channel
            // selection is deterministic).
            for r in 0..w {
                self.fire_mask[r] = false;
                self.draw_mask[r] = false;
                if !live[r] {
                    continue;
                }
                let pending = self.pending[r];
                let t_next = if pending.is_nan() {
                    f64::INFINITY
                } else {
                    pending
                };
                let horizon = t_next.min(t_goal);
                while let Some(ts) = clocks[r].peek() {
                    if ts > horizon {
                        break;
                    }
                    let values = self.observe_replica(r);
                    outcomes[r].samples.push((ts, values));
                    clocks[r].advance();
                }
                if t_next > t_goal {
                    self.times[r] = t_goal;
                    live[r] = false;
                    remaining -= 1;
                } else {
                    self.fire_mask[r] = true;
                    self.draw_mask[r] = self.active[r] > 1;
                }
            }
            // Selection draws fused with the assignment draws every firing
            // consumes (flat rules have a trivial assignment, but the
            // scalar engine consumes the draw, so the stream positions
            // must stay aligned). Each lane still draws
            // selection-then-assignment, the scalar order.
            self.rng.fill_masked2(
                self.kernel,
                &self.draw_mask,
                &mut self.raws,
                &self.fire_mask,
                &mut self.raws_assign,
            );
            for r in 0..w {
                if self.draw_mask[r] {
                    self.targets[r] = kernels::range_from_raw(self.raws[r], 0.0..self.a0[r]);
                }
            }
            // Selection kernel: the first slot whose prefix sum exceeds
            // the target, per multi-channel firing lane.
            kernels::select_masked(
                self.kernel,
                &self.prefix,
                &self.props,
                w,
                &self.draw_mask,
                &self.targets,
                &mut self.chosen,
            );
            for (r, outcome) in outcomes.iter_mut().enumerate() {
                if !self.fire_mask[r] {
                    continue;
                }
                let slot = if self.active[r] == 1 {
                    self.first_active[r] as usize
                } else {
                    self.chosen[r] as usize
                };
                let event_time = self.pending[r];
                debug_assert!(
                    !event_time.is_nan(),
                    "firing replica without a pending event"
                );
                self.pending[r] = f64::NAN;
                self.apply_fire(r, slot, event_time);
                outcome.events += 1;
            }
        }
        debug_assert!(self.times.iter().all(|&t| t == t_goal), "lockstep broken");
        outcomes
    }

    fn width(&self) -> usize {
        BatchedSsaEngine::width(self)
    }

    fn first_instance(&self) -> u64 {
        BatchedSsaEngine::first_instance(self)
    }

    fn time(&self) -> f64 {
        BatchedSsaEngine::time(self)
    }

    fn observe_replica(&self, r: usize) -> Vec<u64> {
        BatchedSsaEngine::observe_replica(self, r)
    }

    fn events_replica(&self, r: usize) -> u64 {
        self.steps_replica(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::SsaEngine;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn schlogl_like() -> Arc<Model> {
        let mut m = Model::new("s");
        let x = m.species("X");
        m.rule("auto")
            .consumes("X", 2)
            .produces("X", 3)
            .rate(0.03)
            .build()
            .unwrap();
        m.rule("tri")
            .consumes("X", 3)
            .produces("X", 2)
            .rate(1e-4)
            .build()
            .unwrap();
        m.rule("in").produces("X", 1).rate(200.0).build().unwrap();
        m.rule("out").consumes("X", 1).rate(3.5).build().unwrap();
        m.initial.add_atoms(x, 250);
        m.observe("X", x);
        Arc::new(m)
    }

    /// Drives batch and scalar engines through the same irregular quantum
    /// schedule and asserts sample streams, times and step counts agree
    /// exactly.
    fn assert_batch_matches_scalar(
        model: Arc<Model>,
        base_seed: u64,
        first: u64,
        width: usize,
        t_end: f64,
        period: f64,
    ) {
        let quanta: Vec<f64> = [0.17, 0.4, 0.61, 0.87, 1.0]
            .iter()
            .map(|f| f * t_end)
            .collect();
        let mut batch = BatchedSsaEngine::new(Arc::clone(&model), base_seed, first, width).unwrap();
        let mut clocks: Vec<SampleClock> =
            (0..width).map(|_| SampleClock::new(0.0, period)).collect();
        let mut batch_samples: Vec<Vec<(f64, Vec<u64>)>> = vec![Vec::new(); width];
        for &q in &quanta {
            let outcomes = batch.advance_quantum_batch(q, &mut clocks);
            for (r, o) in outcomes.into_iter().enumerate() {
                batch_samples[r].extend(o.samples);
            }
        }
        for (r, replica_samples) in batch_samples.iter().enumerate() {
            let mut scalar = SsaEngine::new(Arc::clone(&model), base_seed, first + r as u64);
            let mut clock = SampleClock::new(0.0, period);
            let mut expected = Vec::new();
            for &q in &quanta {
                scalar.run_sampled(q, &mut clock, |t, v| expected.push((t, v.to_vec())));
            }
            assert_eq!(replica_samples, &expected, "replica {r} samples diverged");
            assert_eq!(batch.steps_replica(r), scalar.steps(), "replica {r} steps");
            assert_eq!(batch.observe_replica(r), scalar.observe(), "replica {r}");
            assert_eq!(batch.time(), scalar.time(), "replica {r} time");
        }
    }

    #[test]
    fn single_channel_batch_matches_scalar_bit_for_bit() {
        assert_batch_matches_scalar(decay_model(40, 1.0), 42, 0, 5, 3.0, 0.25);
    }

    #[test]
    fn multi_channel_batch_matches_scalar_bit_for_bit() {
        assert_batch_matches_scalar(schlogl_like(), 2024, 0, 6, 1.0, 0.1);
    }

    #[test]
    fn nonzero_first_instance_matches_the_shifted_scalar_instances() {
        assert_batch_matches_scalar(schlogl_like(), 7, 13, 3, 0.5, 0.1);
    }

    #[test]
    fn exhausted_replica_reports_negative_zero_a0() {
        let mut batch = BatchedSsaEngine::new(decay_model(3, 5.0), 1, 0, 2).unwrap();
        let mut clocks = vec![SampleClock::new(0.0, 10.0); 2];
        batch.advance_quantum_batch(100.0, &mut clocks);
        for r in 0..2 {
            let a0 = batch.total_propensity(r);
            assert_eq!(a0.to_bits(), (-0.0f64).to_bits(), "replica {r}: {a0}");
            assert_eq!(batch.observe_replica(r), vec![0]);
        }
    }

    #[test]
    fn rejects_non_flat_models_naming_rule_and_engine() {
        let mut m = Model::new("comp");
        m.rule("transport")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let a = m.species("A");
        m.observe("A", a);
        let err = BatchedSsaEngine::new(Arc::new(m), 1, 0, 4).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`transport`"), "{msg}");
        assert!(msg.contains(BATCHED_ENGINE_NAME), "{msg}");
    }

    #[test]
    fn inert_compartments_contribute_constant_observable_offsets() {
        // Flat rules leave initial-term compartments untouched; the batch
        // must still report the same Everywhere counts as the scalar
        // engine, which evaluates observables on the full term.
        let mut m = Model::new("inert");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
        m.initial.add_atoms(a, 15);
        let cell = m.label("cell");
        m.initial.add_compartment(cwc::term::Compartment::new(
            cell,
            cwc::multiset::Multiset::new(),
            cwc::term::Term::from_atoms(cwc::multiset::Multiset::from([(a, 4)])),
        ));
        m.observe("A", a);
        let model = Arc::new(m);
        assert_batch_matches_scalar(model, 11, 0, 3, 2.0, 0.5);
    }

    #[test]
    fn check_model_accepts_flat_rejects_compartment_rules() {
        let flat = decay_model(1, 1.0);
        let deps = ModelDeps::compile(&flat);
        assert!(BatchedSsaEngine::check_model(&flat, &deps).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_width_batch_panics() {
        let _ = BatchedSsaEngine::new(decay_model(1, 1.0), 1, 0, 0);
    }
}
