//! The persistent reaction table: every `(site, rule)` propensity of the
//! current term, kept up to date *incrementally*.
//!
//! The naive CWC step enumerates the term's sites, re-runs tree matching
//! for every rule at every site and collects the enabled reactions into a
//! fresh `Vec` — per step. This module replaces that with a table built
//! once ([`ReactionTable::build`]) and then *updated* after each firing
//! ([`ReactionTable::post_fire`]): only the propensities the fired rule
//! could have changed — per the compiled dependency graph of
//! [`crate::deps`] — are re-matched. Firings of *structural* rules
//! (compartment creation/destruction/dissolution) rebuild the table, since
//! they change the site tree itself.
//!
//! ## Bit-for-bit compatibility
//!
//! The table is a drop-in replacement for the naive enumeration, preserving
//! the exact floating-point behaviour of the engines that consume it:
//!
//! - entries are ordered site-walk-order × rule-index-order — the same
//!   order the naive walk produced;
//! - a per-slot *prefix-sum cache* holds the naive scan's accumulator at
//!   every slot (enabled entries folded in order from the `-0.0`
//!   identity), refreshed from the lowest changed slot after each update;
//! - [`total`](ReactionTable::total) reads the cache's last element —
//!   exactly the naive `a0` fold — in O(1), so the waiting-time divisor
//!   is bit-identical;
//! - [`select`](ReactionTable::select) binary-searches the cache with the
//!   scan's own cumulative comparison in O(log n), falling back to the
//!   last enabled entry on floating-point shortfall, so every selection
//!   is the entry the scan would have chosen.
//!
//! Sites are addressed by dense [`SiteId`]s from the embedded
//! [`SiteRegistry`] — the hot loop never clones a `Path`.

use cwc::matching::{match_count_with, MatchScratch};
use cwc::model::Model;
use cwc::term::{SiteId, SiteRegistry, Term};

use crate::deps::ModelDeps;

/// One `(site, rule)` slot. `propensity == 0.0` means "not currently
/// enabled"; the slot stays in the table so updates are in-place.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    site: SiteId,
    rule: u32,
    propensity: f64,
}

/// Persistent propensity table over a term's sites (see module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReactionTable {
    registry: SiteRegistry,
    /// `entries[site_start[s] .. site_start[s + 1]]` are site `s`'s slots.
    site_start: Vec<u32>,
    entries: Vec<Entry>,
    /// Number of entries with positive propensity.
    active: usize,
    /// `prefix[i]` is the cumulative-sum fold of the enabled propensities
    /// over `entries[..= i]` — the exact accumulator value the naive
    /// linear scan holds after visiting entry `i` (identity `-0.0`,
    /// disabled slots skipped, so a disabled slot repeats the previous
    /// value). Rebuilt from the lowest changed slot after every mutation;
    /// [`total`](ReactionTable::total) reads the last element in O(1) and
    /// [`select`](ReactionTable::select) binary-searches it in O(log n),
    /// both bit-identical to the folds they replace.
    prefix: Vec<f64>,
}

impl ReactionTable {
    /// Rebuilds the whole table from `term`: re-interns the sites and
    /// re-matches every rule everywhere. Needed initially and after any
    /// structural rewrite; [`post_fire`](ReactionTable::post_fire) calls
    /// it automatically for structural rules.
    pub fn build(&mut self, model: &Model, term: &Term, scratch: &mut MatchScratch) {
        self.registry.rebuild(term);
        self.entries.clear();
        self.site_start.clear();
        self.active = 0;
        for index in 0..self.registry.len() {
            let id = SiteId::from_index(index);
            self.site_start.push(self.entries.len() as u32);
            let label = self.registry.label(id);
            let site_term = term.site(self.registry.path(id)).expect("registry path");
            for (ri, rule) in model.rules.iter().enumerate() {
                if rule.site != label || rule.rate == 0.0 {
                    continue;
                }
                let p = propensity_of(model, ri, site_term, scratch);
                if p > 0.0 {
                    self.active += 1;
                }
                self.entries.push(Entry {
                    site: id,
                    rule: ri as u32,
                    propensity: p,
                });
            }
        }
        self.site_start.push(self.entries.len() as u32);
        self.rebuild_prefix_from(0);
    }

    /// Replays the cumulative fold over `entries[from ..]`, resuming from
    /// the committed accumulator at `from` (bit-exact: `prefix[from - 1]`
    /// *is* the scan's accumulator there, so continuing the fold from it
    /// reproduces every later value bit-for-bit).
    fn rebuild_prefix_from(&mut self, from: usize) {
        self.prefix.resize(self.entries.len(), 0.0);
        let mut acc = if from == 0 {
            -0.0
        } else {
            self.prefix[from - 1]
        };
        for (p, e) in self.prefix[from..].iter_mut().zip(&self.entries[from..]) {
            if e.propensity > 0.0 {
                acc += e.propensity;
            }
            *p = acc;
        }
    }

    /// Updates the table after `rule` fired at `site` with the given
    /// compartment `assignment`: re-matches exactly the `(site, rule)`
    /// pairs the dependency graph marks as affected, or rebuilds wholesale
    /// for structural rules.
    #[allow(clippy::too_many_arguments)]
    pub fn post_fire(
        &mut self,
        model: &Model,
        deps: &ModelDeps,
        term: &Term,
        rule: usize,
        site: SiteId,
        assignment: &[usize],
        scratch: &mut MatchScratch,
    ) {
        if deps.is_structural(rule) {
            self.build(model, term, scratch);
            return;
        }
        let mut stale_from = usize::MAX;
        let mut stale = |i: Option<usize>| {
            if let Some(i) = i {
                stale_from = stale_from.min(i);
            }
        };
        for &q in deps.same_site_affected(rule) {
            stale(self.rematch(model, term, site, q, scratch));
        }
        let rd = deps.rule(rule);
        for (k, kept) in rd.kept.iter().enumerate() {
            let affected = deps.child_affected(rule, k);
            if affected.is_empty() {
                continue;
            }
            let child = self
                .registry
                .child(site, assignment[kept.pattern])
                .expect("kept compartment still exists");
            for &q in affected {
                stale(self.rematch(model, term, child, q, scratch));
            }
        }
        let parents = deps.parent_affected(rule);
        if !parents.is_empty() {
            if let Some(parent) = self.registry.parent(site) {
                let parent_label = self.registry.label(parent);
                for &q in parents {
                    if model.rules[q as usize].site == parent_label {
                        stale(self.rematch(model, term, parent, q, scratch));
                    }
                }
            }
        }
        if stale_from != usize::MAX {
            self.rebuild_prefix_from(stale_from);
        }
    }

    /// Recomputes one `(site, rule)` slot in place (no-op when the slot is
    /// absent, e.g. a parent candidate whose label does not host the rule).
    /// Returns the slot index when one was updated, so the caller can
    /// refresh the prefix cache from the lowest changed slot.
    fn rematch(
        &mut self,
        model: &Model,
        term: &Term,
        site: SiteId,
        rule: u32,
        scratch: &mut MatchScratch,
    ) -> Option<usize> {
        let start = self.site_start[site.index()] as usize;
        let end = self.site_start[site.index() + 1] as usize;
        for i in start..end {
            if self.entries[i].rule == rule {
                let site_term = term.site(self.registry.path(site)).expect("registry path");
                let p = propensity_of(model, rule as usize, site_term, scratch);
                let was_active = self.entries[i].propensity > 0.0;
                self.entries[i].propensity = p;
                self.active = self.active + (p > 0.0) as usize - was_active as usize;
                return Some(i);
            }
        }
        None
    }

    /// Total propensity `a0`: the enabled slots summed in table order —
    /// the exact `Iterator::sum` the naive enumeration performed over its
    /// reaction list, identity (`-0.0`) included, so the result is
    /// bit-identical (see module docs). O(1): the prefix cache's last
    /// element *is* that fold.
    pub fn total(&self) -> f64 {
        self.prefix.last().copied().unwrap_or(-0.0)
    }

    /// Number of currently enabled reactions (positive propensity).
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Entry index of the first enabled reaction, if any.
    pub fn first_active(&self) -> Option<usize> {
        self.entries.iter().position(|e| e.propensity > 0.0)
    }

    /// Direct-method selection: the first enabled entry whose cumulative
    /// propensity exceeds `target`, in table order; the last enabled
    /// entry on floating-point shortfall. O(log n) over the prefix cache,
    /// same answers as the linear scan it replaced: `prefix[i]` is the
    /// scan's accumulator after entry `i`, and the partition predicate is
    /// the scan's `target < acc` comparison verbatim (so a NaN target
    /// falls through to the shortfall backstop exactly like the scan
    /// did).
    ///
    /// # Panics
    ///
    /// Panics when no reaction is enabled (callers check `a0 > 0` first).
    pub fn select(&self, target: f64) -> usize {
        // `!(target < acc)` is *not* `acc <= target` when the target is
        // NaN: the negated comparison keeps every predicate true, sending
        // a NaN target through the shortfall backstop exactly like the
        // scan — so spell it the scan's way despite the lint.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let crossing = self.prefix.partition_point(|&acc| !(target < acc));
        // The crossing slot is enabled whenever `target >= 0` (a disabled
        // slot repeats the previous prefix value, so it cannot be the
        // *first* crossing); the forward scan only moves for negative
        // targets, where the linear scan answered "first enabled entry".
        for (i, e) in self.entries.iter().enumerate().skip(crossing) {
            if e.propensity > 0.0 {
                return i;
            }
        }
        // Shortfall (target >= total): the last enabled entry.
        self.entries
            .iter()
            .rposition(|e| e.propensity > 0.0)
            .expect("select called with no enabled reaction")
    }

    /// The `(site, rule)` key of entry `i`.
    pub fn site_rule(&self, i: usize) -> (SiteId, usize) {
        let e = &self.entries[i];
        (e.site, e.rule as usize)
    }

    /// The propensity stored in entry `i`.
    pub fn propensity(&self, i: usize) -> f64 {
        self.entries[i].propensity
    }

    /// Iterates `(entry index, propensity)` over enabled entries in table
    /// order — the first-reaction method's draw order.
    pub fn active_entries(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.propensity > 0.0)
            .map(|(i, e)| (i, e.propensity))
    }

    /// Total number of slots (enabled or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no slots (unbuilt, or a rule-less model).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The site registry backing this table.
    pub fn registry(&self) -> &SiteRegistry {
        &self.registry
    }
}

/// Propensity of `rule` at `site_term`: `law(rate, h, atoms)` when the
/// tree-match count `h` is positive, else exactly `0.0`.
fn propensity_of(model: &Model, rule: usize, site_term: &Term, scratch: &mut MatchScratch) -> f64 {
    let rule = &model.rules[rule];
    let h = match_count_with(site_term, &rule.lhs, scratch);
    if h == 0 {
        return 0.0;
    }
    let p = rule.law.propensity(rule.rate, h, &site_term.atoms);
    if p > 0.0 {
        p
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::ModelDeps;
    use cwc::model::Model;
    use cwc::term::Path;

    fn build_all(model: &Model) -> (ReactionTable, ModelDeps, Term, MatchScratch) {
        let deps = ModelDeps::compile(model);
        let term = model.initial.clone();
        let mut scratch = MatchScratch::default();
        let mut table = ReactionTable::default();
        table.build(model, &term, &mut scratch);
        (table, deps, term, scratch)
    }

    /// The oracle: the naive full enumeration, as `(site path, rule,
    /// propensity)` of enabled reactions in walk × rule order.
    fn naive(model: &Model, term: &Term) -> Vec<(Path, usize, f64)> {
        let mut out = Vec::new();
        term.walk_sites(&mut |path, label, site_term| {
            for (ri, rule) in model.rules.iter().enumerate() {
                if rule.site != label || rule.rate == 0.0 {
                    continue;
                }
                let h = cwc::matching::match_count(site_term, &rule.lhs);
                if h > 0 {
                    let p = rule.law.propensity(rule.rate, h, &site_term.atoms);
                    if p > 0.0 {
                        out.push((path.clone(), ri, p));
                    }
                }
            }
        });
        out
    }

    fn table_view(table: &ReactionTable) -> Vec<(Path, usize, f64)> {
        table
            .active_entries()
            .map(|(i, p)| {
                let (site, rule) = table.site_rule(i);
                (table.registry().path(site).clone(), rule, p)
            })
            .collect()
    }

    fn transport_model() -> Model {
        let mut m = Model::new("transport");
        let a = m.species("A");
        m.rule("in")
            .consumes("A", 1)
            .matches_comp("cell", &[], &[])
            .keeps(0, &[], &[("Ain", 1)])
            .rate(1.0)
            .build()
            .unwrap();
        m.rule("out")
            .matches_comp("cell", &[], &[("Ain", 1)])
            .keeps(0, &[], &[])
            .produces("A", 1)
            .rate(0.5)
            .build()
            .unwrap();
        m.rule("decay")
            .at("cell")
            .consumes("Ain", 1)
            .rate(0.25)
            .build()
            .unwrap();
        m.initial.add_atoms(a, 4);
        m.initial.add_compartment(cwc::term::Compartment::new(
            m.alphabet.find_label("cell").unwrap(),
            cwc::multiset::Multiset::new(),
            Term::new(),
        ));
        m
    }

    #[test]
    fn build_matches_naive_enumeration() {
        let m = transport_model();
        let (table, _, term, _) = build_all(&m);
        assert_eq!(table_view(&table), naive(&m, &term));
        assert_eq!(table.active_count(), 1); // only "in" enabled initially
        assert_eq!(table.len(), 3); // in + out at top-ish… (in, out at root; decay at cell)
    }

    #[test]
    fn post_fire_keeps_table_equal_to_recompute() {
        let m = transport_model();
        let (mut table, deps, mut term, mut scratch) = build_all(&m);
        // Fire "in" at the root: A moves into the cell.
        let root = SiteId::ROOT;
        cwc::matching::apply_at(&mut term, &m.rules[0], &Path::root(), &[0]).unwrap();
        table.post_fire(&m, &deps, &term, 0, root, &[0], &mut scratch);
        assert_eq!(table_view(&table), naive(&m, &term));
        assert_eq!(table.active_count(), 3); // in, out, decay all enabled

        // Fire "decay" inside the cell.
        let cell = table.registry().child(root, 0).unwrap();
        let cell_path = table.registry().path(cell).clone();
        cwc::matching::apply_at(&mut term, &m.rules[2], &cell_path, &[]).unwrap();
        table.post_fire(&m, &deps, &term, 2, cell, &[], &mut scratch);
        assert_eq!(table_view(&table), naive(&m, &term));

        // Fire "in" three more times, then "out" until the cell drains.
        for _ in 0..3 {
            cwc::matching::apply_at(&mut term, &m.rules[0], &Path::root(), &[0]).unwrap();
            table.post_fire(&m, &deps, &term, 0, root, &[0], &mut scratch);
            assert_eq!(table_view(&table), naive(&m, &term));
        }
        while table
            .active_entries()
            .any(|(i, _)| table.site_rule(i).1 == 1)
        {
            cwc::matching::apply_at(&mut term, &m.rules[1], &Path::root(), &[0]).unwrap();
            table.post_fire(&m, &deps, &term, 1, root, &[0], &mut scratch);
            assert_eq!(table_view(&table), naive(&m, &term));
        }
    }

    #[test]
    fn structural_fire_rebuilds() {
        let mut m = Model::new("s");
        let b = m.species("B");
        m.rule("make")
            .consumes("B", 1)
            .creates_comp("cell", &[], &[("C", 1)])
            .rate(1.0)
            .build()
            .unwrap();
        m.rule("inner")
            .at("cell")
            .consumes("C", 1)
            .rate(1.0)
            .build()
            .unwrap();
        m.initial.add_atoms(b, 2);
        let (mut table, deps, mut term, mut scratch) = build_all(&m);
        assert_eq!(table.registry().len(), 1);
        cwc::matching::apply_at(&mut term, &m.rules[0], &Path::root(), &[]).unwrap();
        table.post_fire(&m, &deps, &term, 0, SiteId::ROOT, &[], &mut scratch);
        assert_eq!(table.registry().len(), 2); // registry re-interned
        assert_eq!(table_view(&table), naive(&m, &term));
    }

    #[test]
    fn total_and_select_follow_table_order() {
        let mut m = Model::new("two");
        let a = m.species("A");
        m.rule("r0").consumes("A", 1).rate(2.0).build().unwrap();
        m.rule("r1").consumes("A", 1).rate(3.0).build().unwrap();
        m.initial.add_atoms(a, 2);
        let (table, _, _, _) = build_all(&m);
        assert_eq!(table.total(), 4.0 + 6.0);
        assert_eq!(table.active_count(), 2);
        assert_eq!(table.first_active(), Some(0));
        assert_eq!(table.select(0.0), 0);
        assert_eq!(table.select(3.999), 0);
        assert_eq!(table.select(4.0), 1);
        assert_eq!(table.select(1e9), 1); // shortfall → last enabled
        assert_eq!(table.site_rule(1), (SiteId::ROOT, 1));
        assert!(table.propensity(1) == 6.0 && !table.is_empty());
    }

    /// The linear scan `select`/`total` replaced, verbatim.
    fn scan_select(table: &ReactionTable) -> impl Fn(f64) -> usize + '_ {
        |target| {
            let mut acc = -0.0;
            let mut last_active = None;
            for i in 0..table.len() {
                let p = table.propensity(i);
                if p <= 0.0 {
                    continue;
                }
                last_active = Some(i);
                acc += p;
                if target < acc {
                    return i;
                }
            }
            last_active.expect("select called with no enabled reaction")
        }
    }

    #[test]
    fn prefix_select_matches_the_linear_scan_through_incremental_updates() {
        // Drive the transport model through a mixed firing sequence and,
        // at every table state, sweep selection targets across the whole
        // [0, a0) range plus the shortfall edge: binary search over the
        // prefix cache must answer exactly like the scan, including after
        // partial (incremental) prefix rebuilds.
        let m = transport_model();
        let (mut table, deps, mut term, mut scratch) = build_all(&m);
        let root = SiteId::ROOT;
        let check_all_targets = |table: &ReactionTable| {
            let a0: f64 = (0..table.len())
                .map(|i| table.propensity(i))
                .filter(|&p| p > 0.0)
                .sum();
            assert_eq!(table.total().to_bits(), a0.to_bits());
            let scan = scan_select(table);
            for k in 0..64 {
                let target = a0 * k as f64 / 64.0;
                assert_eq!(table.select(target), scan(target), "target {target}");
            }
            for target in [a0, a0 * (1.0 + 1e-9), f64::MAX] {
                assert_eq!(table.select(target), scan(target), "shortfall {target}");
            }
        };
        check_all_targets(&table);
        for (rule, assignment) in [(0usize, &[0][..]), (0, &[0]), (1, &[0]), (0, &[0])] {
            cwc::matching::apply_at(&mut term, &m.rules[rule], &Path::root(), assignment).unwrap();
            table.post_fire(&m, &deps, &term, rule, root, assignment, &mut scratch);
            check_all_targets(&table);
        }
    }
}
