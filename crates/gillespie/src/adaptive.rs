//! Adaptive tau-leaping: Cao–Gillespie–Petzold step-size selection with
//! critical-reaction partitioning and an exact-SSA fallback.
//!
//! Fixed-step leaping ([`crate::tau_leap`]) makes the user pick τ; pick it
//! too large and the approximation degrades (or the leap thrashes in
//! negativity halving), too small and every leap fires less than one
//! reaction and the method is slower than exact SSA. This engine picks τ
//! from the *state* instead, the design StochKit popularised (Cao,
//! Gillespie & Petzold, "Efficient step size selection for the tau-leaping
//! simulation method", J. Chem. Phys. 124, 2006):
//!
//! 1. **Critical reactions.** A reaction within [`N_CRITICAL`] firings of
//!    exhausting one of its reactants is *critical*: it never leaps.
//!    Critical reactions fire one at a time, exactly, via an exponential
//!    clock over their summed propensity — so near-exhausted species are
//!    handled at SSA resolution while the abundant bulk still leaps.
//! 2. **The CGP bound.** Over the non-critical reactions, τ is the largest
//!    step for which the expected relative change of every propensity
//!    stays within the `epsilon` knob (per-species mean/variance bounds
//!    from the compiled [`ModelDeps`] stoichiometry
//!    — the `cgp_tau` bound of [`crate::flat`]).
//! 3. **SSA fallback.** When the bound collapses below
//!    [`SSA_FALLBACK_MULT`] expected firings' worth of time (τ < mult/a0),
//!    leaping cannot beat exact stepping, so the engine takes one exact
//!    direct-method step on the species-count vector instead.
//!
//! ## Quantum-exact execution
//!
//! Identical contract to the fixed-step engine: every transition (leap,
//! critical firing or fallback step) is drawn from the committed state
//! only, held *pending* when it ends beyond the quantum horizon, and
//! committed in a later quantum — never re-drawn or truncated. The RNG
//! draw discipline per transition is documented in [`crate::rng`].

use std::sync::Arc;

use cwc::model::Model;
use cwc::species::Species;
use rand::Rng;

use crate::deps::ModelDeps;
use crate::flat::{poisson, CgpScratch, FlatModel, FlatModelError};
use crate::rng::{sim_rng, SimRng};
use crate::ssa::SampleClock;

/// Default relative-propensity-change bound ε (Cao et al. recommend
/// 0.03–0.05).
pub const DEFAULT_EPSILON: f64 = 0.03;

/// A reaction within this many firings of exhausting a reactant is
/// *critical* and fires exactly, never inside a Poisson leap.
pub const N_CRITICAL: u64 = 10;

/// When the CGP bound drops below `SSA_FALLBACK_MULT / a0` — fewer than
/// this many expected firings per leap — the engine takes an exact step
/// instead of leaping.
pub const SSA_FALLBACK_MULT: f64 = 10.0;

/// Models with at most this many rules default to *full* propensity
/// recomputation per draw instead of the incidence-list cache refresh.
///
/// The cache turns the per-commit refresh from O(rules) into
/// O(affected), which pays off only when the gap is wide: on
/// `BENCH_adaptive_tau.json` the incidence path is ~1.5x faster on the
/// 300-rule `wide_flat_cycle` but ~5% *slower* on the 4-rule Schlögl and
/// 3-rule Lotka–Volterra models, where walking the incidence lists costs
/// more than recomputing everything with a tight linear sweep. Results
/// are bit-identical on both sides, so the crossover is purely a
/// throughput decision; [`AdaptiveTauEngine::with_full_recompute`] and
/// [`AdaptiveTauEngine::with_incidence_cache`] override it per engine.
pub const FULL_RECOMPUTE_MAX_RULES: usize = 32;

/// A drawn-but-not-yet-committed transition: one leap, one critical
/// firing riding on a truncated leap, or one exact fallback step.
#[derive(Debug, Clone)]
struct PendingTransition {
    /// Candidate state after the transition.
    state: Vec<i64>,
    /// Absolute time at which the transition commits.
    end: f64,
    /// Firings the transition applies when committed.
    firings: u64,
    /// True when this transition was an exact (fallback or critical)
    /// single firing rather than a Poisson leap.
    exact: bool,
    /// Species indices the transition changed (deduped): committing it
    /// refreshes exactly the propensities of the rules incident to
    /// these, making the per-transition recompute O(affected) instead of
    /// O(all rules).
    changed: Vec<usize>,
}

/// Flat-model approximate simulator with adaptive (CGP) step-size
/// selection.
#[derive(Debug, Clone)]
pub struct AdaptiveTauEngine {
    model: Arc<Model>,
    flat: FlatModel,
    /// `state[i]` = copies of `flat.species[i]` (last *committed* state).
    state: Vec<i64>,
    /// Time of the last committed transition boundary.
    committed: f64,
    /// Reported simulation clock (advances to quantum horizons; always
    /// ≥ `committed`).
    time: f64,
    /// The CGP relative-change bound ε.
    epsilon: f64,
    /// Transition drawn past a quantum horizon, held until the horizon
    /// passes its end.
    pending: Option<PendingTransition>,
    rng: SimRng,
    instance: u64,
    /// Committed Poisson leaps.
    leaps: u64,
    /// Committed exact transitions (critical firings + SSA fallbacks).
    exact_steps: u64,
    firings: u64,
    /// Reusable per-transition buffers (the fallback regime takes one
    /// transition per firing; these keep that path allocation-light).
    /// `props_buf` doubles as the persistent propensity cache: values
    /// survive across transitions and commits refresh only the rules
    /// incident to changed species (`FlatModel::incidence`).
    props_buf: Vec<f64>,
    crit_buf: Vec<bool>,
    cgp_scratch: CgpScratch,
    /// True once `props_buf` holds every rule's propensity for the
    /// committed state.
    cache_ready: bool,
    /// Diagnostic knob: recompute every propensity on every draw (the
    /// pre-incidence behaviour). Bit-identical results; exists so the
    /// `adaptive_tau` bench can measure what the incidence list buys.
    full_recompute: bool,
    /// Per-species "already marked changed" bitmap, un-marked after each
    /// draw so steady state does no O(species) clearing.
    seen_buf: Vec<bool>,
}

impl AdaptiveTauEngine {
    /// Builds an adaptive leaping engine from a flat model, compiling its
    /// stoichiometry locally.
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] when any rule uses compartments, applies
    /// below the top level or has a non-mass-action law.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Result<Self, FlatModelError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_deps(model, deps, base_seed, instance)
    }

    /// Like [`AdaptiveTauEngine::new`], reusing an already-compiled
    /// [`ModelDeps`] (one compilation per run, shared across instances).
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] when the model is not flat mass-action.
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Result<Self, FlatModelError> {
        let flat = FlatModel::compile(&model, &deps, "adaptive tau-leaping")?;
        let state = flat.initial_state(&model);
        let species_len = flat.species.len();
        // Rule-count heuristic (see FULL_RECOMPUTE_MAX_RULES): small
        // models recompute everything per draw, large ones use the
        // incidence cache. Either way the trajectory is bit-identical.
        let full_recompute = flat.rates.len() <= FULL_RECOMPUTE_MAX_RULES;
        Ok(AdaptiveTauEngine {
            model,
            flat,
            state,
            committed: 0.0,
            time: 0.0,
            epsilon: DEFAULT_EPSILON,
            pending: None,
            rng: sim_rng(base_seed, instance),
            instance,
            leaps: 0,
            exact_steps: 0,
            firings: 0,
            props_buf: Vec::new(),
            crit_buf: Vec::new(),
            cgp_scratch: CgpScratch::default(),
            cache_ready: false,
            full_recompute,
            seen_buf: vec![false; species_len],
        })
    }

    /// Disables the incidence-list propensity cache: every draw
    /// recomputes all propensities from the state vector. Results are
    /// bit-identical either way — this overrides the rule-count
    /// heuristic (see [`FULL_RECOMPUTE_MAX_RULES`]) so benchmarks can
    /// measure the cache.
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self.cache_ready = false;
        self
    }

    /// Forces the incidence-list propensity cache on, overriding the
    /// rule-count heuristic that defaults small models (at most
    /// [`FULL_RECOMPUTE_MAX_RULES`] rules) to full recomputation.
    /// Results are bit-identical either way.
    pub fn with_incidence_cache(mut self) -> Self {
        self.full_recompute = false;
        self.cache_ready = false;
        self
    }

    /// True when every draw recomputes all propensities (heuristic
    /// default for small models, or forced via
    /// [`AdaptiveTauEngine::with_full_recompute`]); false when commits
    /// refresh the incidence-list cache instead.
    pub fn full_recompute(&self) -> bool {
        self.full_recompute
    }

    /// Sets the CGP relative-change bound ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1)"
        );
        self.epsilon = epsilon;
        self
    }

    /// The CGP relative-change bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        &self.model
    }

    /// Committed Poisson leaps so far.
    pub fn leaps(&self) -> u64 {
        self.leaps
    }

    /// Committed exact transitions so far (critical firings and SSA
    /// fallback steps) — the partitioning diagnostic.
    pub fn exact_steps(&self) -> u64 {
        self.exact_steps
    }

    /// Total reaction firings applied.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Current copy number of `species`.
    pub fn count(&self, species: Species) -> u64 {
        self.flat.count(&self.state, species)
    }

    /// The committed per-species state vector (ascending interned
    /// species order), for invariant tests.
    pub fn counts(&self) -> &[i64] {
        &self.state
    }

    /// Evaluates the model's observables on the committed state.
    pub fn observe(&self) -> Vec<u64> {
        self.flat.observe(&self.model, &self.state)
    }

    /// True when firing rule `r` could exhaust a reactant within
    /// [`N_CRITICAL`] firings from `state`.
    fn is_critical(&self, r: usize) -> bool {
        self.flat.delta[r].iter().any(|&(i, d)| {
            if d >= 0 {
                return false;
            }
            (self.state[i] / -d) < N_CRITICAL as i64
        })
    }

    /// One exact direct-method step on the count vector (the SSA
    /// fallback). Draw discipline: one waiting-time uniform, one
    /// selection uniform in `[0, a0)` (always consumed, even
    /// single-channel — see [`crate::rng`]).
    fn draw_exact_step(&mut self, props: &[f64], a0: f64) -> PendingTransition {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let dt = -u1.ln() / a0;
        let target = self.rng.gen_range(0.0..a0);
        let mut acc = 0.0;
        let mut chosen = props.len() - 1;
        for (r, &a) in props.iter().enumerate() {
            acc += a;
            if target < acc {
                chosen = r;
                break;
            }
        }
        let mut state = self.state.clone();
        let mut changed = Vec::with_capacity(self.flat.delta[chosen].len());
        for &(i, d) in &self.flat.delta[chosen] {
            state[i] += d;
            changed.push(i);
        }
        PendingTransition {
            state,
            end: self.committed + dt,
            firings: 1,
            exact: true,
            changed,
        }
    }

    /// Draws one transition from the committed state without committing
    /// it. Returns `None` when the state is absorbing. (Thin shell that
    /// loans out the reusable buffers.)
    fn draw_transition(&mut self) -> Option<PendingTransition> {
        let mut props = std::mem::take(&mut self.props_buf);
        let mut critical = std::mem::take(&mut self.crit_buf);
        let out = self.draw_transition_with(&mut props, &mut critical);
        self.props_buf = props;
        self.crit_buf = critical;
        out
    }

    fn draw_transition_with(
        &mut self,
        props: &mut Vec<f64>,
        critical: &mut Vec<bool>,
    ) -> Option<PendingTransition> {
        // `props` is the persistent cache: a full recompute happens only
        // on the first draw (or in the diagnostic full-recompute mode);
        // afterwards commits keep it fresh via the incidence list.
        if self.full_recompute || !self.cache_ready {
            self.flat.propensities_into(&self.state, props);
            self.cache_ready = true;
        }
        let a0: f64 = props.iter().sum();
        if a0 <= 0.0 {
            return None;
        }
        // Partition: critical reactions fire exactly, the rest leap.
        critical.clear();
        for (r, &a) in props.iter().enumerate() {
            let c = a > 0.0 && self.is_critical(r);
            critical.push(c);
        }
        let a0_crit: f64 = props
            .iter()
            .enumerate()
            .filter(|&(r, _)| critical[r])
            .map(|(_, &a)| a)
            .sum();
        let mut tau1 = self.flat.cgp_tau_with(
            &mut self.cgp_scratch,
            &self.state,
            props,
            self.epsilon,
            |r| !critical[r],
        );
        loop {
            // Leaping cannot pay for itself below the fallback bound; and
            // when *nothing* bounds the leap with no critical clock to cap
            // it (every enabled reaction has net-zero stoichiometry, e.g.
            // a catalytic no-op), leaping is meaningless — both cases take
            // one exact step.
            if tau1 < SSA_FALLBACK_MULT / a0 || (!tau1.is_finite() && a0_crit <= 0.0) {
                return Some(self.draw_exact_step(props, a0));
            }
            // Exponential clock of the critical block (∞ when none
            // enabled; tau1 is then finite, per the guard above).
            let tau2 = if a0_crit > 0.0 {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / a0_crit
            } else {
                f64::INFINITY
            };
            let (leap_len, fire_critical) = if tau2 <= tau1 {
                (tau2, true)
            } else {
                (tau1, false)
            };
            let mut candidate = self.state.clone();
            let mut firings = 0u64;
            let mut changed: Vec<usize> = Vec::new();
            for (r, &a) in props.iter().enumerate() {
                if a == 0.0 || critical[r] {
                    continue;
                }
                let k = poisson(&mut self.rng, a * leap_len);
                if k == 0 {
                    continue;
                }
                firings += k;
                for &(i, d) in &self.flat.delta[r] {
                    candidate[i] += d * k as i64;
                    if !self.seen_buf[i] {
                        self.seen_buf[i] = true;
                        changed.push(i);
                    }
                }
            }
            if fire_critical {
                let target = self.rng.gen_range(0.0..a0_crit);
                let mut acc = 0.0;
                let mut chosen = None;
                for (r, &a) in props.iter().enumerate() {
                    if !critical[r] {
                        continue;
                    }
                    acc += a;
                    if target < acc {
                        chosen = Some(r);
                        break;
                    }
                    chosen = Some(r); // last critical wins on fp slack
                }
                let chosen = chosen.expect("a0_crit > 0 implies a critical reaction");
                for &(i, d) in &self.flat.delta[chosen] {
                    candidate[i] += d;
                    if !self.seen_buf[i] {
                        self.seen_buf[i] = true;
                        changed.push(i);
                    }
                }
                firings += 1;
            }
            // Un-mark (cheaper than clearing the whole bitmap: O(changed),
            // not O(species)) — also needed before a halving retry.
            for &i in &changed {
                self.seen_buf[i] = false;
            }
            if candidate.iter().all(|&c| c >= 0) {
                return Some(PendingTransition {
                    state: candidate,
                    end: self.committed + leap_len,
                    firings,
                    exact: fire_critical && firings == 1,
                    changed,
                });
            }
            // Rare overshoot (criticality is a 10-firing heuristic, not a
            // guarantee): halve the bound and redraw the whole transition
            // from the committed state — still a pure function of
            // (state, stream), so slicing invariance is preserved.
            tau1 /= 2.0;
        }
    }

    /// Applies the pending transition, returning its firings.
    fn commit_pending(&mut self) -> u64 {
        let p = self.pending.take().expect("pending transition to commit");
        self.state = p.state;
        // O(affected) cache refresh: only rules whose reactants changed
        // can have a different propensity; every other cached value is
        // bit-identical to what a full recompute would produce.
        if self.cache_ready && !self.full_recompute {
            for &i in &p.changed {
                for &r in &self.flat.incidence[i] {
                    self.props_buf[r] = self.flat.propensity(&self.state, r);
                }
            }
        }
        self.committed = p.end;
        if self.time < p.end {
            self.time = p.end;
        }
        if p.exact {
            self.exact_steps += 1;
        } else {
            self.leaps += 1;
        }
        self.firings += p.firings;
        p.firings
    }

    /// Advances by one adaptive transition (leap, critical firing or
    /// fallback step). Returns the time advanced (0.0 when absorbing).
    /// Commits any transition held pending by the quantum-execution API
    /// first.
    pub fn advance(&mut self) -> f64 {
        if self.pending.is_some() {
            self.commit_pending();
        }
        match self.draw_transition() {
            None => 0.0,
            Some(p) => {
                let taken = p.end - self.committed;
                self.pending = Some(p);
                self.commit_pending();
                taken
            }
        }
    }

    /// Runs until simulation time reaches `t_end` (or the state absorbs),
    /// without sampling; returns the reactions fired. A transition drawn
    /// past `t_end` stays pending for a later call, so this never
    /// overshoots the horizon (same contract as the exact engines).
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        // A muted clock (zero-sample limit) turns sampled advancement into
        // plain advancement on the same pending-transition path.
        let mut muted = SampleClock::new(0.0, 1.0).with_limit(0);
        self.run_sampled(t_end, &mut muted, |_, _| {})
    }

    /// Runs until `t_end`, invoking `on_sample(t, observables)` at every
    /// grid time `clock` yields within the interval. Returns the firings
    /// *committed* during the call.
    ///
    /// The slicing-invariant quantum-execution path: transitions never
    /// truncate at `t_end`; one drawn past the horizon stays pending for
    /// a later call, and samples report the committed state in force.
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, mut on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        let mut fired = 0;
        loop {
            if self.pending.is_none() {
                self.pending = self.draw_transition();
            }
            let t_next = self
                .pending
                .as_ref()
                .map(|p| p.end)
                .unwrap_or(f64::INFINITY);
            let horizon = t_next.min(t_end);
            while let Some(ts) = clock.peek() {
                if ts > horizon {
                    break;
                }
                let values = self.observe();
                on_sample(ts, &values);
                clock.advance();
            }
            if t_next > t_end {
                if self.time < t_end {
                    self.time = t_end;
                }
                return fired;
            }
            fired += self.commit_pending();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn birth_death_model(birth: f64, death: f64, n0: u64) -> Arc<Model> {
        let mut m = Model::new("bd");
        let a = m.species("A");
        m.rule("birth")
            .produces("A", 1)
            .rate(birth)
            .build()
            .unwrap();
        m.rule("death")
            .consumes("A", 1)
            .rate(death)
            .build()
            .unwrap();
        m.initial.add_atoms(a, n0);
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn rejects_compartment_models_naming_rule_and_engine() {
        let mut m = Model::new("c");
        m.rule("shuttle")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let err = AdaptiveTauEngine::new(Arc::new(m), 0, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`shuttle`"), "{msg}");
        assert!(msg.contains("adaptive tau-leaping"), "{msg}");
    }

    #[test]
    fn decay_mean_matches_exponential() {
        let model = decay_model(10_000, 1.0);
        let mut e = AdaptiveTauEngine::new(model, 42, 0).unwrap();
        e.run_until(1.0);
        assert_eq!(e.time(), 1.0, "run_until must stop at the horizon");
        let remaining = e.observe()[0] as f64;
        let expected = 10_000.0 * (-1.0f64).exp(); // ≈ 3679
        assert!(
            (remaining - expected).abs() < 0.05 * expected,
            "remaining {remaining}, expected ≈ {expected}"
        );
        // On a 10k population the engine must actually leap, not fall
        // back to per-reaction stepping.
        assert!(e.leaps() > 0);
        assert!(
            e.firings() > 20 * (e.leaps() + e.exact_steps()),
            "{} firings in {} leaps + {} exact steps",
            e.firings(),
            e.leaps(),
            e.exact_steps()
        );
    }

    #[test]
    fn small_populations_fall_back_to_exact_stepping() {
        // 5 molecules: every reaction is critical / the CGP bound is tiny,
        // so the engine must take exact transitions and stay non-negative.
        let model = decay_model(5, 2.0);
        let mut e = AdaptiveTauEngine::new(model, 7, 0).unwrap();
        e.run_until(50.0);
        assert_eq!(e.observe(), vec![0]);
        assert_eq!(e.firings(), 5);
        assert_eq!(e.leaps(), 0, "no Poisson leap on a critical-only state");
        assert_eq!(e.exact_steps(), 5);
        assert!(e.counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn state_never_goes_negative_under_pressure() {
        let model = birth_death_model(3.0, 9.0, 15);
        let mut e = AdaptiveTauEngine::new(model, 11, 0)
            .unwrap()
            .with_epsilon(0.3);
        e.run_until(5.0);
        assert!(e.counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn absorbing_state_terminates() {
        let model = decay_model(0, 1.0);
        let mut e = AdaptiveTauEngine::new(model, 7, 0).unwrap();
        e.run_until(3.0);
        assert_eq!(e.time(), 3.0);
        assert_eq!(e.firings(), 0);
    }

    #[test]
    fn quantum_slicing_is_bit_identical() {
        let model = birth_death_model(500.0, 1.0, 400);
        let mk = || {
            AdaptiveTauEngine::new(Arc::clone(&model), 5, 3)
                .unwrap()
                .with_epsilon(0.05)
        };
        let mut whole = mk();
        let mut wc = SampleClock::new(0.0, 0.25);
        let mut ws = Vec::new();
        whole.run_sampled(6.0, &mut wc, |t, v| ws.push((t, v.to_vec())));

        let mut sliced = mk();
        let mut sc = SampleClock::new(0.0, 0.25);
        let mut ss = Vec::new();
        for t in [0.1, 0.33, 1.0, 1.01, 2.5, 4.99, 6.0] {
            sliced.run_sampled(t, &mut sc, |t, v| ss.push((t, v.to_vec())));
        }
        assert_eq!(ws, ss);
        assert_eq!(whole.counts(), sliced.counts());
        assert_eq!(whole.firings(), sliced.firings());
        assert_eq!(whole.leaps(), sliced.leaps());
        assert_eq!(whole.exact_steps(), sliced.exact_steps());
        assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn epsilon_trades_accuracy_for_leap_size() {
        // Larger ε ⇒ larger leaps ⇒ fewer transitions to the horizon.
        let model = birth_death_model(2000.0, 1.0, 2000);
        let run = |eps: f64| {
            let mut e = AdaptiveTauEngine::new(Arc::clone(&model), 3, 0)
                .unwrap()
                .with_epsilon(eps);
            e.run_until(4.0);
            e.leaps() + e.exact_steps()
        };
        let tight = run(0.01);
        let loose = run(0.1);
        assert!(
            loose * 3 < tight,
            "ε=0.1 used {loose} transitions, ε=0.01 used {tight}"
        );
    }

    #[test]
    fn catalytic_no_op_rules_do_not_panic() {
        // Regression: a model whose only enabled reaction has net-zero
        // stoichiometry leaves the CGP bound unbounded with an empty
        // critical block; the engine must take exact steps (like SSA on
        // the same model) instead of sampling an empty range.
        let mut m = Model::new("noop");
        let a = m.species("A");
        m.rule("touch")
            .consumes("A", 1)
            .produces("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        m.initial.add_atoms(a, 100);
        m.observe("A", a);
        let mut e = AdaptiveTauEngine::new(Arc::new(m), 9, 0).unwrap();
        e.run_until(1.0);
        assert_eq!(e.observe(), vec![100], "no-ops change nothing");
        assert!(e.firings() > 0, "but they do fire, like under SSA");
        assert_eq!(e.leaps(), 0);
    }

    #[test]
    fn incidence_cache_is_bit_identical_to_full_recompute() {
        // A multi-species chain where most transitions touch only a few
        // of the species, so the incidence refresh really skips work —
        // and must not change a single bit of the trajectory.
        let model = {
            let mut m = Model::new("chain");
            let n = 12;
            for i in 0..n {
                let name = format!("S{i}");
                let s = m.species(&name);
                m.initial.add_atoms(s, 200);
                m.observe(&name, s);
            }
            for i in 0..n {
                let from = format!("S{i}");
                let to = format!("S{}", (i + 1) % n);
                m.rule(&format!("r{i}"))
                    .consumes(&from, 1)
                    .produces(&to, 1)
                    .rate(1.0 + i as f64 * 0.1)
                    .build()
                    .unwrap();
            }
            Arc::new(m)
        };
        for seed in [1u64, 9, 42] {
            // 12 rules sit below the heuristic crossover, so the cache
            // side must be forced on for this comparison to test it.
            let mut fast = AdaptiveTauEngine::new(Arc::clone(&model), seed, 0)
                .unwrap()
                .with_epsilon(0.05)
                .with_incidence_cache();
            let mut slow = AdaptiveTauEngine::new(Arc::clone(&model), seed, 0)
                .unwrap()
                .with_epsilon(0.05)
                .with_full_recompute();
            // Slice the horizons differently too: the cache must survive
            // pending transitions across quantum boundaries.
            let mut fc = SampleClock::new(0.0, 0.25);
            let mut sc = SampleClock::new(0.0, 0.25);
            let mut fs = Vec::new();
            let mut ss = Vec::new();
            for t in [0.4, 1.0, 2.0] {
                fast.run_sampled(t, &mut fc, |t, v| fs.push((t, v.to_vec())));
            }
            slow.run_sampled(2.0, &mut sc, |t, v| ss.push((t, v.to_vec())));
            assert_eq!(fs, ss, "seed {seed}: sampled trajectories diverged");
            assert_eq!(fast.counts(), slow.counts(), "seed {seed}");
            assert_eq!(fast.firings(), slow.firings(), "seed {seed}");
            assert_eq!(fast.leaps(), slow.leaps(), "seed {seed}");
            assert_eq!(fast.exact_steps(), slow.exact_steps(), "seed {seed}");
        }
    }

    #[test]
    fn recompute_heuristic_crosses_over_at_the_pinned_rule_count() {
        // A flat cycle with a configurable rule count, straddling the
        // threshold by one rule on each side.
        let cycle = |rules: usize| {
            let mut m = Model::new("cycle");
            for i in 0..rules {
                let name = format!("S{i}");
                let s = m.species(&name);
                m.initial.add_atoms(s, 50);
            }
            for i in 0..rules {
                m.rule(&format!("r{i}"))
                    .consumes(&format!("S{i}"), 1)
                    .produces(&format!("S{}", (i + 1) % rules), 1)
                    .rate(1.0)
                    .build()
                    .unwrap();
            }
            Arc::new(m)
        };
        let at = AdaptiveTauEngine::new(cycle(FULL_RECOMPUTE_MAX_RULES), 1, 0).unwrap();
        assert!(at.full_recompute(), "≤ threshold ⇒ full recompute");
        let above = AdaptiveTauEngine::new(cycle(FULL_RECOMPUTE_MAX_RULES + 1), 1, 0).unwrap();
        assert!(!above.full_recompute(), "> threshold ⇒ incidence cache");
        // Both overrides beat the heuristic, in both directions.
        let forced_cache = AdaptiveTauEngine::new(cycle(2), 1, 0)
            .unwrap()
            .with_incidence_cache();
        assert!(!forced_cache.full_recompute());
        let forced_full = AdaptiveTauEngine::new(cycle(FULL_RECOMPUTE_MAX_RULES + 1), 1, 0)
            .unwrap()
            .with_full_recompute();
        assert!(forced_full.full_recompute());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn out_of_range_epsilon_panics() {
        let model = decay_model(1, 1.0);
        let _ = AdaptiveTauEngine::new(model, 1, 0)
            .unwrap()
            .with_epsilon(1.5);
    }
}
