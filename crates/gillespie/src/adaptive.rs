//! Adaptive tau-leaping: Cao–Gillespie–Petzold step-size selection with
//! critical-reaction partitioning and an exact-SSA fallback.
//!
//! Fixed-step leaping ([`crate::tau_leap`]) makes the user pick τ; pick it
//! too large and the approximation degrades (or the leap thrashes in
//! negativity halving), too small and every leap fires less than one
//! reaction and the method is slower than exact SSA. This engine picks τ
//! from the *state* instead, the design StochKit popularised (Cao,
//! Gillespie & Petzold, "Efficient step size selection for the tau-leaping
//! simulation method", J. Chem. Phys. 124, 2006):
//!
//! 1. **Critical reactions.** A reaction within [`N_CRITICAL`] firings of
//!    exhausting one of its reactants is *critical*: it never leaps.
//!    Critical reactions fire one at a time, exactly, via an exponential
//!    clock over their summed propensity — so near-exhausted species are
//!    handled at SSA resolution while the abundant bulk still leaps.
//! 2. **The CGP bound.** Over the non-critical reactions, τ is the largest
//!    step for which the expected relative change of every propensity
//!    stays within the `epsilon` knob (per-species mean/variance bounds
//!    from the compiled [`ModelDeps`] stoichiometry
//!    — the `cgp_tau` bound of [`crate::flat`]).
//! 3. **SSA fallback.** When the bound collapses below
//!    [`SSA_FALLBACK_MULT`] expected firings' worth of time (τ < mult/a0),
//!    leaping cannot beat exact stepping, so the engine takes one exact
//!    direct-method step on the species-count vector instead.
//!
//! ## Quantum-exact execution
//!
//! Identical contract to the fixed-step engine: every transition (leap,
//! critical firing or fallback step) is drawn from the committed state
//! only, held *pending* when it ends beyond the quantum horizon, and
//! committed in a later quantum — never re-drawn or truncated. The RNG
//! draw discipline per transition is documented in [`crate::rng`].

use std::sync::Arc;

use cwc::model::Model;
use cwc::species::Species;
use rand::Rng;

use crate::batch::kernels::{self, Kernel, KernelDispatch, RuleMask};
use crate::deps::ModelDeps;
use crate::flat::{poisson, CgpScratch, FlatModel, FlatModelError};
use crate::rng::{sim_rng, SimRng};
use crate::ssa::SampleClock;

/// Default relative-propensity-change bound ε (Cao et al. recommend
/// 0.03–0.05).
pub const DEFAULT_EPSILON: f64 = 0.03;

/// A reaction within this many firings of exhausting a reactant is
/// *critical* and fires exactly, never inside a Poisson leap.
pub const N_CRITICAL: u64 = 10;

/// When the CGP bound drops below `SSA_FALLBACK_MULT / a0` — fewer than
/// this many expected firings per leap — the engine takes an exact step
/// instead of leaping.
pub const SSA_FALLBACK_MULT: f64 = 10.0;

/// Models with at most this many rules default to *full* propensity
/// recomputation per draw instead of the incidence-list cache refresh.
///
/// The cache turns the per-commit refresh from O(rules) into
/// O(affected). Before the kernel-accelerated hot path this paid off
/// only when the gap was wide (incidence was ~5% slower on the 4-rule
/// Schlögl and 3-rule Lotka–Volterra, so the crossover sat at 32
/// rules). Re-deriving it on the kernel path — `profile_adaptive` with
/// `CWC_PROFILE_REFRESH`, conversion cycles of 3..48 rules, best of
/// three — the incidence path now wins at *every* rule count in the
/// critical regime (1.3–3x, e.g. 3 rules: 296 ms vs 388 ms for 2M
/// firings) and ties within noise in the leap regime, so the crossover
/// is zero: every model defaults to the incidence cache, and full
/// recomputation survives purely as the diagnostic replica. Results are
/// bit-identical on both sides, so the constant is a pure throughput
/// knob; [`AdaptiveTauEngine::with_full_recompute`] and
/// [`AdaptiveTauEngine::with_incidence_cache`] override it per engine.
pub const FULL_RECOMPUTE_MAX_RULES: usize = 0;

/// Two-sided relative slack around the incremental `a0` estimate used to
/// screen the SSA-fallback guard without folding the full row. The
/// estimate's true drift from the exact fold bits is bounded by roughly
/// `(updates since resync + rules) × 2⁻⁵³` relative — capped below
/// ~5 × 10⁻¹⁰ by [`A0_EST_MAX_UPDATES`] — so this margin is ≥ 20×
/// conservative; comparisons that stay inconclusive inside it fall back
/// to the exact fold.
const A0_EST_REL: f64 = 1e-8;

/// Forced-refold cap: after this many incremental `a0` updates without
/// an exact resync the screen stands down (returns inconclusive) until
/// the next fold re-anchors the estimate.
const A0_EST_MAX_UPDATES: u64 = 1 << 22;

/// A drawn-but-not-yet-committed transition: one leap, one critical
/// firing riding on a truncated leap, or one exact fallback step.
#[derive(Debug, Clone)]
struct PendingTransition {
    /// Sparse candidate state: `(species index, new value)`, deduped.
    /// Committing applies exactly these writes and refreshes exactly the
    /// rules incident to these species, making the per-transition work
    /// O(affected) instead of O(all rules) / O(all species).
    updates: Vec<(usize, i64)>,
    /// Absolute time at which the transition commits.
    end: f64,
    /// Firings the transition applies when committed.
    firings: u64,
    /// True when this transition was an exact (fallback or critical)
    /// single firing rather than a Poisson leap.
    exact: bool,
}

/// Kernel-routed incremental per-draw state for the adaptive hot path
/// (the `!full_recompute` side). Everything here describes the last
/// *committed* state and is maintained at commit time in O(affected):
/// `props`, the enabled/critical masks and their counts by walking
/// `FlatModel::incidence` over the changed species; the two prefix rows
/// lazily, refolded from a dirty watermark through the width-1 row
/// kernels of [`crate::batch::kernels`] (honouring the engine's
/// [`KernelDispatch`]). Every value is bit-identical to what the
/// full-recompute replica scans up from scratch on each draw.
#[derive(Debug, Clone, Default)]
struct HotState {
    /// Cached per-rule propensities of the committed state.
    props: Vec<f64>,
    /// `enabled[r]` ⟺ `props[r] > 0.0`.
    enabled: RuleMask,
    /// `crit[r]` ⟺ enabled and within [`N_CRITICAL`] firings of
    /// exhausting a reactant — the criticality partition, re-classified
    /// only for rules whose reactant species changed since last commit.
    crit: RuleMask,
    /// Number of enabled rules. `active == 0` ⟺ the legacy `a0 <= 0.0`
    /// absorbing check (an adds-only fold of no positive entries).
    active: usize,
    /// Number of enabled critical rules (`a0_crit > 0.0` ⟺ `n_crit > 0`).
    n_crit: usize,
    /// Adds-only prefix fold over all rules — the exact-fallback
    /// selection row; slots below `main_dirty` hold committed bits.
    main_prefix: Vec<f64>,
    /// First rule whose `main_prefix` slot may be stale (`len` = clean).
    main_dirty: usize,
    /// Fold total (the legacy `a0` bits) once `main_dirty == len`.
    main_total: f64,
    /// Critical-only masked prefix fold — the critical selection row.
    crit_prefix: Vec<f64>,
    /// First rule whose `crit_prefix` slot may be stale (`len` = clean).
    crit_dirty: usize,
    /// Masked fold total (the legacy `a0_crit` bits) once clean.
    crit_total: f64,
    /// Incrementally-maintained estimate of the main fold total,
    /// re-anchored to the exact bits at every `refold_main`. Only ever
    /// used through [`HotState::screen_fallback`]'s conservative
    /// interval — never as `a0` itself.
    a0_est: f64,
    /// Incremental updates applied to `a0_est` since its last exact
    /// resync (drives the [`A0_EST_MAX_UPDATES`] stand-down).
    est_updates: u64,
}

impl HotState {
    /// Full rescan: recompute every propensity, classification and
    /// count from `state`. Runs once per cache (in)validation, not per
    /// draw.
    fn rebuild(&mut self, flat: &FlatModel, state: &[i64]) {
        flat.propensities_into(state, &mut self.props);
        let n = self.props.len();
        self.enabled = RuleMask::new(n);
        self.crit = RuleMask::new(n);
        self.active = 0;
        self.n_crit = 0;
        for r in 0..n {
            if self.props[r] > 0.0 {
                self.enabled.assign(r, true);
                self.active += 1;
                if rule_is_critical(flat, state, r) {
                    self.crit.assign(r, true);
                    self.n_crit += 1;
                }
            }
        }
        self.main_prefix.clear();
        self.main_prefix.resize(n, 0.0);
        self.main_dirty = 0;
        self.main_total = -0.0;
        self.crit_prefix.clear();
        self.crit_prefix.resize(n, 0.0);
        self.crit_dirty = 0;
        self.crit_total = -0.0;
        // Any evaluation within a few ulps of the fold works as the
        // anchor; the screen's slack absorbs the difference.
        self.a0_est = self.props.iter().sum();
        self.est_updates = 0;
    }

    /// The full-row fold total (the legacy `a0 = Σ props` bits),
    /// refolding the stale prefix tail first. Lazy: the pure-critical
    /// regime never calls this, so dead rules are never scanned.
    fn refold_main(&mut self, kernel: Kernel) -> f64 {
        if self.main_dirty < self.props.len() {
            self.main_total =
                kernels::row_fold_from(kernel, &self.props, &mut self.main_prefix, self.main_dirty);
            self.main_dirty = self.props.len();
            // Exact bits in hand: re-anchor the screening estimate.
            self.a0_est = self.main_total;
            self.est_updates = 0;
        }
        self.main_total
    }

    /// The critical-row masked fold total (the legacy `a0_crit` bits),
    /// refolding the stale tail first.
    fn refold_crit(&mut self, kernel: Kernel) -> f64 {
        if self.crit_dirty < self.props.len() {
            self.crit_total = kernels::row_fold_masked_from(
                kernel,
                &self.props,
                &self.crit,
                &mut self.crit_prefix,
                self.crit_dirty,
            );
            self.crit_dirty = self.props.len();
        }
        self.crit_total
    }

    /// Conservative screen of the replica's fallback guard
    /// `tau1 < SSA_FALLBACK_MULT / a0` (for finite `tau1`) that avoids
    /// folding the full row when the comparison cannot be close.
    ///
    /// Soundness: the exact fold total `S` lies within `a0_est ±
    /// a0_est·A0_EST_REL` (the estimate's drift bound is ≥ 20× smaller —
    /// see [`A0_EST_REL`]), and FP division is monotone, so
    /// `SSA_FALLBACK_MULT / S` is bracketed by the quotients at the
    /// interval's edges. A `tau1` beyond the far edge decides the exact
    /// comparison; anything inside returns `None` and the caller folds
    /// the row and compares exactly.
    fn screen_fallback(&self, tau1: f64) -> Option<bool> {
        if self.main_dirty >= self.props.len() {
            // Row already clean: the exact total is cached anyway.
            return Some(tau1 < SSA_FALLBACK_MULT / self.main_total);
        }
        if self.est_updates > A0_EST_MAX_UPDATES || !self.a0_est.is_finite() {
            return None;
        }
        let slack = self.a0_est * A0_EST_REL;
        let lo = self.a0_est - slack;
        let hi = self.a0_est + slack;
        if lo <= 0.0 {
            return None;
        }
        if tau1 < SSA_FALLBACK_MULT / hi {
            Some(true)
        } else if tau1 >= SSA_FALLBACK_MULT / lo {
            Some(false)
        } else {
            None
        }
    }

    /// Commit-time refresh of one rule: new propensity + classification.
    /// Idempotent, so a rule incident to two changed species may be
    /// visited twice without drifting the counts or watermarks.
    fn update_rule(&mut self, r: usize, a: f64, critical: bool) {
        let value_changed = self.props[r].to_bits() != a.to_bits();
        if value_changed {
            self.a0_est += a - self.props[r];
            self.est_updates += 1;
            self.props[r] = a;
            if self.main_dirty > r {
                self.main_dirty = r;
            }
        }
        let enabled = a > 0.0;
        if self.enabled.assign(r, enabled) != enabled {
            if enabled {
                self.active += 1;
            } else {
                self.active -= 1;
            }
        }
        if self.crit.assign(r, critical) != critical {
            if critical {
                self.n_crit += 1;
            } else {
                self.n_crit -= 1;
            }
            if self.crit_dirty > r {
                self.crit_dirty = r;
            }
        } else if critical && value_changed && self.crit_dirty > r {
            self.crit_dirty = r;
        }
    }
}

/// True when firing rule `r` could exhaust a reactant within
/// [`N_CRITICAL`] firings from `state`. A free function so commit-time
/// maintenance can classify rules while the engine is partially
/// borrowed.
fn rule_is_critical(flat: &FlatModel, state: &[i64], r: usize) -> bool {
    flat.delta[r].iter().any(|&(i, d)| {
        if d >= 0 {
            return false;
        }
        (state[i] / -d) < N_CRITICAL as i64
    })
}

/// Flat-model approximate simulator with adaptive (CGP) step-size
/// selection.
#[derive(Debug, Clone)]
pub struct AdaptiveTauEngine {
    model: Arc<Model>,
    flat: FlatModel,
    /// `state[i]` = copies of `flat.species[i]` (last *committed* state).
    state: Vec<i64>,
    /// Time of the last committed transition boundary.
    committed: f64,
    /// Reported simulation clock (advances to quantum horizons; always
    /// ≥ `committed`).
    time: f64,
    /// The CGP relative-change bound ε.
    epsilon: f64,
    /// Transition drawn past a quantum horizon, held until the horizon
    /// passes its end.
    pending: Option<PendingTransition>,
    rng: SimRng,
    instance: u64,
    /// Committed Poisson leaps.
    leaps: u64,
    /// Committed exact transitions (critical firings + SSA fallbacks).
    exact_steps: u64,
    firings: u64,
    /// Reusable per-draw buffers of the full-recompute replica path.
    props_buf: Vec<f64>,
    crit_buf: Vec<bool>,
    cgp_scratch: CgpScratch,
    /// Incremental kernel-routed state of the hot path; valid only when
    /// `cache_ready` and maintained across commits in O(affected).
    hot: HotState,
    /// True once `hot` describes the committed state.
    cache_ready: bool,
    /// Replica knob: recompute every propensity, criticality flag and
    /// fold on every draw with plain scalar scans (the pre-kernel
    /// behaviour). Bit-identical results; exists so tests and the
    /// `adaptive_tau` bench can pin/measure what the incremental hot
    /// path buys.
    full_recompute: bool,
    /// Per-species "already marked changed" bitmap, un-marked after each
    /// draw so steady state does no O(species) clearing.
    seen_buf: Vec<bool>,
    /// Sparse candidate values for species marked in `seen_buf` (the
    /// hot path's replacement for cloning the whole state per draw).
    cand_buf: Vec<i64>,
    /// Reusable changed-species index list for the hot path.
    changed_buf: Vec<usize>,
    /// Recycled `updates` allocation: commits return the spent vector
    /// here, the next draw reuses it (zero steady-state allocation).
    updates_pool: Vec<(usize, i64)>,
    /// Requested kernel dispatch policy and its resolution.
    dispatch: KernelDispatch,
    kernel: Kernel,
}

impl AdaptiveTauEngine {
    /// Builds an adaptive leaping engine from a flat model, compiling its
    /// stoichiometry locally.
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] when any rule uses compartments, applies
    /// below the top level or has a non-mass-action law.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Result<Self, FlatModelError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_deps(model, deps, base_seed, instance)
    }

    /// Like [`AdaptiveTauEngine::new`], reusing an already-compiled
    /// [`ModelDeps`] (one compilation per run, shared across instances).
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] when the model is not flat mass-action.
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Result<Self, FlatModelError> {
        let flat = FlatModel::compile(&model, &deps, "adaptive tau-leaping")?;
        let state = flat.initial_state(&model);
        let species_len = flat.species.len();
        // Rule-count heuristic (see FULL_RECOMPUTE_MAX_RULES, currently
        // zero: every model defaults to the incidence cache — the
        // comparison is kept generic so a re-derived crossover is a
        // one-constant change). Either way the trajectory is
        // bit-identical.
        #[allow(clippy::absurd_extreme_comparisons)]
        let full_recompute = flat.rates.len() <= FULL_RECOMPUTE_MAX_RULES;
        Ok(AdaptiveTauEngine {
            model,
            flat,
            state,
            committed: 0.0,
            time: 0.0,
            epsilon: DEFAULT_EPSILON,
            pending: None,
            rng: sim_rng(base_seed, instance),
            instance,
            leaps: 0,
            exact_steps: 0,
            firings: 0,
            props_buf: Vec::new(),
            crit_buf: Vec::new(),
            cgp_scratch: CgpScratch::default(),
            hot: HotState::default(),
            cache_ready: false,
            full_recompute,
            seen_buf: vec![false; species_len],
            cand_buf: vec![0; species_len],
            changed_buf: Vec::new(),
            updates_pool: Vec::new(),
            dispatch: KernelDispatch::Auto,
            kernel: KernelDispatch::Auto.resolve(),
        })
    }

    /// Sets the kernel dispatch policy for the hot path's row folds,
    /// selection scans and masked sweeps (default [`KernelDispatch::Auto`]).
    /// Every dispatch produces bit-identical trajectories; the knob exists
    /// for benchmarking and for pinning the scalar reference in tests.
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self.kernel = dispatch.resolve();
        self
    }

    /// The configured kernel dispatch policy.
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Disables the incidence-list propensity cache: every draw
    /// recomputes all propensities from the state vector. Results are
    /// bit-identical either way — this overrides the rule-count
    /// heuristic (see [`FULL_RECOMPUTE_MAX_RULES`]) so benchmarks can
    /// measure the cache.
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self.cache_ready = false;
        self.cgp_scratch = CgpScratch::default();
        self
    }

    /// Forces the incidence-list propensity cache on, overriding the
    /// rule-count heuristic (see [`FULL_RECOMPUTE_MAX_RULES`] —
    /// currently zero, so this is already the default for every
    /// model). Results are bit-identical either way.
    pub fn with_incidence_cache(mut self) -> Self {
        self.full_recompute = false;
        self.cache_ready = false;
        self.cgp_scratch = CgpScratch::default();
        self
    }

    /// True when every draw recomputes all propensities (heuristic
    /// default for small models, or forced via
    /// [`AdaptiveTauEngine::with_full_recompute`]); false when commits
    /// refresh the incidence-list cache instead.
    pub fn full_recompute(&self) -> bool {
        self.full_recompute
    }

    /// Sets the CGP relative-change bound ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1)"
        );
        self.epsilon = epsilon;
        self
    }

    /// The CGP relative-change bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        &self.model
    }

    /// Committed Poisson leaps so far.
    pub fn leaps(&self) -> u64 {
        self.leaps
    }

    /// Committed exact transitions so far (critical firings and SSA
    /// fallback steps) — the partitioning diagnostic.
    pub fn exact_steps(&self) -> u64 {
        self.exact_steps
    }

    /// Total reaction firings applied.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Current copy number of `species`.
    pub fn count(&self, species: Species) -> u64 {
        self.flat.count(&self.state, species)
    }

    /// The committed per-species state vector (ascending interned
    /// species order), for invariant tests.
    pub fn counts(&self) -> &[i64] {
        &self.state
    }

    /// Evaluates the model's observables on the committed state.
    pub fn observe(&self) -> Vec<u64> {
        self.flat.observe(&self.model, &self.state)
    }

    /// True when firing rule `r` could exhaust a reactant within
    /// [`N_CRITICAL`] firings from `state`.
    fn is_critical(&self, r: usize) -> bool {
        rule_is_critical(&self.flat, &self.state, r)
    }

    /// One exact direct-method step on the count vector (the SSA
    /// fallback), full-scan replica flavour. Draw discipline: one
    /// waiting-time uniform, one selection uniform in `[0, a0)` (always
    /// consumed, even single-channel — see [`crate::rng`]).
    fn draw_exact_step(&mut self, props: &[f64], a0: f64) -> PendingTransition {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let dt = -u1.ln() / a0;
        let target = self.rng.gen_range(0.0..a0);
        let mut acc = 0.0;
        let mut chosen = props.len() - 1;
        for (r, &a) in props.iter().enumerate() {
            acc += a;
            if target < acc {
                chosen = r;
                break;
            }
        }
        self.exact_transition(chosen, dt)
    }

    /// Packages one exact firing of `chosen` as a sparse transition.
    fn exact_transition(&mut self, chosen: usize, dt: f64) -> PendingTransition {
        let mut updates = std::mem::take(&mut self.updates_pool);
        updates.clear();
        updates.extend(
            self.flat.delta[chosen]
                .iter()
                .map(|&(i, d)| (i, self.state[i] + d)),
        );
        PendingTransition {
            updates,
            end: self.committed + dt,
            firings: 1,
            exact: true,
        }
    }

    /// Draws one transition from the committed state without committing
    /// it. Returns `None` when the state is absorbing. (Thin shell that
    /// loans out the reusable buffers / hot state.)
    fn draw_transition(&mut self) -> Option<PendingTransition> {
        if self.full_recompute {
            let mut props = std::mem::take(&mut self.props_buf);
            let mut critical = std::mem::take(&mut self.crit_buf);
            let out = self.draw_full(&mut props, &mut critical);
            self.props_buf = props;
            self.crit_buf = critical;
            out
        } else {
            self.draw_incremental()
        }
    }

    /// The full-recompute replica draw: every propensity, criticality
    /// flag, fold and sweep rescans all rules with plain scalar loops.
    /// This is the reference the incremental hot path is pinned against
    /// (bit-for-bit, by the golden suite and the hot-path proptests).
    fn draw_full(
        &mut self,
        props: &mut Vec<f64>,
        critical: &mut Vec<bool>,
    ) -> Option<PendingTransition> {
        self.flat.propensities_into(&self.state, props);
        let a0: f64 = props.iter().sum();
        if a0 <= 0.0 {
            return None;
        }
        // Partition: critical reactions fire exactly, the rest leap.
        critical.clear();
        for (r, &a) in props.iter().enumerate() {
            let c = a > 0.0 && self.is_critical(r);
            critical.push(c);
        }
        let a0_crit: f64 = props
            .iter()
            .enumerate()
            .filter(|&(r, _)| critical[r])
            .map(|(_, &a)| a)
            .sum();
        let mut tau1 = self.flat.cgp_tau_with(
            &mut self.cgp_scratch,
            &self.state,
            props,
            self.epsilon,
            |r| !critical[r],
        );
        loop {
            // Leaping cannot pay for itself below the fallback bound; and
            // when *nothing* bounds the leap with no critical clock to cap
            // it (every enabled reaction has net-zero stoichiometry, e.g.
            // a catalytic no-op), leaping is meaningless — both cases take
            // one exact step.
            if tau1 < SSA_FALLBACK_MULT / a0 || (!tau1.is_finite() && a0_crit <= 0.0) {
                return Some(self.draw_exact_step(props, a0));
            }
            // Exponential clock of the critical block (∞ when none
            // enabled; tau1 is then finite, per the guard above).
            let tau2 = if a0_crit > 0.0 {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / a0_crit
            } else {
                f64::INFINITY
            };
            let (leap_len, fire_critical) = if tau2 <= tau1 {
                (tau2, true)
            } else {
                (tau1, false)
            };
            let mut candidate = self.state.clone();
            let mut firings = 0u64;
            let mut changed: Vec<usize> = Vec::new();
            for (r, &a) in props.iter().enumerate() {
                if a == 0.0 || critical[r] {
                    continue;
                }
                let k = poisson(&mut self.rng, a * leap_len);
                if k == 0 {
                    continue;
                }
                firings += k;
                for &(i, d) in &self.flat.delta[r] {
                    candidate[i] += d * k as i64;
                    if !self.seen_buf[i] {
                        self.seen_buf[i] = true;
                        changed.push(i);
                    }
                }
            }
            if fire_critical {
                let target = self.rng.gen_range(0.0..a0_crit);
                let mut acc = 0.0;
                let mut chosen = None;
                for (r, &a) in props.iter().enumerate() {
                    if !critical[r] {
                        continue;
                    }
                    acc += a;
                    if target < acc {
                        chosen = Some(r);
                        break;
                    }
                    chosen = Some(r); // last critical wins on fp slack
                }
                let chosen = chosen.expect("a0_crit > 0 implies a critical reaction");
                for &(i, d) in &self.flat.delta[chosen] {
                    candidate[i] += d;
                    if !self.seen_buf[i] {
                        self.seen_buf[i] = true;
                        changed.push(i);
                    }
                }
                firings += 1;
            }
            // Un-mark (cheaper than clearing the whole bitmap: O(changed),
            // not O(species)) — also needed before a halving retry.
            for &i in &changed {
                self.seen_buf[i] = false;
            }
            if candidate.iter().all(|&c| c >= 0) {
                return Some(PendingTransition {
                    updates: changed.iter().map(|&i| (i, candidate[i])).collect(),
                    end: self.committed + leap_len,
                    firings,
                    exact: fire_critical && firings == 1,
                });
            }
            // Rare overshoot (criticality is a 10-firing heuristic, not a
            // guarantee): halve the bound and redraw the whole transition
            // from the committed state — still a pure function of
            // (state, stream), so slicing invariance is preserved.
            tau1 /= 2.0;
        }
    }

    /// The incremental kernel-routed draw. Bit-identical to
    /// [`Self::draw_full`] by construction:
    ///
    /// - `active == 0` ⟺ the replica's `a0 <= 0.0` (an adds-only fold
    ///   with no positive entry cannot exceed zero);
    /// - the maintained criticality masks equal the per-draw
    ///   re-classification (a rule's criticality depends only on its
    ///   reactant counts, and every such change routes through
    ///   `FlatModel::incidence` at commit);
    /// - the masked folds add the same values in the same rule order as
    ///   the replica's skip-scans, so `a0`/`a0_crit` carry the same bits
    ///   (`-0.0` vs `0.0` seeds are washed out by the first positive add
    ///   and compare equal otherwise);
    /// - the CGP bound accumulates over the same enabled non-critical
    ///   rules in the same order (`cgp_tau_masked`);
    /// - Poisson sweeps visit the same rules in the same order, so the
    ///   RNG stream is consumed identically; selection searches return
    ///   the replica scans' crossing slots.
    ///
    /// When `tau1` is infinite the fallback guard needs no `a0` at all
    /// (`tau1 < mult/a0` is false for every positive `a0`), so the
    /// pure-critical regime never folds the full-width row — that plus
    /// the O(affected) commits is where the speedup comes from.
    fn draw_incremental(&mut self) -> Option<PendingTransition> {
        if !self.cache_ready {
            self.hot.rebuild(&self.flat, &self.state);
            self.cache_ready = true;
        }
        // Disjoint field borrows (no per-draw moves of the hot state).
        let Self {
            flat,
            state,
            rng,
            hot,
            cgp_scratch,
            seen_buf,
            cand_buf,
            changed_buf,
            updates_pool,
            ..
        } = self;
        let (kernel, epsilon, committed) = (self.kernel, self.epsilon, self.committed);
        if hot.active == 0 {
            return None;
        }
        let mut tau1 = if hot.active == hot.n_crit {
            // No enabled non-critical rule: the CGP scan accumulates
            // nothing and the bound is unbounded.
            f64::INFINITY
        } else {
            flat.cgp_tau_masked(
                cgp_scratch,
                state,
                &hot.props,
                epsilon,
                hot.enabled.iter_minus(&hot.crit),
            )
        };
        let changed = changed_buf;
        loop {
            // Replica guard: `tau1 < mult/a0 || (!tau1.is_finite() &&
            // a0_crit <= 0.0)`. Each fold is forced only when its value
            // can matter: the full row only when tau1 is finite (an
            // infinite tau1 fails `tau1 < mult/a0` for every positive
            // a0), the critical row only when a critical clock actually
            // runs (`a0_crit <= 0.0` ⟺ `n_crit == 0`, no bits needed).
            let fallback = if tau1.is_finite() {
                match hot.screen_fallback(tau1) {
                    Some(f) => f,
                    None => tau1 < SSA_FALLBACK_MULT / hot.refold_main(kernel),
                }
            } else {
                hot.n_crit == 0
            };
            if fallback {
                // Exact step, hot flavour: identical draw discipline and
                // selection index to `draw_exact_step`, but the linear
                // accumulate scan becomes a kernel search over the
                // maintained prefix row (same partial sums, same
                // crossing slot).
                let a0 = hot.refold_main(kernel);
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let dt = -u1.ln() / a0;
                let target = rng.gen_range(0.0..a0);
                let mut chosen = kernels::row_select(kernel, &hot.main_prefix, target);
                if chosen >= hot.props.len() {
                    // fp-slack shortfall: the replica scan's default slot.
                    chosen = hot.props.len() - 1;
                }
                let mut updates = std::mem::take(updates_pool);
                updates.clear();
                updates.extend(flat.delta[chosen].iter().map(|&(i, d)| (i, state[i] + d)));
                return Some(PendingTransition {
                    updates,
                    end: committed + dt,
                    firings: 1,
                    exact: true,
                });
            }
            let tau2 = if hot.n_crit > 0 {
                let a0_crit = hot.refold_crit(kernel);
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / a0_crit
            } else {
                f64::INFINITY
            };
            let (leap_len, fire_critical) = if tau2 <= tau1 {
                (tau2, true)
            } else {
                (tau1, false)
            };
            let mut firings = 0u64;
            for r in hot.enabled.iter_minus(&hot.crit) {
                let k = poisson(rng, hot.props[r] * leap_len);
                if k == 0 {
                    continue;
                }
                firings += k;
                for &(i, d) in &flat.delta[r] {
                    if !seen_buf[i] {
                        seen_buf[i] = true;
                        cand_buf[i] = state[i];
                        changed.push(i);
                    }
                    cand_buf[i] += d * k as i64;
                }
            }
            if fire_critical {
                // tau2 finite ⟹ the critical row was folded above.
                let target = rng.gen_range(0.0..hot.crit_total);
                let mut chosen = kernels::row_select(kernel, &hot.crit_prefix, target);
                if chosen >= hot.props.len() {
                    // fp-slack shortfall: the replica's "last critical
                    // wins" terminal slot.
                    chosen = hot
                        .crit
                        .last_set()
                        .expect("a0_crit > 0 implies a critical reaction");
                }
                for &(i, d) in &flat.delta[chosen] {
                    if !seen_buf[i] {
                        seen_buf[i] = true;
                        cand_buf[i] = state[i];
                        changed.push(i);
                    }
                    cand_buf[i] += d;
                }
                firings += 1;
            }
            // Unchanged species keep their committed (non-negative)
            // values, so checking the touched ones is the replica's
            // whole-vector scan.
            let ok = changed.iter().all(|&i| cand_buf[i] >= 0);
            let updates = if ok {
                let mut updates = std::mem::take(updates_pool);
                updates.clear();
                updates.extend(changed.iter().map(|&i| (i, cand_buf[i])));
                Some(updates)
            } else {
                None
            };
            for &i in changed.iter() {
                seen_buf[i] = false;
            }
            changed.clear();
            if let Some(updates) = updates {
                return Some(PendingTransition {
                    updates,
                    end: committed + leap_len,
                    firings,
                    exact: fire_critical && firings == 1,
                });
            }
            // Rare overshoot: halve the bound and redraw, as the replica
            // does.
            tau1 /= 2.0;
        }
    }

    /// Applies the pending transition, returning its firings.
    fn commit_pending(&mut self) -> u64 {
        let p = self.pending.take().expect("pending transition to commit");
        for &(i, v) in &p.updates {
            self.state[i] = v;
        }
        // O(affected) hot-state refresh: only rules whose reactant
        // species changed can differ in propensity *or* criticality
        // (a negative net delta implies the species is a reactant, so
        // `incidence` covers both); everything else keeps committed
        // bits. The fold watermarks drop to the lowest refreshed rule,
        // leaving the prefix rows below it valid.
        if self.cache_ready && !self.full_recompute {
            let Self {
                flat, state, hot, ..
            } = self;
            for &(i, _) in &p.updates {
                for &r in &flat.incidence[i] {
                    let a = flat.propensity(state, r);
                    let critical = a > 0.0 && rule_is_critical(flat, state, r);
                    hot.update_rule(r, a, critical);
                }
            }
        }
        let mut spent = p.updates;
        spent.clear();
        self.updates_pool = spent;
        self.committed = p.end;
        if self.time < p.end {
            self.time = p.end;
        }
        if p.exact {
            self.exact_steps += 1;
        } else {
            self.leaps += 1;
        }
        self.firings += p.firings;
        p.firings
    }

    /// Advances by one adaptive transition (leap, critical firing or
    /// fallback step). Returns the time advanced (0.0 when absorbing).
    /// Commits any transition held pending by the quantum-execution API
    /// first.
    pub fn advance(&mut self) -> f64 {
        if self.pending.is_some() {
            self.commit_pending();
        }
        match self.draw_transition() {
            None => 0.0,
            Some(p) => {
                let taken = p.end - self.committed;
                self.pending = Some(p);
                self.commit_pending();
                taken
            }
        }
    }

    /// Runs until simulation time reaches `t_end` (or the state absorbs),
    /// without sampling; returns the reactions fired. A transition drawn
    /// past `t_end` stays pending for a later call, so this never
    /// overshoots the horizon (same contract as the exact engines).
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        // A muted clock (zero-sample limit) turns sampled advancement into
        // plain advancement on the same pending-transition path.
        let mut muted = SampleClock::new(0.0, 1.0).with_limit(0);
        self.run_sampled(t_end, &mut muted, |_, _| {})
    }

    /// Runs until `t_end`, invoking `on_sample(t, observables)` at every
    /// grid time `clock` yields within the interval. Returns the firings
    /// *committed* during the call.
    ///
    /// The slicing-invariant quantum-execution path: transitions never
    /// truncate at `t_end`; one drawn past the horizon stays pending for
    /// a later call, and samples report the committed state in force.
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, mut on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        let mut fired = 0;
        loop {
            if self.pending.is_none() {
                self.pending = self.draw_transition();
            }
            let t_next = self
                .pending
                .as_ref()
                .map(|p| p.end)
                .unwrap_or(f64::INFINITY);
            let horizon = t_next.min(t_end);
            while let Some(ts) = clock.peek() {
                if ts > horizon {
                    break;
                }
                let values = self.observe();
                on_sample(ts, &values);
                clock.advance();
            }
            if t_next > t_end {
                if self.time < t_end {
                    self.time = t_end;
                }
                return fired;
            }
            fired += self.commit_pending();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn birth_death_model(birth: f64, death: f64, n0: u64) -> Arc<Model> {
        let mut m = Model::new("bd");
        let a = m.species("A");
        m.rule("birth")
            .produces("A", 1)
            .rate(birth)
            .build()
            .unwrap();
        m.rule("death")
            .consumes("A", 1)
            .rate(death)
            .build()
            .unwrap();
        m.initial.add_atoms(a, n0);
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn rejects_compartment_models_naming_rule_and_engine() {
        let mut m = Model::new("c");
        m.rule("shuttle")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let err = AdaptiveTauEngine::new(Arc::new(m), 0, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`shuttle`"), "{msg}");
        assert!(msg.contains("adaptive tau-leaping"), "{msg}");
    }

    #[test]
    fn decay_mean_matches_exponential() {
        let model = decay_model(10_000, 1.0);
        let mut e = AdaptiveTauEngine::new(model, 42, 0).unwrap();
        e.run_until(1.0);
        assert_eq!(e.time(), 1.0, "run_until must stop at the horizon");
        let remaining = e.observe()[0] as f64;
        let expected = 10_000.0 * (-1.0f64).exp(); // ≈ 3679
        assert!(
            (remaining - expected).abs() < 0.05 * expected,
            "remaining {remaining}, expected ≈ {expected}"
        );
        // On a 10k population the engine must actually leap, not fall
        // back to per-reaction stepping.
        assert!(e.leaps() > 0);
        assert!(
            e.firings() > 20 * (e.leaps() + e.exact_steps()),
            "{} firings in {} leaps + {} exact steps",
            e.firings(),
            e.leaps(),
            e.exact_steps()
        );
    }

    #[test]
    fn small_populations_fall_back_to_exact_stepping() {
        // 5 molecules: every reaction is critical / the CGP bound is tiny,
        // so the engine must take exact transitions and stay non-negative.
        let model = decay_model(5, 2.0);
        let mut e = AdaptiveTauEngine::new(model, 7, 0).unwrap();
        e.run_until(50.0);
        assert_eq!(e.observe(), vec![0]);
        assert_eq!(e.firings(), 5);
        assert_eq!(e.leaps(), 0, "no Poisson leap on a critical-only state");
        assert_eq!(e.exact_steps(), 5);
        assert!(e.counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn state_never_goes_negative_under_pressure() {
        let model = birth_death_model(3.0, 9.0, 15);
        let mut e = AdaptiveTauEngine::new(model, 11, 0)
            .unwrap()
            .with_epsilon(0.3);
        e.run_until(5.0);
        assert!(e.counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn absorbing_state_terminates() {
        let model = decay_model(0, 1.0);
        let mut e = AdaptiveTauEngine::new(model, 7, 0).unwrap();
        e.run_until(3.0);
        assert_eq!(e.time(), 3.0);
        assert_eq!(e.firings(), 0);
    }

    #[test]
    fn quantum_slicing_is_bit_identical() {
        let model = birth_death_model(500.0, 1.0, 400);
        let mk = || {
            AdaptiveTauEngine::new(Arc::clone(&model), 5, 3)
                .unwrap()
                .with_epsilon(0.05)
        };
        let mut whole = mk();
        let mut wc = SampleClock::new(0.0, 0.25);
        let mut ws = Vec::new();
        whole.run_sampled(6.0, &mut wc, |t, v| ws.push((t, v.to_vec())));

        let mut sliced = mk();
        let mut sc = SampleClock::new(0.0, 0.25);
        let mut ss = Vec::new();
        for t in [0.1, 0.33, 1.0, 1.01, 2.5, 4.99, 6.0] {
            sliced.run_sampled(t, &mut sc, |t, v| ss.push((t, v.to_vec())));
        }
        assert_eq!(ws, ss);
        assert_eq!(whole.counts(), sliced.counts());
        assert_eq!(whole.firings(), sliced.firings());
        assert_eq!(whole.leaps(), sliced.leaps());
        assert_eq!(whole.exact_steps(), sliced.exact_steps());
        assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn epsilon_trades_accuracy_for_leap_size() {
        // Larger ε ⇒ larger leaps ⇒ fewer transitions to the horizon.
        let model = birth_death_model(2000.0, 1.0, 2000);
        let run = |eps: f64| {
            let mut e = AdaptiveTauEngine::new(Arc::clone(&model), 3, 0)
                .unwrap()
                .with_epsilon(eps);
            e.run_until(4.0);
            e.leaps() + e.exact_steps()
        };
        let tight = run(0.01);
        let loose = run(0.1);
        assert!(
            loose * 3 < tight,
            "ε=0.1 used {loose} transitions, ε=0.01 used {tight}"
        );
    }

    #[test]
    fn catalytic_no_op_rules_do_not_panic() {
        // Regression: a model whose only enabled reaction has net-zero
        // stoichiometry leaves the CGP bound unbounded with an empty
        // critical block; the engine must take exact steps (like SSA on
        // the same model) instead of sampling an empty range.
        let mut m = Model::new("noop");
        let a = m.species("A");
        m.rule("touch")
            .consumes("A", 1)
            .produces("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        m.initial.add_atoms(a, 100);
        m.observe("A", a);
        let mut e = AdaptiveTauEngine::new(Arc::new(m), 9, 0).unwrap();
        e.run_until(1.0);
        assert_eq!(e.observe(), vec![100], "no-ops change nothing");
        assert!(e.firings() > 0, "but they do fire, like under SSA");
        assert_eq!(e.leaps(), 0);
    }

    #[test]
    fn incidence_cache_is_bit_identical_to_full_recompute() {
        // A multi-species chain where most transitions touch only a few
        // of the species, so the incidence refresh really skips work —
        // and must not change a single bit of the trajectory.
        let model = {
            let mut m = Model::new("chain");
            let n = 12;
            for i in 0..n {
                let name = format!("S{i}");
                let s = m.species(&name);
                m.initial.add_atoms(s, 200);
                m.observe(&name, s);
            }
            for i in 0..n {
                let from = format!("S{i}");
                let to = format!("S{}", (i + 1) % n);
                m.rule(&format!("r{i}"))
                    .consumes(&from, 1)
                    .produces(&to, 1)
                    .rate(1.0 + i as f64 * 0.1)
                    .build()
                    .unwrap();
            }
            Arc::new(m)
        };
        for seed in [1u64, 9, 42] {
            // 12 rules sit below the heuristic crossover, so the cache
            // side must be forced on for this comparison to test it.
            let mut fast = AdaptiveTauEngine::new(Arc::clone(&model), seed, 0)
                .unwrap()
                .with_epsilon(0.05)
                .with_incidence_cache();
            let mut slow = AdaptiveTauEngine::new(Arc::clone(&model), seed, 0)
                .unwrap()
                .with_epsilon(0.05)
                .with_full_recompute();
            // Slice the horizons differently too: the cache must survive
            // pending transitions across quantum boundaries.
            let mut fc = SampleClock::new(0.0, 0.25);
            let mut sc = SampleClock::new(0.0, 0.25);
            let mut fs = Vec::new();
            let mut ss = Vec::new();
            for t in [0.4, 1.0, 2.0] {
                fast.run_sampled(t, &mut fc, |t, v| fs.push((t, v.to_vec())));
            }
            slow.run_sampled(2.0, &mut sc, |t, v| ss.push((t, v.to_vec())));
            assert_eq!(fs, ss, "seed {seed}: sampled trajectories diverged");
            assert_eq!(fast.counts(), slow.counts(), "seed {seed}");
            assert_eq!(fast.firings(), slow.firings(), "seed {seed}");
            assert_eq!(fast.leaps(), slow.leaps(), "seed {seed}");
            assert_eq!(fast.exact_steps(), slow.exact_steps(), "seed {seed}");
        }
    }

    #[test]
    fn recompute_heuristic_crosses_over_at_the_pinned_rule_count() {
        // The kernel-path re-derivation put the crossover at zero:
        // incidence wins at every measured rule count (see
        // FULL_RECOMPUTE_MAX_RULES), so even the smallest buildable
        // model must default to the incidence cache. The equality pin
        // makes a silent bump of the constant fail here, forcing a
        // fresh measurement.
        assert_eq!(FULL_RECOMPUTE_MAX_RULES, 0, "re-derive before bumping");
        let cycle = |rules: usize| {
            let mut m = Model::new("cycle");
            for i in 0..rules {
                let name = format!("S{i}");
                let s = m.species(&name);
                m.initial.add_atoms(s, 50);
            }
            for i in 0..rules {
                m.rule(&format!("r{i}"))
                    .consumes(&format!("S{i}"), 1)
                    .produces(&format!("S{}", (i + 1) % rules), 1)
                    .rate(1.0)
                    .build()
                    .unwrap();
            }
            Arc::new(m)
        };
        for rules in [2, 3, 33, 300] {
            let at = AdaptiveTauEngine::new(cycle(rules), 1, 0).unwrap();
            assert!(!at.full_recompute(), "{rules} rules ⇒ incidence cache");
        }
        // Both overrides beat the heuristic, in both directions.
        let forced_cache = AdaptiveTauEngine::new(cycle(2), 1, 0)
            .unwrap()
            .with_incidence_cache();
        assert!(!forced_cache.full_recompute());
        let forced_full = AdaptiveTauEngine::new(cycle(2), 1, 0)
            .unwrap()
            .with_full_recompute();
        assert!(forced_full.full_recompute());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn out_of_range_epsilon_panics() {
        let model = decay_model(1, 1.0);
        let _ = AdaptiveTauEngine::new(model, 1, 0)
            .unwrap()
            .with_epsilon(1.5);
    }
}
