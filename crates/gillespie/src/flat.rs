//! Shared flat-model machinery of the leaping engines.
//!
//! Three integrators in this crate — fixed-step tau-leaping
//! ([`crate::tau_leap`]), adaptive tau-leaping ([`crate::adaptive`]) and
//! the leap phase of the hybrid engine ([`crate::hybrid`]) — operate on
//! the same reduced state: a *flat* model (no compartment patterns or
//! productions, every rule at the top level, mass-action laws only) whose
//! term collapses to a species-count vector. This module owns that
//! reduction:
//!
//! - [`FlatModelError`], the shared rejection type (each variant names the
//!   offending rule and the engine that refused it — the config layer
//!   surfaces these messages verbatim);
//! - `FlatModel` (crate-private), the compiled reactant/stoichiometry/rate
//!   vectors, derived from the same [`ModelDeps`] compilation the exact
//!   engines use for their reaction tables;
//! - the Cao–Gillespie–Petzold step-size bound (`FlatModel::cgp_tau_with`)
//!   with its highest-order-reaction `g_i` factors;
//! - the crate-private `poisson` sampler every leap draw consumes.

use cwc::model::Model;
use cwc::species::{Label, Species};
use rand::Rng;

use crate::deps::ModelDeps;

/// Error constructing a flat-model engine (fixed tau-leaping, adaptive
/// tau-leaping, or the hybrid SSA/tau engine).
///
/// Every variant names the offending rule *and* the engine that rejected
/// it, so a config-level failure pinpoints the model line to fix. The
/// exact engines (direct method, first-reaction) accept all of these
/// models; only the leaping state reduction requires flatness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatModelError {
    /// The model has a rule with compartment patterns or productions.
    NotFlat {
        /// Engine that rejected the model.
        engine: &'static str,
        /// Name of the offending rule.
        rule: String,
    },
    /// The model has a rule that does not apply at the top level.
    NotTopLevel {
        /// Engine that rejected the model.
        engine: &'static str,
        /// Name of the offending rule.
        rule: String,
    },
    /// The model has a rule with a non-mass-action kinetic law.
    NotMassAction {
        /// Engine that rejected the model.
        engine: &'static str,
        /// Name of the offending rule.
        rule: String,
    },
}

impl FlatModelError {
    /// Name of the rule the engine refused.
    pub fn rule(&self) -> &str {
        match self {
            FlatModelError::NotFlat { rule, .. }
            | FlatModelError::NotTopLevel { rule, .. }
            | FlatModelError::NotMassAction { rule, .. } => rule,
        }
    }
}

impl std::fmt::Display for FlatModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatModelError::NotFlat { engine, rule } => {
                write!(
                    f,
                    "rule `{rule}` uses compartments; {engine} needs a flat model"
                )
            }
            FlatModelError::NotTopLevel { engine, rule } => {
                write!(
                    f,
                    "rule `{rule}` applies inside a compartment; {engine} needs top-level rules"
                )
            }
            FlatModelError::NotMassAction { engine, rule } => {
                write!(
                    f,
                    "rule `{rule}` has a non-mass-action law; {engine} supports mass action only"
                )
            }
        }
    }
}

impl std::error::Error for FlatModelError {}

/// Compact CSR row storage: one offsets array plus one contiguous entry
/// array instead of a `Vec` per row. Two allocations total (the
/// per-instance engine constructors feel the difference on wide models)
/// and contiguous iteration for the per-draw sweeps. `rows[r]` indexes to
/// the row's slice.
#[derive(Debug, Clone, Default)]
pub(crate) struct Rows<T> {
    /// `offsets[r]..offsets[r + 1]` bounds row `r` in `entries`.
    offsets: Vec<u32>,
    entries: Vec<T>,
}

impl<T> Rows<T> {
    fn with_rows(rows: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Rows {
            offsets,
            entries: Vec::new(),
        }
    }

    fn push_row(&mut self, row: impl IntoIterator<Item = T>) {
        self.entries.extend(row);
        self.offsets.push(self.entries.len() as u32);
    }

    fn from_parts(offsets: Vec<u32>, entries: Vec<T>) -> Self {
        debug_assert_eq!(*offsets.last().unwrap() as usize, entries.len());
        Rows { offsets, entries }
    }
}

impl<T> std::ops::Index<usize> for Rows<T> {
    type Output = [T];
    fn index(&self, r: usize) -> &[T] {
        &self.entries[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }
}

/// A flat mass-action model compiled to dense index space: the state is
/// `Vec<i64>` over [`FlatModel::species`], and every leaping engine reads
/// its reactants, net stoichiometry and rates from here.
#[derive(Debug, Clone)]
pub(crate) struct FlatModel {
    /// Interned species, ascending — index space of the state vector.
    pub species: Vec<Species>,
    /// Per-rule reactant multiplicities, `(species index, count)`.
    pub reactants: Rows<(usize, u64)>,
    /// Per-rule net stoichiometric change per firing.
    pub delta: Rows<(usize, i64)>,
    /// Per-rule mass-action rate constants.
    pub rates: Vec<f64>,
    /// Per-species `(reaction order, copies required)` pairs over the
    /// rules consuming that species — the static inputs of the CGP
    /// `g_i` factor, precomputed so the tau-selection hot path avoids an
    /// O(rules × reactants) rescan per species.
    g_pairs: Rows<(u64, u64)>,
    /// Per-species CGP `g_i` when it does not depend on the copy number
    /// (no order-2/3 pair needing ≥2 copies of the species), `NaN` when
    /// it does. Most mass-action models are first-order in each
    /// reactant, making the per-draw `g_factor` table walk a constant
    /// load on the adaptive hot path.
    g_const: Vec<f64>,
    /// Species → rules whose *propensity depends on* that species (its
    /// reactants). When a transition changes species `i`, exactly the
    /// rules in `incidence[i]` can change propensity — the adaptive
    /// engine's O(affected) per-transition refresh reads this.
    pub incidence: Rows<usize>,
}

impl FlatModel {
    /// Compiles `model` for `engine` (the name appears in rejection
    /// messages), taking net stoichiometry from the shared [`ModelDeps`]
    /// compilation.
    pub fn compile(
        model: &Model,
        deps: &ModelDeps,
        engine: &'static str,
    ) -> Result<Self, FlatModelError> {
        let species: Vec<Species> = model.alphabet.all_species().collect();
        // Interned species come out ascending, so index lookup is a
        // binary search instead of a linear scan (compile is per-engine,
        // O(rules × reactants) lookups).
        let index_of = |s: Species| -> usize {
            species
                .binary_search(&s)
                .expect("species interned in this model")
        };
        let nrules = model.rules.len();
        let mut reactants: Rows<(usize, u64)> = Rows::with_rows(nrules);
        let mut delta: Rows<(usize, i64)> = Rows::with_rows(nrules);
        let mut rates = Vec::with_capacity(nrules);
        for (ri, rule) in model.rules.iter().enumerate() {
            if !rule.is_flat() {
                return Err(FlatModelError::NotFlat {
                    engine,
                    rule: rule.name.clone(),
                });
            }
            if rule.site != Label::TOP {
                return Err(FlatModelError::NotTopLevel {
                    engine,
                    rule: rule.name.clone(),
                });
            }
            if !rule.law.is_mass_action() {
                return Err(FlatModelError::NotMassAction {
                    engine,
                    rule: rule.name.clone(),
                });
            }
            reactants.push_row(rule.lhs.atoms.iter().map(|(s, n)| (index_of(s), n)));
            // Net stoichiometry straight from the compiled dependency
            // info (ascending species order, like the interned indices).
            delta.push_row(
                deps.rule(ri)
                    .site_delta
                    .iter()
                    .map(|&(s, v)| (index_of(s), v)),
            );
            rates.push(rule.rate);
        }
        // Per-species rows (g pairs, incidence) via counting sort: rules
        // land in ascending rule order per species, as the old per-species
        // append produced.
        let ns = species.len();
        let mut counts = vec![0u32; ns];
        for ri in 0..nrules {
            for &(i, _) in &reactants[ri] {
                counts[i] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(ns + 1);
        offsets.push(0u32);
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let total = *offsets.last().unwrap() as usize;
        let mut g_entries = vec![(0u64, 0u64); total];
        let mut inc_entries = vec![0usize; total];
        let mut cursor: Vec<u32> = offsets[..ns].to_vec();
        for ri in 0..nrules {
            let r = &reactants[ri];
            let order: u64 = r.iter().map(|&(_, n)| n).sum();
            for &(i, k) in r {
                let at = cursor[i] as usize;
                g_entries[at] = (order, k);
                inc_entries[at] = ri;
                cursor[i] += 1;
            }
        }
        let g_pairs = Rows::from_parts(offsets.clone(), g_entries);
        let incidence = Rows::from_parts(offsets, inc_entries);
        let g_const = (0..ns)
            .map(|i| {
                let mut g: f64 = 1.0;
                for &(order, k) in &g_pairs[i] {
                    g = g.max(match (order, k) {
                        (1, _) => 1.0,
                        (2, 1) => 2.0,
                        (3, 1) => 3.0,
                        // Copy-number-dependent entries: no constant g.
                        (2, 2) | (3, 2) | (3, 3) => return f64::NAN,
                        (o, _) => o as f64,
                    });
                }
                g
            })
            .collect();
        Ok(FlatModel {
            species,
            reactants,
            delta,
            rates,
            g_pairs,
            g_const,
            incidence,
        })
    }

    /// Number of rules.
    pub fn rules(&self) -> usize {
        self.rates.len()
    }

    /// The initial species-count vector of `model`.
    pub fn initial_state(&self, model: &Model) -> Vec<i64> {
        self.species
            .iter()
            .map(|&s| model.initial.atoms.count(s) as i64)
            .collect()
    }

    /// Mass-action propensity of rule `r` in `state`: rate times the
    /// product of per-reactant binomial selection counts (the same `h`
    /// the tree-matching engines compute on flat terms).
    pub fn propensity(&self, state: &[i64], r: usize) -> f64 {
        let mut h = 1.0;
        for &(i, k) in &self.reactants[r] {
            let n = state[i];
            if n < k as i64 {
                return 0.0;
            }
            h *= cwc::multiset::binomial(n as u64, k) as f64;
        }
        self.rates[r] * h
    }

    /// All propensities of `state`, written into a reusable buffer in
    /// rule order (the leaping engines' per-transition path).
    pub fn propensities_into(&self, state: &[i64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.rules()).map(|r| self.propensity(state, r)));
    }

    /// Current copy number of `species` in `state` (0 for species not in
    /// this model's alphabet).
    pub fn count(&self, state: &[i64], species: Species) -> u64 {
        self.species
            .iter()
            .position(|&s| s == species)
            .map(|i| state[i] as u64)
            .unwrap_or(0)
    }

    /// Evaluates `model`'s observables on `state` (top-level counts only,
    /// which is exact for flat models) — shared by every leaping engine's
    /// `observe`.
    pub fn observe(&self, model: &Model, state: &[i64]) -> Vec<u64> {
        model
            .observables
            .iter()
            .map(|o| self.count(state, o.species))
            .collect()
    }

    /// The Cao–Gillespie–Petzold highest-order factor `g_i` for species
    /// `i`: the largest correction over reactions consuming `i`, so that
    /// a relative change `epsilon / g_i` in `x_i` bounds the relative
    /// change of every propensity (Cao, Gillespie & Petzold 2006, eq. 27).
    fn g_factor(&self, i: usize, x: i64) -> f64 {
        // Constant-g fast path: same bits as the table walk below (each
        // entry it folds is the same literal the walk would produce).
        let g = self.g_const[i];
        if !g.is_nan() {
            return g;
        }
        let xf = x as f64;
        let mut g: f64 = 1.0;
        for &(order, k) in &self.g_pairs[i] {
            let gr = match (order, k) {
                (1, _) => 1.0,
                (2, 1) => 2.0,
                (2, 2) if x > 1 => 2.0 + 1.0 / (xf - 1.0),
                (2, 2) => 3.0,
                (3, 1) => 3.0,
                (3, 2) if x > 1 => 1.5 * (2.0 + 1.0 / (xf - 1.0)),
                (3, 2) => 4.5,
                (3, 3) if x > 2 => 3.0 + 1.0 / (xf - 1.0) + 2.0 / (xf - 2.0),
                (3, 3) => 6.0,
                // Higher orders: the coarse bound g = order is standard.
                (o, _) => o as f64,
            };
            g = g.max(gr);
        }
        g
    }

    /// The CGP adaptive leap bound: the largest `tau` such that the
    /// expected relative change of every propensity over the reactions
    /// selected by `include` stays within `epsilon`, accumulating into a
    /// reusable [`CgpScratch`] (the adaptive engine computes the bound on
    /// every transition draw; this keeps that path allocation-light).
    /// Returns `f64::INFINITY` when no included reaction moves any
    /// species (nothing bounds the leap).
    ///
    /// Per species `i` touched by an included reaction, with
    /// `mu_i = Σ_r d_ri a_r` and `sigma2_i = Σ_r d_ri² a_r`:
    /// `tau ≤ min(max(εx_i/g_i, 1)/|mu_i|, max(εx_i/g_i, 1)²/sigma2_i)`.
    pub fn cgp_tau_with<F>(
        &self,
        scratch: &mut CgpScratch,
        state: &[i64],
        props: &[f64],
        epsilon: f64,
        include: F,
    ) -> f64
    where
        F: Fn(usize) -> bool,
    {
        let n = self.species.len();
        let mu = &mut scratch.mu;
        let sigma2 = &mut scratch.sigma2;
        mu.clear();
        mu.resize(n, 0.0);
        sigma2.clear();
        sigma2.resize(n, 0.0);
        for (r, &a) in props.iter().enumerate() {
            if a <= 0.0 || !include(r) {
                continue;
            }
            for &(i, d) in &self.delta[r] {
                let df = d as f64;
                mu[i] += df * a;
                sigma2[i] += df * df * a;
            }
        }
        self.cgp_species_tau(scratch, state, epsilon)
    }

    /// [`cgp_tau_with`](Self::cgp_tau_with) over a pre-filtered rule set:
    /// `rules` must yield exactly the reactions the closure variant would
    /// keep (`a > 0` and included) — the adaptive hot path feeds it the
    /// enabled∧non-critical mask iterator, skipping the full-width scan.
    ///
    /// Sparse on both ends: only species actually touched by a yielded
    /// rule are accumulated, minimised over and re-zeroed, so the cost is
    /// O(yielded stoichiometry), not O(species). Bit-identical to the
    /// closure variant: the surviving rules accumulate in the same order
    /// per species, and the final fold is a minimum over per-species
    /// bounds — order-independent for the non-NaN values both compute.
    ///
    /// Contract: `scratch.mu`/`scratch.sigma2` are all-zero between
    /// calls (this function restores that before returning; resizing
    /// zero-fills). Callers switching a scratch over from
    /// [`cgp_tau_with`] must reset it first.
    pub(crate) fn cgp_tau_masked(
        &self,
        scratch: &mut CgpScratch,
        state: &[i64],
        props: &[f64],
        epsilon: f64,
        rules: impl Iterator<Item = usize>,
    ) -> f64 {
        let n = self.species.len();
        if scratch.mu.len() != n {
            scratch.mu.clear();
            scratch.mu.resize(n, 0.0);
            scratch.sigma2.clear();
            scratch.sigma2.resize(n, 0.0);
        }
        scratch.touched.clear();
        for r in rules {
            let a = props[r];
            debug_assert!(a > 0.0, "masked CGP fed a disabled rule");
            for &(i, d) in &self.delta[r] {
                let df = d as f64;
                if scratch.mu[i] == 0.0 && scratch.sigma2[i] == 0.0 {
                    scratch.touched.push(i);
                }
                scratch.mu[i] += df * a;
                scratch.sigma2[i] += df * df * a;
            }
        }
        let mut tau = f64::INFINITY;
        for &i in &scratch.touched {
            let (mu, sigma2) = (scratch.mu[i], scratch.sigma2[i]);
            if mu == 0.0 && sigma2 == 0.0 {
                continue;
            }
            let bound = (epsilon * state[i] as f64 / self.g_factor(i, state[i])).max(1.0);
            if mu != 0.0 {
                tau = tau.min(bound / mu.abs());
            }
            if sigma2 > 0.0 {
                tau = tau.min(bound * bound / sigma2);
            }
        }
        for &i in &scratch.touched {
            scratch.mu[i] = 0.0;
            scratch.sigma2[i] = 0.0;
        }
        tau
    }

    /// The shared per-species minimisation step of the CGP bound.
    fn cgp_species_tau(&self, scratch: &CgpScratch, state: &[i64], epsilon: f64) -> f64 {
        let mut tau = f64::INFINITY;
        for (i, &s) in state.iter().enumerate().take(self.species.len()) {
            let (mu, sigma2) = (scratch.mu[i], scratch.sigma2[i]);
            if mu == 0.0 && sigma2 == 0.0 {
                continue;
            }
            let bound = (epsilon * s as f64 / self.g_factor(i, s)).max(1.0);
            if mu != 0.0 {
                tau = tau.min(bound / mu.abs());
            }
            if sigma2 > 0.0 {
                tau = tau.min(bound * bound / sigma2);
            }
        }
        tau
    }
}

/// Reusable per-species accumulators for [`FlatModel::cgp_tau_with`] and
/// its sparse sibling `cgp_tau_masked` (which also tracks the touched
/// species so it can restore the all-zero invariant in O(touched)).
#[derive(Debug, Clone, Default)]
pub(crate) struct CgpScratch {
    mu: Vec<f64>,
    sigma2: Vec<f64>,
    touched: Vec<usize>,
}

/// Poisson sampling: Knuth's product method for small λ, normal
/// approximation (Box–Muller) for large λ.
pub(crate) fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // N(λ, λ) approximation, clamped at zero.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::sim_rng;
    use cwc::model::Model;
    use std::sync::Arc;

    fn schlogl_like() -> (Model, Arc<ModelDeps>) {
        let mut m = Model::new("s");
        let x = m.species("X");
        m.rule("auto")
            .consumes("X", 2)
            .produces("X", 3)
            .rate(0.03)
            .build()
            .unwrap();
        m.rule("tri")
            .consumes("X", 3)
            .produces("X", 2)
            .rate(1e-4)
            .build()
            .unwrap();
        m.rule("in").produces("X", 1).rate(200.0).build().unwrap();
        m.rule("out").consumes("X", 1).rate(3.5).build().unwrap();
        m.initial.add_atoms(x, 250);
        m.observe("X", x);
        let deps = Arc::new(ModelDeps::compile(&m));
        (m, deps)
    }

    #[test]
    fn compile_matches_model_shape() {
        let (m, deps) = schlogl_like();
        let flat = FlatModel::compile(&m, &deps, "test").unwrap();
        assert_eq!(flat.rules(), 4);
        assert_eq!(flat.species.len(), 1);
        let state = flat.initial_state(&m);
        assert_eq!(state, vec![250]);
        // Trimolecular propensity is rate * C(250, 3).
        let expected = 1e-4 * cwc::multiset::binomial(250, 3) as f64;
        assert!((flat.propensity(&state, 1) - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn rejection_names_rule_and_engine() {
        let mut m = Model::new("c");
        m.rule("transport")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let deps = Arc::new(ModelDeps::compile(&m));
        let err = FlatModel::compile(&m, &deps, "adaptive tau-leaping").unwrap_err();
        assert_eq!(err.rule(), "transport");
        let msg = err.to_string();
        assert!(msg.contains("`transport`"), "{msg}");
        assert!(msg.contains("adaptive tau-leaping"), "{msg}");
    }

    #[test]
    fn g_factor_covers_the_cgp_table() {
        let (m, deps) = schlogl_like();
        let flat = FlatModel::compile(&m, &deps, "test").unwrap();
        // X appears as reactant of order 1 (out), order 2 k=2 (auto) and
        // order 3 k=3 (tri): the trimolecular term dominates.
        let g = flat.g_factor(0, 250);
        let expected = 3.0 + 1.0 / 249.0 + 2.0 / 248.0;
        assert!((g - expected).abs() < 1e-12, "g = {g}");
        // Tiny populations use the capped constants, no division by zero.
        assert!(flat.g_factor(0, 1).is_finite());
        assert!(flat.g_factor(0, 2).is_finite());
    }

    #[test]
    fn cgp_tau_scales_with_epsilon_and_excludes_reactions() {
        let (m, deps) = schlogl_like();
        let flat = FlatModel::compile(&m, &deps, "test").unwrap();
        let state = flat.initial_state(&m);
        let mut props = Vec::new();
        flat.propensities_into(&state, &mut props);
        let mut scratch = CgpScratch::default();
        let t1 = flat.cgp_tau_with(&mut scratch, &state, &props, 0.01, |_| true);
        let t5 = flat.cgp_tau_with(&mut scratch, &state, &props, 0.05, |_| true);
        assert!(t1 > 0.0 && t1.is_finite());
        assert!(t5 > t1, "larger epsilon must allow larger leaps");
        // Excluding every reaction leaves the leap unbounded.
        assert_eq!(
            flat.cgp_tau_with(&mut scratch, &state, &props, 0.05, |_| false),
            f64::INFINITY
        );
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = sim_rng(1, 1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut rng = sim_rng(2, 1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 200.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = sim_rng(3, 1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }
}
