//! Trajectories, samples, and time-aligned cuts.
//!
//! The simulation pipeline streams [`Sample`]s out of the engines; the
//! alignment stage groups them into [`Cut`]s — "an array containing the
//! results of all simulations at a given simulation time" — which is the
//! unit the analysis pipeline consumes.

/// One observation of one trajectory at one grid time.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Simulation instance (trajectory) id.
    pub instance: u64,
    /// Simulation time of the observation (a τ-grid point).
    pub time: f64,
    /// Observable values, in the model's observable order.
    pub values: Vec<u64>,
}

/// All trajectories' values at one grid time, ready for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    /// The common simulation time.
    pub time: f64,
    /// `values[i]` holds instance `i`'s observables at `time`.
    pub values: Vec<Vec<u64>>,
}

impl Cut {
    /// Number of trajectories in the cut.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Extracts observable `k` across all trajectories as `f64`s.
    pub fn observable(&self, k: usize) -> Vec<f64> {
        self.values.iter().map(|v| v[k] as f64).collect()
    }
}

/// A full trajectory of one instance (used by tests and small runs; the
/// streaming pipeline never materialises these for big experiments).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    /// Simulation instance id.
    pub instance: u64,
    /// Grid times.
    pub times: Vec<f64>,
    /// One row of observable values per grid time.
    pub values: Vec<Vec<u64>>,
}

impl Trajectory {
    /// Creates an empty trajectory for `instance`.
    pub fn new(instance: u64) -> Self {
        Trajectory {
            instance,
            ..Trajectory::default()
        }
    }

    /// Appends a sample (times must be non-decreasing).
    ///
    /// # Panics
    ///
    /// Panics when `time` goes backwards.
    pub fn push(&mut self, time: f64, values: Vec<u64>) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "trajectory times must be non-decreasing");
        }
        self.times.push(time);
        self.values.push(values);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Column `k` as `f64`s (one value per grid time).
    pub fn observable(&self, k: usize) -> Vec<f64> {
        self.values.iter().map(|v| v[k] as f64).collect()
    }
}

/// Groups samples from many trajectories into time-aligned cuts.
///
/// Rebuilding cuts from an unordered sample stream is the job of the
/// pipeline's alignment stage (`cwcsim::alignment`); this helper is the
/// batch equivalent used by tests and by the GPU back-end, which produces
/// samples instance-major.
pub fn cuts_from_samples(mut samples: Vec<Sample>, instances: usize) -> Vec<Cut> {
    samples.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .expect("sample times are not NaN")
            .then(a.instance.cmp(&b.instance))
    });
    let mut cuts: Vec<Cut> = Vec::new();
    for s in samples {
        let need_new = match cuts.last() {
            Some(c) => (c.time - s.time).abs() > 1e-12,
            None => true,
        };
        if need_new {
            cuts.push(Cut {
                time: s.time,
                values: Vec::with_capacity(instances),
            });
        }
        cuts.last_mut().expect("just pushed").values.push(s.values);
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_accumulates_in_order() {
        let mut t = Trajectory::new(3);
        assert!(t.is_empty());
        t.push(0.0, vec![1, 2]);
        t.push(1.0, vec![3, 4]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.observable(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn trajectory_rejects_time_travel() {
        let mut t = Trajectory::new(0);
        t.push(1.0, vec![]);
        t.push(0.5, vec![]);
    }

    #[test]
    fn cut_accessors() {
        let c = Cut {
            time: 2.0,
            values: vec![vec![1, 10], vec![3, 30]],
        };
        assert_eq!(c.width(), 2);
        assert_eq!(c.observable(0), vec![1.0, 3.0]);
        assert_eq!(c.observable(1), vec![10.0, 30.0]);
    }

    #[test]
    fn cuts_from_samples_groups_and_orders() {
        let samples = vec![
            Sample {
                instance: 1,
                time: 1.0,
                values: vec![11],
            },
            Sample {
                instance: 0,
                time: 0.0,
                values: vec![0],
            },
            Sample {
                instance: 0,
                time: 1.0,
                values: vec![10],
            },
            Sample {
                instance: 1,
                time: 0.0,
                values: vec![1],
            },
        ];
        let cuts = cuts_from_samples(samples, 2);
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0].time, 0.0);
        assert_eq!(cuts[0].values, vec![vec![0], vec![1]]);
        assert_eq!(cuts[1].time, 1.0);
        assert_eq!(cuts[1].values, vec![vec![10], vec![11]]);
    }

    #[test]
    fn cuts_from_empty_is_empty() {
        assert!(cuts_from_samples(Vec::new(), 0).is_empty());
    }
}
