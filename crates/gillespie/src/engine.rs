//! Engine-agnostic quantum execution: the seam between the stochastic
//! integrators and every parallel back-end.
//!
//! The paper's architecture is deliberately engine-neutral — the farm of
//! "sim eng" boxes only requires that a task advance by one simulation
//! quantum and emit samples on the τ grid. This module captures that
//! contract as the [`QuantumEngine`] trait and packages the five
//! integrators of this crate behind the concrete [`Engine`] enum, so tasks
//! stay `Clone + Send` without boxing and every downstream layer (task
//! farm, distributed emulation, simulated GPGPU, benchmarks) is written
//! once against the abstraction.
//!
//! [`BatchEngine`] is the batch-aware seam alongside it: the same quantum
//! contract for an engine that advances a whole *batch* of replicas in
//! lockstep over SoA state (the [`crate::batch`] tier). Workers pull whole
//! batches through it instead of single instances.
//!
//! [`EngineKind`] is the *configuration-level* selector — a small `Copy`
//! value that travels in `SimConfig` and across the wire to remote farms —
//! and [`EngineKind::build`] is the only place engines are constructed.
//! Prefer the validated constructors ([`EngineKind::tau_leap`],
//! [`EngineKind::adaptive_tau`], [`EngineKind::hybrid`],
//! [`EngineKind::batched`]) over struct literals: they reject bad knobs at
//! construction instead of at run start.
//!
//! ## The quantum contract
//!
//! An engine advanced to `t_goal` in any number of slices must produce the
//! same trajectory, samples and event counts as one monolithic run: the
//! exact engines keep their drawn-but-unfired event pending across
//! boundaries, the leaping engines keep their drawn-but-uncommitted
//! leap/transition pending, and the hybrid engine additionally pins its
//! phase-switch points to reaction counts rather than horizons. The unit
//! and property tests of each engine module pin this down; the pipeline's
//! seq-vs-par bit-for-bit tests rely on it.

use std::fmt;
use std::sync::Arc;

use cwc::model::Model;
use cwc::term::Term;

use crate::adaptive::AdaptiveTauEngine;
use crate::deps::ModelDeps;
use crate::first_reaction::FirstReactionEngine;
use crate::flat::FlatModelError;
use crate::hybrid::HybridEngine;
use crate::ssa::{SampleClock, SsaEngine, StepOutcome};
use crate::tau_leap::TauLeapEngine;

/// Everything one quantum of one instance produced.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumOutcome {
    /// `(grid time, observable values)` pairs emitted in the quantum,
    /// in time order.
    pub samples: Vec<(f64, Vec<u64>)>,
    /// Reaction firings committed during the quantum (for workload
    /// accounting; a tau-leap counts every firing of its committed leaps).
    pub events: u64,
}

/// The farm-facing contract of a stochastic simulation engine.
///
/// One call to [`advance_quantum`](QuantumEngine::advance_quantum) is what
/// a farm worker, a remote farm or a GPGPU "kernel" executes per
/// scheduling round. Implementations must be *slicing-invariant*: any
/// partition of `[0, t_end]` into quanta yields the same trajectory and
/// sample stream.
pub trait QuantumEngine {
    /// Advances the engine to `t_goal`, emitting every sample the
    /// persistent `clock` yields within the quantum.
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome;

    /// Current simulation time.
    fn time(&self) -> f64;

    /// Instance id of this trajectory.
    fn instance(&self) -> u64;

    /// Evaluates the model's observables on the current state.
    fn observe(&self) -> Vec<u64>;

    /// Total reaction firings so far.
    fn events(&self) -> u64;
}

/// The farm-facing contract of a *batched* stochastic simulation engine:
/// one value advances `width` replicas of one model in lockstep, each
/// replica owning the RNG stream (and therefore the exact trajectory) of
/// scalar instance `first_instance + r`.
///
/// The quantum contract of [`QuantumEngine`] applies per replica:
/// advancing the batch to `t_goal` in any number of slices yields, for
/// every replica, the same samples and event counts as the corresponding
/// scalar engine advanced through the same slices. The batch is in
/// lockstep *at quantum boundaries* — every replica's clock reads exactly
/// `t_goal` after a call — while event times diverge freely inside a
/// quantum.
pub trait BatchEngine {
    /// Advances every replica to `t_goal`, emitting each replica's grid
    /// samples through its own persistent clock (`clocks[r]` belongs to
    /// replica `r`; `clocks.len()` must equal [`width`](BatchEngine::width)).
    /// Returns one [`QuantumOutcome`] per replica, in replica order.
    fn advance_quantum_batch(
        &mut self,
        t_goal: f64,
        clocks: &mut [SampleClock],
    ) -> Vec<QuantumOutcome>;

    /// Number of replicas in the batch.
    fn width(&self) -> usize;

    /// Scalar instance id of replica 0; replica `r` is instance
    /// `first_instance() + r`.
    fn first_instance(&self) -> u64;

    /// Lockstep simulation time of the batch.
    fn time(&self) -> f64;

    /// Evaluates the model's observables on replica `r`'s current state.
    fn observe_replica(&self, r: usize) -> Vec<u64>;

    /// Total reaction firings of replica `r` so far.
    fn events_replica(&self, r: usize) -> u64;
}

impl QuantumEngine for SsaEngine {
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        let mut samples = Vec::new();
        let events = self.run_sampled(t_goal, clock, |t, v| samples.push((t, v.to_vec())));
        QuantumOutcome { samples, events }
    }

    fn time(&self) -> f64 {
        SsaEngine::time(self)
    }

    fn instance(&self) -> u64 {
        SsaEngine::instance(self)
    }

    fn observe(&self) -> Vec<u64> {
        SsaEngine::observe(self)
    }

    fn events(&self) -> u64 {
        self.steps()
    }
}

impl QuantumEngine for FirstReactionEngine {
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        let mut samples = Vec::new();
        let events = self.run_sampled(t_goal, clock, |t, v| samples.push((t, v.to_vec())));
        QuantumOutcome { samples, events }
    }

    fn time(&self) -> f64 {
        FirstReactionEngine::time(self)
    }

    fn instance(&self) -> u64 {
        FirstReactionEngine::instance(self)
    }

    fn observe(&self) -> Vec<u64> {
        FirstReactionEngine::observe(self)
    }

    fn events(&self) -> u64 {
        self.steps()
    }
}

impl QuantumEngine for TauLeapEngine {
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        let mut samples = Vec::new();
        let events = self.run_sampled(t_goal, clock, |t, v| samples.push((t, v.to_vec())));
        QuantumOutcome { samples, events }
    }

    fn time(&self) -> f64 {
        TauLeapEngine::time(self)
    }

    fn instance(&self) -> u64 {
        TauLeapEngine::instance(self)
    }

    fn observe(&self) -> Vec<u64> {
        TauLeapEngine::observe(self)
    }

    fn events(&self) -> u64 {
        self.firings()
    }
}

impl QuantumEngine for AdaptiveTauEngine {
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        let mut samples = Vec::new();
        let events = self.run_sampled(t_goal, clock, |t, v| samples.push((t, v.to_vec())));
        QuantumOutcome { samples, events }
    }

    fn time(&self) -> f64 {
        AdaptiveTauEngine::time(self)
    }

    fn instance(&self) -> u64 {
        AdaptiveTauEngine::instance(self)
    }

    fn observe(&self) -> Vec<u64> {
        AdaptiveTauEngine::observe(self)
    }

    fn events(&self) -> u64 {
        self.firings()
    }
}

impl QuantumEngine for HybridEngine {
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        let mut samples = Vec::new();
        let events = self.run_sampled(t_goal, clock, |t, v| samples.push((t, v.to_vec())));
        QuantumOutcome { samples, events }
    }

    fn time(&self) -> f64 {
        HybridEngine::time(self)
    }

    fn instance(&self) -> u64 {
        HybridEngine::instance(self)
    }

    fn observe(&self) -> Vec<u64> {
        HybridEngine::observe(self)
    }

    fn events(&self) -> u64 {
        self.firings()
    }
}

/// Configuration-level engine selector.
///
/// A plain `Copy` value: it lives in the simulation config, crosses the
/// wire to remote farms, and is the single source of truth for which
/// integrator a run uses. Construct engines with [`EngineKind::build`].
///
/// # Examples
///
/// ```
/// use cwc::model::Model;
/// use gillespie::engine::EngineKind;
/// use std::sync::Arc;
///
/// let mut m = Model::new("decay");
/// let a = m.species("A");
/// m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
/// m.initial.add_atoms(a, 50);
/// m.observe("A", a);
///
/// let mut engine = EngineKind::TauLeap { tau: 0.05 }
///     .build(Arc::new(m), 42, 0)
///     .unwrap();
/// engine.run_until(2.0);
/// assert!(engine.observe()[0] <= 50);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum EngineKind {
    /// Gillespie's exact direct method (the paper's integrator). Works on
    /// any CWC model, compartments included.
    #[default]
    Ssa,
    /// Approximate Poisson tau-leaping with native leap length `tau`.
    /// Flat, top-level, mass-action models only (StochKit's alternative
    /// integrator, an extension beyond the paper).
    TauLeap {
        /// Native leap length of the integrator (*not* the sampling τ).
        tau: f64,
    },
    /// Gillespie's first-reaction method: exact, same process law as the
    /// direct method with a different randomness consumption — the
    /// distributional oracle.
    FirstReaction,
    /// Adaptive tau-leaping: Cao–Gillespie–Petzold step-size selection
    /// with critical-reaction partitioning and an exact-SSA fallback.
    /// Flat, top-level, mass-action models only.
    AdaptiveTau {
        /// Relative-propensity-change bound ε (Cao et al. recommend
        /// 0.03–0.05; must be in `(0, 1)`).
        epsilon: f64,
    },
    /// Hybrid exact/approximate: incremental-table SSA segments with
    /// CGP-sized Poisson leaps when propensities stratify. Flat,
    /// top-level, mass-action models only.
    Hybrid {
        /// Relative-propensity-change bound ε of the leap phase.
        epsilon: f64,
        /// Expected firings per candidate leap above which the engine
        /// leaves the exact phase (must be finite and ≥ 1).
        threshold: f64,
    },
    /// Batched SoA direct method: sim workers advance whole batches of up
    /// to `width` replicas in lockstep over structure-of-arrays state (the
    /// [`crate::batch`] tier). Exact — every replica is bit-for-bit the
    /// scalar [`EngineKind::Ssa`] trajectory of the same instance. Flat,
    /// top-level, mass-action models only.
    Batched {
        /// Replicas per batch (must be ≥ 1). Instances are chunked into
        /// `ceil(instances / width)` batches; the last may be narrower.
        width: usize,
    },
}

impl EngineKind {
    /// Short stable name, for tables, CSV headers and CLIs.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Ssa => "ssa",
            EngineKind::TauLeap { .. } => "tau-leap",
            EngineKind::FirstReaction => "first-reaction",
            EngineKind::AdaptiveTau { .. } => "adaptive-tau",
            EngineKind::Hybrid { .. } => "hybrid",
            EngineKind::Batched { .. } => "batched",
        }
    }

    /// Validated constructor for [`EngineKind::TauLeap`]: rejects a
    /// non-positive or non-finite leap length at construction time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidTau`] for a bad leap length.
    ///
    /// # Examples
    ///
    /// ```
    /// use gillespie::engine::{EngineError, EngineKind};
    ///
    /// let kind = EngineKind::tau_leap(0.05).unwrap();
    /// assert_eq!(kind, EngineKind::TauLeap { tau: 0.05 });
    /// assert!(matches!(
    ///     EngineKind::tau_leap(0.0),
    ///     Err(EngineError::InvalidTau { .. })
    /// ));
    /// ```
    pub fn tau_leap(tau: f64) -> Result<Self, EngineError> {
        let kind = EngineKind::TauLeap { tau };
        kind.validate()?;
        Ok(kind)
    }

    /// Validated constructor for [`EngineKind::AdaptiveTau`]: rejects a
    /// CGP bound outside `(0, 1)` at construction time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidEpsilon`] for a bad bound.
    ///
    /// # Examples
    ///
    /// ```
    /// use gillespie::engine::{EngineError, EngineKind};
    ///
    /// let kind = EngineKind::adaptive_tau(0.05).unwrap();
    /// assert_eq!(kind, EngineKind::AdaptiveTau { epsilon: 0.05 });
    /// assert!(matches!(
    ///     EngineKind::adaptive_tau(1.5),
    ///     Err(EngineError::InvalidEpsilon { .. })
    /// ));
    /// ```
    pub fn adaptive_tau(epsilon: f64) -> Result<Self, EngineError> {
        let kind = EngineKind::AdaptiveTau { epsilon };
        kind.validate()?;
        Ok(kind)
    }

    /// Validated constructor for [`EngineKind::Hybrid`]: rejects a CGP
    /// bound outside `(0, 1)` or a switch threshold below 1 / non-finite
    /// at construction time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidEpsilon`] or
    /// [`EngineError::InvalidThreshold`] for bad knobs.
    ///
    /// # Examples
    ///
    /// ```
    /// use gillespie::engine::{EngineError, EngineKind};
    ///
    /// let kind = EngineKind::hybrid(0.05, 8.0).unwrap();
    /// assert_eq!(
    ///     kind,
    ///     EngineKind::Hybrid { epsilon: 0.05, threshold: 8.0 }
    /// );
    /// assert!(matches!(
    ///     EngineKind::hybrid(0.05, 0.5),
    ///     Err(EngineError::InvalidThreshold { .. })
    /// ));
    /// ```
    pub fn hybrid(epsilon: f64, threshold: f64) -> Result<Self, EngineError> {
        let kind = EngineKind::Hybrid { epsilon, threshold };
        kind.validate()?;
        Ok(kind)
    }

    /// Validated constructor for [`EngineKind::Batched`]: rejects a zero
    /// batch width at construction time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidWidth`] when `width` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use gillespie::engine::{EngineError, EngineKind};
    ///
    /// let kind = EngineKind::batched(64).unwrap();
    /// assert_eq!(kind, EngineKind::Batched { width: 64 });
    /// assert!(matches!(
    ///     EngineKind::batched(0),
    ///     Err(EngineError::InvalidWidth { .. })
    /// ));
    /// ```
    pub fn batched(width: usize) -> Result<Self, EngineError> {
        let kind = EngineKind::Batched { width };
        kind.validate()?;
        Ok(kind)
    }

    /// Checks the model-independent parameters of this kind — the single
    /// owner of the leap-length/epsilon/threshold rules, shared by
    /// [`EngineKind::build`] and config-level validation.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidTau`] for a non-positive or
    /// non-finite tau-leap length, [`EngineError::InvalidEpsilon`] for a
    /// CGP bound outside `(0, 1)`, [`EngineError::InvalidThreshold`]
    /// for a hybrid switch threshold below 1 or non-finite, and
    /// [`EngineError::InvalidWidth`] for a zero batch width.
    pub fn validate(&self) -> Result<(), EngineError> {
        match *self {
            EngineKind::TauLeap { tau } if !(tau > 0.0 && tau.is_finite()) => {
                Err(EngineError::InvalidTau { tau })
            }
            EngineKind::Batched { width } if width == 0 => Err(EngineError::InvalidWidth { width }),
            EngineKind::AdaptiveTau { epsilon } | EngineKind::Hybrid { epsilon, .. }
                if !(epsilon > 0.0 && epsilon < 1.0) =>
            {
                Err(EngineError::InvalidEpsilon { epsilon })
            }
            EngineKind::Hybrid { threshold, .. }
                if !(threshold >= 1.0 && threshold.is_finite()) =>
            {
                Err(EngineError::InvalidThreshold { threshold })
            }
            _ => Ok(()),
        }
    }

    /// Builds the engine for `instance`, seeded from `base_seed`,
    /// compiling the model's dependency graph locally. When building many
    /// instances of one model (a farm), compile once with
    /// [`ModelDeps::compile`] and use
    /// [`build_with_deps`](EngineKind::build_with_deps).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the kind cannot drive `model`:
    /// tau-leaping rejects compartment rules, nested-site rules,
    /// non-mass-action laws and non-positive `tau`.
    pub fn build(
        self,
        model: Arc<Model>,
        base_seed: u64,
        instance: u64,
    ) -> Result<Engine, EngineError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        self.build_with_deps(model, deps, base_seed, instance)
    }

    /// Builds the engine for `instance`, sharing an already-compiled
    /// dependency graph across instances. Every integrator consumes the
    /// compilation: the exact engines drive their incremental reaction
    /// tables with it (the hybrid's exact phase included), and the leaping
    /// engines take their stoichiometry vectors from it.
    ///
    /// # Errors
    ///
    /// Same as [`EngineKind::build`].
    pub fn build_with_deps(
        self,
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Result<Engine, EngineError> {
        self.validate()?;
        match self {
            EngineKind::Ssa => Ok(Engine::Ssa(SsaEngine::with_deps(
                model, deps, base_seed, instance,
            ))),
            EngineKind::FirstReaction => Ok(Engine::FirstReaction(FirstReactionEngine::with_deps(
                model, deps, base_seed, instance,
            ))),
            EngineKind::TauLeap { tau } => {
                let engine = TauLeapEngine::with_deps(model, deps, base_seed, instance)?;
                Ok(Engine::TauLeap(engine.with_tau(tau)))
            }
            EngineKind::AdaptiveTau { epsilon } => {
                let engine = AdaptiveTauEngine::with_deps(model, deps, base_seed, instance)?;
                Ok(Engine::AdaptiveTau(Box::new(engine.with_epsilon(epsilon))))
            }
            EngineKind::Hybrid { epsilon, threshold } => {
                let engine = HybridEngine::with_deps(model, deps, base_seed, instance)?;
                Ok(Engine::Hybrid(Box::new(
                    engine.with_epsilon(epsilon).with_threshold(threshold),
                )))
            }
            EngineKind::Batched { .. } => {
                // Per-instance builds of the batched kind (remote farms,
                // device fallbacks, per-instance reference paths) hand out
                // the scalar direct method: a batch replica is *defined*
                // as bit-for-bit that scalar trajectory, so the scalar
                // engine is its exact single-instance materialization.
                // The model contract is still the batch tier's: reject
                // non-flat models here, naming the offending rule, so a
                // batched run fails at start everywhere, not just where a
                // real batch is built.
                crate::batch::BatchedSsaEngine::check_model(&model, &deps)?;
                Ok(Engine::Ssa(SsaEngine::with_deps(
                    model, deps, base_seed, instance,
                )))
            }
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::TauLeap { tau } => write!(f, "tau-leap(τ={tau})"),
            EngineKind::AdaptiveTau { epsilon } => write!(f, "adaptive-tau(ε={epsilon})"),
            EngineKind::Hybrid { epsilon, threshold } => {
                write!(f, "hybrid(ε={epsilon}, θ={threshold})")
            }
            EngineKind::Batched { width } => write!(f, "batched(w={width})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Error building an engine from an [`EngineKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A flat-only engine (tau-leaping, adaptive tau-leaping, the hybrid
    /// SSA/tau engine, the batched SSA engine) cannot drive this model
    /// (compartments, nested sites or non-mass-action laws); the inner
    /// error names the engine and the offending rule.
    FlatModel(FlatModelError),
    /// The configured leap length is not positive and finite.
    InvalidTau {
        /// The offending value.
        tau: f64,
    },
    /// The configured CGP bound ε is outside `(0, 1)`.
    InvalidEpsilon {
        /// The offending value.
        epsilon: f64,
    },
    /// The configured hybrid switch threshold is below 1 or non-finite.
    InvalidThreshold {
        /// The offending value.
        threshold: f64,
    },
    /// The configured batch width is zero.
    InvalidWidth {
        /// The offending value.
        width: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::FlatModel(e) => write!(f, "{e}"),
            EngineError::InvalidTau { tau } => {
                write!(
                    f,
                    "tau-leap leap length must be positive and finite, got {tau}"
                )
            }
            EngineError::InvalidEpsilon { epsilon } => {
                write!(
                    f,
                    "adaptive/hybrid epsilon must be in (0, 1), got {epsilon}"
                )
            }
            EngineError::InvalidThreshold { threshold } => {
                write!(
                    f,
                    "hybrid switch threshold must be finite and >= 1, got {threshold}"
                )
            }
            EngineError::InvalidWidth { width } => {
                write!(f, "batched width must be >= 1, got {width}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FlatModelError> for EngineError {
    fn from(e: FlatModelError) -> Self {
        EngineError::FlatModel(e)
    }
}

/// Outcome of one atomic engine transition ([`Engine::step`]): a reaction
/// for the exact engines, one committed leap for tau-leaping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineStep {
    /// The engine advanced by `dt`, firing `events` reactions.
    Advanced {
        /// Time that elapsed.
        dt: f64,
        /// Reactions fired (1 for exact engines, the leap total for
        /// tau-leaping).
        events: u64,
    },
    /// No reaction is enabled; the state is absorbing.
    Exhausted,
}

/// A concrete simulation engine: one of the five integrators, behind one
/// `Clone + Send` value (no boxing, no generics in the task types).
///
/// All methods dispatch to the wrapped engine; the [`QuantumEngine`] impl
/// delegates to the inherent methods, so call sites need no trait import.
#[derive(Debug, Clone)]
pub enum Engine {
    /// Exact direct method.
    Ssa(SsaEngine),
    /// Approximate fixed-step Poisson tau-leaping.
    TauLeap(TauLeapEngine),
    /// Exact first-reaction method.
    FirstReaction(FirstReactionEngine),
    /// Approximate adaptive (CGP) tau-leaping (boxed: the incremental
    /// hot path carries SoA rows, criticality epochs and reusable
    /// buffers, and would otherwise dominate the size of every task
    /// that carries this enum).
    AdaptiveTau(Box<AdaptiveTauEngine>),
    /// Hybrid exact/approximate engine (boxed: it embeds a full exact
    /// engine plus the flat reduction, and would otherwise dominate the
    /// size of every task that carries this enum).
    Hybrid(Box<HybridEngine>),
}

impl Engine {
    /// The configuration that would rebuild this engine. An engine built
    /// from [`EngineKind::Batched`] reports [`EngineKind::Ssa`]: the
    /// per-instance materialization of a batch replica *is* the scalar
    /// direct method, and rebuilding it as such is bit-for-bit faithful.
    pub fn kind(&self) -> EngineKind {
        match self {
            Engine::Ssa(_) => EngineKind::Ssa,
            Engine::TauLeap(e) => EngineKind::TauLeap { tau: e.tau() },
            Engine::FirstReaction(_) => EngineKind::FirstReaction,
            Engine::AdaptiveTau(e) => EngineKind::AdaptiveTau {
                epsilon: e.epsilon(),
            },
            Engine::Hybrid(e) => EngineKind::Hybrid {
                epsilon: e.epsilon(),
                threshold: e.threshold(),
            },
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        match self {
            Engine::Ssa(e) => e.time(),
            Engine::TauLeap(e) => e.time(),
            Engine::FirstReaction(e) => e.time(),
            Engine::AdaptiveTau(e) => e.time(),
            Engine::Hybrid(e) => e.time(),
        }
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        match self {
            Engine::Ssa(e) => e.instance(),
            Engine::TauLeap(e) => e.instance(),
            Engine::FirstReaction(e) => e.instance(),
            Engine::AdaptiveTau(e) => e.instance(),
            Engine::Hybrid(e) => e.instance(),
        }
    }

    /// Evaluates the model's observables on the current state.
    pub fn observe(&self) -> Vec<u64> {
        match self {
            Engine::Ssa(e) => e.observe(),
            Engine::TauLeap(e) => e.observe(),
            Engine::FirstReaction(e) => e.observe(),
            Engine::AdaptiveTau(e) => e.observe(),
            Engine::Hybrid(e) => e.observe(),
        }
    }

    /// Total reaction firings so far.
    pub fn events(&self) -> u64 {
        match self {
            Engine::Ssa(e) => e.steps(),
            Engine::TauLeap(e) => e.firings(),
            Engine::FirstReaction(e) => e.steps(),
            Engine::AdaptiveTau(e) => e.firings(),
            Engine::Hybrid(e) => e.firings(),
        }
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        match self {
            Engine::Ssa(e) => e.model(),
            Engine::TauLeap(e) => e.model(),
            Engine::FirstReaction(e) => e.model(),
            Engine::AdaptiveTau(e) => e.model(),
            Engine::Hybrid(e) => e.model(),
        }
    }

    /// The current CWC term, for the term-based engines (`None` for the
    /// leaping and hybrid engines, whose committed state is a
    /// species-count vector).
    pub fn term(&self) -> Option<&Term> {
        match self {
            Engine::Ssa(e) => Some(e.term()),
            Engine::FirstReaction(e) => Some(e.term()),
            Engine::TauLeap(_) | Engine::AdaptiveTau(_) | Engine::Hybrid(_) => None,
        }
    }

    /// Executes one atomic transition: one reaction (exact engines) or
    /// one committed leap/transition (the leaping and hybrid engines).
    pub fn step(&mut self) -> EngineStep {
        match self {
            Engine::Ssa(e) => match e.step() {
                StepOutcome::Fired { dt, .. } => EngineStep::Advanced { dt, events: 1 },
                StepOutcome::Exhausted => EngineStep::Exhausted,
            },
            Engine::FirstReaction(e) => match e.step() {
                StepOutcome::Fired { dt, .. } => EngineStep::Advanced { dt, events: 1 },
                StepOutcome::Exhausted => EngineStep::Exhausted,
            },
            Engine::TauLeap(e) => {
                // leap() first commits any leap held pending by the
                // quantum-execution API, so measure dt and events as
                // clock/firings deltas to keep the two consistent.
                let (before_firings, before_time) = (e.firings(), e.time());
                let taken = e.leap(e.tau());
                let dt = e.time() - before_time;
                if taken == 0.0 && dt == 0.0 {
                    EngineStep::Exhausted
                } else {
                    EngineStep::Advanced {
                        dt,
                        events: e.firings() - before_firings,
                    }
                }
            }
            Engine::AdaptiveTau(e) => {
                let (before_firings, before_time) = (e.firings(), e.time());
                let taken = e.advance();
                let dt = e.time() - before_time;
                if taken == 0.0 && dt == 0.0 {
                    EngineStep::Exhausted
                } else {
                    EngineStep::Advanced {
                        dt,
                        events: e.firings() - before_firings,
                    }
                }
            }
            Engine::Hybrid(e) => {
                let (dt, events) = e.step_transition();
                if dt == 0.0 && events == 0 {
                    EngineStep::Exhausted
                } else {
                    EngineStep::Advanced { dt, events }
                }
            }
        }
    }

    /// Runs until simulation time reaches `t_end` (or the state absorbs),
    /// without sampling; returns the reactions fired.
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        match self {
            Engine::Ssa(e) => e.run_until(t_end),
            Engine::FirstReaction(e) => e.run_until(t_end),
            // A muted clock (zero-sample limit) turns sampled advancement
            // into plain advancement on the same pending-leap path.
            Engine::TauLeap(e) => {
                let mut muted = SampleClock::new(0.0, 1.0).with_limit(0);
                e.run_sampled(t_end, &mut muted, |_, _| {})
            }
            Engine::AdaptiveTau(e) => e.run_until(t_end),
            Engine::Hybrid(e) => e.run_until(t_end),
        }
    }

    /// Runs until `t_end`, invoking `on_sample(t, observables)` at every
    /// grid time `clock` yields within the interval; returns reactions
    /// fired. Same alignment contract as [`SsaEngine::run_sampled`].
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        match self {
            Engine::Ssa(e) => e.run_sampled(t_end, clock, on_sample),
            Engine::FirstReaction(e) => e.run_sampled(t_end, clock, on_sample),
            Engine::TauLeap(e) => e.run_sampled(t_end, clock, on_sample),
            Engine::AdaptiveTau(e) => e.run_sampled(t_end, clock, on_sample),
            Engine::Hybrid(e) => e.run_sampled(t_end, clock, on_sample),
        }
    }

    /// Advances to `t_goal`, collecting the quantum's samples and events.
    pub fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        let mut samples = Vec::new();
        let events = self.run_sampled(t_goal, clock, |t, v| samples.push((t, v.to_vec())));
        QuantumOutcome { samples, events }
    }
}

impl QuantumEngine for Engine {
    fn advance_quantum(&mut self, t_goal: f64, clock: &mut SampleClock) -> QuantumOutcome {
        Engine::advance_quantum(self, t_goal, clock)
    }

    fn time(&self) -> f64 {
        Engine::time(self)
    }

    fn instance(&self) -> u64 {
        Engine::instance(self)
    }

    fn observe(&self) -> Vec<u64> {
        Engine::observe(self)
    }

    fn events(&self) -> u64 {
        Engine::events(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn comp_model() -> Arc<Model> {
        let mut m = Model::new("comp");
        m.rule("r")
            .at("cell")
            .consumes("A", 1)
            .rate(1.0)
            .build()
            .unwrap();
        let a = m.species("A");
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn every_kind_builds_on_a_flat_model() {
        let model = decay_model(10, 1.0);
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.1 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            let engine = kind.build(Arc::clone(&model), 1, 0).unwrap();
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.instance(), 0);
            assert_eq!(engine.observe(), vec![10]);
            assert_eq!(engine.time(), 0.0);
        }
    }

    #[test]
    fn tau_leap_rejects_compartment_models_and_bad_tau() {
        let model = comp_model();
        let err = EngineKind::TauLeap { tau: 0.1 }
            .build(Arc::clone(&model), 1, 0)
            .unwrap_err();
        assert!(matches!(err, EngineError::FlatModel(_)));
        let err = EngineKind::TauLeap { tau: 0.0 }
            .build(decay_model(1, 1.0), 1, 0)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidTau { .. }));
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn exact_kinds_drive_compartment_models() {
        let model = comp_model();
        for kind in [EngineKind::Ssa, EngineKind::FirstReaction] {
            let engine = kind.build(Arc::clone(&model), 1, 0);
            assert!(engine.is_ok(), "{kind} must accept compartment models");
        }
    }

    #[test]
    fn engine_enum_matches_wrapped_ssa_engine_exactly() {
        let model = decay_model(30, 1.0);
        let mut plain = SsaEngine::new(Arc::clone(&model), 7, 2);
        let mut wrapped = EngineKind::Ssa.build(model, 7, 2).unwrap();
        let mut pc = SampleClock::new(0.0, 0.25);
        let mut ps = Vec::new();
        plain.run_sampled(3.0, &mut pc, |t, v| ps.push((t, v.to_vec())));
        let mut wc = SampleClock::new(0.0, 0.25);
        let outcome = Engine::advance_quantum(&mut wrapped, 3.0, &mut wc);
        assert_eq!(outcome.samples, ps);
        assert_eq!(outcome.events, plain.steps());
        assert_eq!(wrapped.time(), plain.time());
    }

    #[test]
    fn step_advances_every_kind() {
        let model = decay_model(20, 1.0);
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.05 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            let mut engine = kind.build(Arc::clone(&model), 3, 0).unwrap();
            match engine.step() {
                EngineStep::Advanced { dt, .. } => assert!(dt > 0.0, "{kind}"),
                EngineStep::Exhausted => panic!("{kind} exhausted immediately"),
            }
            assert!(engine.time() > 0.0, "{kind}");
        }
    }

    #[test]
    fn exhausted_engines_report_exhaustion() {
        let model = decay_model(0, 1.0);
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.05 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            let mut engine = kind.build(Arc::clone(&model), 3, 0).unwrap();
            assert_eq!(engine.step(), EngineStep::Exhausted, "{kind}");
        }
    }

    #[test]
    fn run_until_counts_events() {
        let model = decay_model(25, 2.0);
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.05 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            let mut engine = kind.build(Arc::clone(&model), 9, 0).unwrap();
            let fired = engine.run_until(1e3);
            assert!(fired > 0, "{kind}");
            assert_eq!(fired, engine.events(), "{kind}");
            assert_eq!(engine.observe(), vec![0], "{kind}");
        }
    }

    #[test]
    fn trait_object_dispatch_matches_inherent_calls() {
        // Drive every concrete engine and the enum through the
        // QuantumEngine contract as a trait object: the impls must stay
        // in sync with the inherent methods (this test is the generic
        // consumer keeping them honest).
        let model = decay_model(25, 1.0);
        fn drive(engine: &mut dyn QuantumEngine) -> (Vec<(f64, Vec<u64>)>, u64, f64) {
            let mut clock = SampleClock::new(0.0, 0.5);
            let outcome = engine.advance_quantum(2.0, &mut clock);
            assert_eq!(outcome.events, engine.events());
            (outcome.samples, engine.events(), engine.time())
        }
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.05 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            let mut wrapped = kind.build(Arc::clone(&model), 11, 2).unwrap();
            let via_enum = drive(&mut wrapped);
            let via_concrete = match kind.build(Arc::clone(&model), 11, 2).unwrap() {
                Engine::Ssa(mut e) => drive(&mut e),
                Engine::TauLeap(mut e) => drive(&mut e),
                Engine::FirstReaction(mut e) => drive(&mut e),
                Engine::AdaptiveTau(mut e) => drive(&mut *e),
                Engine::Hybrid(mut e) => drive(&mut *e),
            };
            assert_eq!(via_enum, via_concrete, "{kind}");
            assert_eq!(QuantumEngine::instance(&wrapped), 2, "{kind}");
            assert_eq!(
                QuantumEngine::observe(&wrapped),
                Engine::observe(&wrapped),
                "{kind}"
            );
        }
    }

    #[test]
    fn engine_kind_validate_owns_the_tau_rule() {
        assert!(EngineKind::Ssa.validate().is_ok());
        assert!(EngineKind::FirstReaction.validate().is_ok());
        assert!(EngineKind::TauLeap { tau: 0.5 }.validate().is_ok());
        for tau in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            // matches! rather than assert_eq: NaN never compares equal.
            assert!(matches!(
                EngineKind::TauLeap { tau }.validate(),
                Err(EngineError::InvalidTau { .. })
            ));
        }
    }

    #[test]
    fn engine_kind_validate_owns_the_epsilon_and_threshold_rules() {
        assert!(EngineKind::AdaptiveTau { epsilon: 0.05 }.validate().is_ok());
        assert!(EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 8.0
        }
        .validate()
        .is_ok());
        for epsilon in [0.0, -0.1, 1.0, 2.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                EngineKind::AdaptiveTau { epsilon }.validate(),
                Err(EngineError::InvalidEpsilon { .. })
            ));
            assert!(matches!(
                EngineKind::Hybrid {
                    epsilon,
                    threshold: 8.0
                }
                .validate(),
                Err(EngineError::InvalidEpsilon { .. })
            ));
        }
        for threshold in [0.0, 0.5, -3.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                EngineKind::Hybrid {
                    epsilon: 0.05,
                    threshold
                }
                .validate(),
                Err(EngineError::InvalidThreshold { .. })
            ));
        }
        let msg = EngineKind::AdaptiveTau { epsilon: 1.5 }
            .validate()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("epsilon"), "{msg}");
        let msg = EngineKind::Hybrid {
            epsilon: 0.05,
            threshold: 0.0,
        }
        .validate()
        .unwrap_err()
        .to_string();
        assert!(msg.contains("threshold"), "{msg}");
    }

    #[test]
    fn flat_only_kinds_reject_compartment_models_naming_rule_and_engine() {
        let model = comp_model();
        for (kind, engine_name) in [
            (EngineKind::TauLeap { tau: 0.1 }, "tau-leaping"),
            (
                EngineKind::AdaptiveTau { epsilon: 0.05 },
                "adaptive tau-leaping",
            ),
            (
                EngineKind::Hybrid {
                    epsilon: 0.05,
                    threshold: 8.0,
                },
                "the hybrid SSA/tau engine",
            ),
        ] {
            let err = kind.build(Arc::clone(&model), 1, 0).unwrap_err();
            let msg = err.to_string();
            assert!(matches!(err, EngineError::FlatModel(_)), "{kind}");
            assert!(msg.contains("`r`"), "{kind}: {msg}");
            assert!(msg.contains(engine_name), "{kind}: {msg}");
        }
    }

    #[test]
    fn engine_kind_validate_owns_the_width_rule() {
        assert!(EngineKind::Batched { width: 1 }.validate().is_ok());
        assert!(EngineKind::Batched { width: 256 }.validate().is_ok());
        let err = EngineKind::Batched { width: 0 }.validate().unwrap_err();
        assert!(matches!(err, EngineError::InvalidWidth { width: 0 }));
        assert!(err.to_string().contains("width"), "{err}");
    }

    #[test]
    fn validated_constructors_accept_good_knobs_and_reject_bad_ones() {
        assert_eq!(
            EngineKind::tau_leap(0.1).unwrap(),
            EngineKind::TauLeap { tau: 0.1 }
        );
        assert_eq!(
            EngineKind::adaptive_tau(0.03).unwrap(),
            EngineKind::AdaptiveTau { epsilon: 0.03 }
        );
        assert_eq!(
            EngineKind::hybrid(0.05, 10.0).unwrap(),
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 10.0
            }
        );
        assert_eq!(
            EngineKind::batched(32).unwrap(),
            EngineKind::Batched { width: 32 }
        );
        assert!(matches!(
            EngineKind::tau_leap(f64::NAN),
            Err(EngineError::InvalidTau { .. })
        ));
        assert!(matches!(
            EngineKind::adaptive_tau(0.0),
            Err(EngineError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            EngineKind::hybrid(1.5, 10.0),
            Err(EngineError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            EngineKind::hybrid(0.05, f64::INFINITY),
            Err(EngineError::InvalidThreshold { .. })
        ));
        assert!(matches!(
            EngineKind::batched(0),
            Err(EngineError::InvalidWidth { width: 0 })
        ));
    }

    #[test]
    fn batched_kind_rejects_compartment_models_naming_rule_and_engine() {
        let err = EngineKind::Batched { width: 4 }
            .build(comp_model(), 1, 0)
            .unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, EngineError::FlatModel(_)), "{msg}");
        assert!(msg.contains("`r`"), "{msg}");
        assert!(msg.contains("the batched SSA engine"), "{msg}");
    }

    #[test]
    fn batched_kind_builds_the_exact_scalar_materialization() {
        // A per-instance build of the batched kind is the scalar direct
        // method — the definition of a batch replica.
        let model = decay_model(30, 1.0);
        let mut scalar = EngineKind::Ssa.build(Arc::clone(&model), 7, 3).unwrap();
        let mut batch_built = EngineKind::Batched { width: 8 }
            .build(Arc::clone(&model), 7, 3)
            .unwrap();
        assert!(matches!(batch_built, Engine::Ssa(_)));
        let mut c1 = SampleClock::new(0.0, 0.25);
        let mut c2 = SampleClock::new(0.0, 0.25);
        assert_eq!(
            Engine::advance_quantum(&mut scalar, 3.0, &mut c1),
            Engine::advance_quantum(&mut batch_built, 3.0, &mut c2),
        );
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(EngineKind::Ssa.to_string(), "ssa");
        assert_eq!(EngineKind::FirstReaction.to_string(), "first-reaction");
        assert_eq!(
            EngineKind::TauLeap { tau: 0.5 }.to_string(),
            "tau-leap(τ=0.5)"
        );
        assert_eq!(
            EngineKind::AdaptiveTau { epsilon: 0.05 }.to_string(),
            "adaptive-tau(ε=0.05)"
        );
        assert_eq!(
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0
            }
            .to_string(),
            "hybrid(ε=0.05, θ=8)"
        );
        assert_eq!(
            EngineKind::Batched { width: 64 }.to_string(),
            "batched(w=64)"
        );
        assert_eq!(EngineKind::default(), EngineKind::Ssa);
    }
}
