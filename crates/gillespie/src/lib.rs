//! # gillespie — stochastic simulation over CWC terms
//!
//! The stochastic engine of the CWC simulator (Aldinucci et al., ICDCS
//! 2014): Gillespie's exact direct method generalised to Calculus of
//! Wrapped Compartments terms, with the quantum-based execution model the
//! paper's farm of simulation engines relies on.
//!
//! - [`engine`]: the engine-agnostic seam — the [`QuantumEngine`] contract,
//!   the concrete [`Engine`] enum and the configuration-level
//!   [`EngineKind`] selector every pipeline layer is written against;
//! - [`deps`]: one-time model compilation — per-rule read/write sets and
//!   the reaction dependency graph, shared across instances;
//! - [`table`]: the persistent [`ReactionTable`] of (site, rule)
//!   propensities, updated incrementally after each firing instead of
//!   re-enumerated per step (the step-throughput lever for CWC's
//!   tree-matching propensities);
//! - [`ssa`]: the exact engine ([`SsaEngine`]) with pending-event
//!   preservation, so slicing a run into scheduler quanta never changes the
//!   trajectory; plus the τ-grid [`SampleClock`];
//! - [`trajectory`]: samples, trajectories and time-aligned [`Cut`]s;
//! - [`first_reaction`]: Gillespie's first-reaction method, an alternative
//!   exact sampler used as a distributional oracle (extension);
//! - [`flat`]: the shared flat-model reduction (species-count state,
//!   stoichiometry, the Cao–Gillespie–Petzold step bound) behind every
//!   leaping engine, plus their common rejection error;
//! - [`tau_leap`]: approximate fixed-step Poisson leaping for flat models
//!   (an extension beyond the paper, in the spirit of StochKit);
//! - [`adaptive`]: adaptive tau-leaping — CGP step-size selection with
//!   critical-reaction partitioning and an exact-SSA fallback;
//! - [`hybrid`]: the hybrid exact/approximate engine — incremental-table
//!   SSA segments with CGP-sized leaps when propensities stratify;
//! - [`batch`]: the batched SoA tier — [`BatchedSsaEngine`] advances a
//!   whole batch of replicas of one flat model in lockstep behind the
//!   [`BatchEngine`] seam, every replica bit-for-bit the scalar SSA
//!   trajectory of the same instance;
//! - [`rng`]: deterministic per-instance seeding *and* the per-engine draw
//!   discipline, making every execution back-end (multicore, distributed,
//!   simulated GPGPU) produce identical trajectories for identical seeds.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod adaptive;
pub mod batch;
pub mod deps;
pub mod engine;
pub mod first_reaction;
pub mod flat;
pub mod hybrid;
pub mod rng;
pub mod ssa;
pub mod table;
pub mod tau_leap;
pub mod trajectory;

pub use adaptive::AdaptiveTauEngine;
pub use batch::kernels::KernelDispatch;
pub use batch::BatchedSsaEngine;
pub use deps::{KeptChild, ModelDeps, RuleDeps};
pub use engine::{
    BatchEngine, Engine, EngineError, EngineKind, EngineStep, QuantumEngine, QuantumOutcome,
};
pub use first_reaction::FirstReactionEngine;
pub use flat::FlatModelError;
pub use hybrid::HybridEngine;
pub use rng::{instance_seed, sim_rng, SimRng};
pub use ssa::{Reaction, SampleClock, SsaEngine, StepOutcome};
pub use table::ReactionTable;
pub use tau_leap::{TauLeapEngine, TauLeapError};
pub use trajectory::{cuts_from_samples, Cut, Sample, Trajectory};
