//! Gillespie's direct method over CWC terms.
//!
//! "The Gillespie algorithm realises a Monte Carlo simulation on repeated
//! random sampling to compute the result. Each individual simulation is
//! called a trajectory." On CWC, one step is: read each rule's propensity
//! at each matching site (rate × tree match count) off the incrementally
//! maintained [`ReactionTable`], draw the
//! exponential waiting time and the reaction, rewrite the term in place at
//! the chosen site, then re-match only the (site, rule) pairs the firing
//! could have affected (see [`crate::deps`]). The steady-state step loop
//! allocates nothing: sites travel as dense ids, the assignment choice
//! streams through reused buffers, and `a0` is one ordered summation per
//! step.
//!
//! ## Quantum-exact execution
//!
//! The simulator advances engines in *quanta* (the paper's simulation
//! quantum): a worker runs an instance up to a time horizon, then the task
//! is rescheduled. This engine keeps the drawn-but-not-yet-fired event
//! across quantum boundaries, so a trajectory is **bit-for-bit identical**
//! no matter how the run is sliced into quanta — the property the
//! integration tests use to check that multicore, distributed and GPU
//! execution paths agree exactly.

use std::sync::Arc;

use cwc::matching::{apply_at, choose_assignment_with, match_count, MatchScratch};
use cwc::model::Model;
use cwc::term::{Path, SiteId, Term};
use rand::Rng;

use crate::deps::ModelDeps;
use crate::rng::{sim_rng, SimRng};
use crate::table::ReactionTable;

/// One enabled (rule, site) pair with its propensity.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaction {
    /// Index into the model's rule list.
    pub rule: usize,
    /// Site where the rule is enabled.
    pub site: Path,
    /// Propensity `rate * h` at this site.
    pub propensity: f64,
}

/// Outcome of one SSA step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// A reaction fired after waiting `dt`.
    Fired {
        /// Index of the rule that fired.
        rule: usize,
        /// Site where it fired — a dense id into the engine's
        /// [`ReactionTable`] registry, valid
        /// until the next structural rewrite (resolve with
        /// `engine.site_path(site)` if needed). Returned instead of a
        /// cloned `Path` so the hot step loop stays allocation-free.
        site: SiteId,
        /// Exponential waiting time that elapsed.
        dt: f64,
    },
    /// No reaction is enabled; the state is absorbing.
    Exhausted,
}

/// A single stochastic simulation instance over a CWC term.
///
/// # Examples
///
/// ```
/// use cwc::model::Model;
/// use gillespie::ssa::SsaEngine;
/// use std::sync::Arc;
///
/// let mut m = Model::new("decay");
/// let a = m.species("A");
/// m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
/// m.initial.add_atoms(a, 10);
///
/// let mut engine = SsaEngine::new(Arc::new(m), 42, 0);
/// let steps = engine.run_until(1_000.0);
/// assert_eq!(steps, 10); // all 10 molecules eventually decay
/// assert_eq!(engine.term().atoms.count(a), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SsaEngine {
    model: Arc<Model>,
    /// Compiled read/write sets + dependency graph, shared across
    /// instances of the same model.
    deps: Arc<ModelDeps>,
    term: Term,
    time: f64,
    /// Absolute time of the next event, already drawn but not yet fired.
    /// Preserved across quantum boundaries (see module docs).
    pending: Option<f64>,
    rng: SimRng,
    instance: u64,
    steps: u64,
    /// Incrementally maintained propensities of every (site, rule) pair.
    /// Built at construction and kept current by every firing — the term
    /// is only ever mutated through [`apply_fire`](SsaEngine::apply_fire).
    table: ReactionTable,
    scratch: MatchScratch,
    /// Chosen-assignment buffer, reused across firings.
    assignment_buf: Vec<usize>,
    /// Diagnostic: number of `a0` summations performed (exactly one per
    /// step-loop iteration — the redundant per-phase re-summations of the
    /// naive implementation are gone; a unit test pins this).
    a0_sums: u64,
}

impl SsaEngine {
    /// Creates an engine for `instance`, seeded from `base_seed`,
    /// compiling the model's dependency graph locally.
    ///
    /// The initial term is cloned from the model. When constructing many
    /// instances of one model, compile once and share via
    /// [`SsaEngine::with_deps`].
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Self {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_deps(model, deps, base_seed, instance)
    }

    /// Creates an engine reusing an already-compiled dependency graph
    /// (see [`ModelDeps::compile`]).
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Self {
        let term = model.initial.clone();
        let mut engine = SsaEngine {
            model,
            deps,
            term,
            time: 0.0,
            pending: None,
            rng: sim_rng(base_seed, instance),
            instance,
            steps: 0,
            table: ReactionTable::default(),
            scratch: MatchScratch::default(),
            assignment_buf: Vec::new(),
            a0_sums: 0,
        };
        engine
            .table
            .build(&engine.model, &engine.term, &mut engine.scratch);
        engine
    }

    /// The current term.
    pub fn term(&self) -> &Term {
        &self.term
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// Total reactions fired so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        &self.model
    }

    /// The compiled dependency graph driving incremental updates.
    pub fn deps(&self) -> &Arc<ModelDeps> {
        &self.deps
    }

    /// Evaluates the model's observables on the current term.
    pub fn observe(&self) -> Vec<u64> {
        self.model.eval_observables(&self.term)
    }

    /// Enumerates every enabled reaction with its propensity, from
    /// scratch.
    ///
    /// This is the naive full walk the incremental table replaced in the
    /// step loop; it is kept as the reference oracle (tests assert the
    /// table equals it after arbitrary firing sequences) and for one-off
    /// inspection. Prefer [`cached_reactions`](SsaEngine::cached_reactions)
    /// when the engine is hot.
    pub fn reactions(&self) -> Vec<Reaction> {
        let mut out = Vec::new();
        // Walk sites once; check every rule whose label matches the site.
        self.term.walk_sites(&mut |path, label, site_term| {
            for (ri, rule) in self.model.rules.iter().enumerate() {
                if rule.site != label || rule.rate == 0.0 {
                    continue;
                }
                let h = match_count(site_term, &rule.lhs);
                if h > 0 {
                    let propensity = rule.law.propensity(rule.rate, h, &site_term.atoms);
                    if propensity > 0.0 {
                        out.push(Reaction {
                            rule: ri,
                            site: path.clone(),
                            propensity,
                        });
                    }
                }
            }
        });
        out
    }

    /// The enabled reactions as maintained by the incremental table.
    /// Same set, order and propensities as
    /// [`reactions`](SsaEngine::reactions) — that equality is the table's
    /// correctness contract.
    pub fn cached_reactions(&self) -> Vec<Reaction> {
        self.table
            .active_entries()
            .map(|(i, propensity)| {
                let (site, rule) = self.table.site_rule(i);
                Reaction {
                    rule,
                    site: self.table.registry().path(site).clone(),
                    propensity,
                }
            })
            .collect()
    }

    /// Total propensity `a0` of the current state.
    pub fn total_propensity(&self) -> f64 {
        self.table.total()
    }

    /// Resolves a dense site id (as reported by
    /// [`StepOutcome::Fired`]) to its path, while the id is current.
    pub fn site_path(&self, site: SiteId) -> &Path {
        self.table.registry().path(site)
    }

    /// Diagnostic: total `a0` summations performed so far. The step loop
    /// performs exactly one per iteration (see the satellite regression
    /// test `one_a0_sum_per_step`).
    pub fn a0_sums(&self) -> u64 {
        self.a0_sums
    }

    /// The always-current reaction table (see the field docs: every term
    /// mutation goes through [`apply_fire`](SsaEngine::apply_fire), which
    /// updates it).
    pub(crate) fn table(&self) -> &ReactionTable {
        &self.table
    }

    /// `a0` for this step-loop iteration: one ordered summation over the
    /// table — shared by the waiting-time draw and the selection scan,
    /// replacing the naive implementation's two re-summations plus full
    /// re-enumeration.
    fn current_a0(&mut self) -> f64 {
        self.a0_sums += 1;
        self.table.total()
    }

    /// Absolute time of the next event, drawing it if necessary.
    ///
    /// Returns `None` when the state is absorbing (`a0 = 0`).
    fn next_event_time(&mut self, a0: f64) -> Option<f64> {
        if let Some(t) = self.pending {
            return Some(t);
        }
        if a0 <= 0.0 {
            return None;
        }
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let t = self.time + (-u1.ln() / a0);
        self.pending = Some(t);
        Some(t)
    }

    /// Chooses the assignment, rewrites the term at `site` and updates the
    /// reaction table incrementally. Shared with the first-reaction engine
    /// (which supplies its own selection and RNG draws).
    pub(crate) fn apply_fire(&mut self, site: SiteId, rule_idx: usize, u_assign: f64) {
        let rule = &self.model.rules[rule_idx];
        let path = self.table.registry().path(site);
        let ok = {
            let site_term = self.term.site(path).expect("fired site exists");
            choose_assignment_with(
                site_term,
                &rule.lhs,
                u_assign,
                &mut self.scratch,
                &mut self.assignment_buf,
            )
        };
        debug_assert!(ok, "reaction was enabled");
        apply_at(&mut self.term, rule, path, &self.assignment_buf)
            .expect("chosen assignment applies");
        self.table.post_fire(
            &self.model,
            &self.deps,
            &self.term,
            rule_idx,
            site,
            &self.assignment_buf,
            &mut self.scratch,
        );
    }

    /// Fires the pending event: selects a reaction proportionally to
    /// propensity and rewrites the term.
    ///
    /// With a single enabled reaction the selection is deterministic and
    /// no variate is consumed — part of the draw discipline documented in
    /// [`crate::rng`] that lets the coupled first-reaction engine
    /// reproduce single-channel trajectories bit-for-bit.
    fn fire(&mut self, a0: f64, event_time: f64) -> (usize, SiteId) {
        let entry = if self.table.active_count() == 1 {
            self.table.first_active().expect("one enabled reaction")
        } else {
            let target = self.rng.gen_range(0.0..a0);
            self.table.select(target)
        };
        let (site, rule) = self.table.site_rule(entry);
        let u3: f64 = self.rng.gen_range(0.0..1.0);
        self.apply_fire(site, rule, u3);
        self.time = event_time;
        self.pending = None;
        self.steps += 1;
        (rule, site)
    }

    /// Executes one SSA step (direct method).
    pub fn step(&mut self) -> StepOutcome {
        let a0 = self.current_a0();
        match self.next_event_time(a0) {
            None => StepOutcome::Exhausted,
            Some(t) => {
                let dt = t - self.time;
                let (rule, site) = self.fire(a0, t);
                StepOutcome::Fired { rule, site, dt }
            }
        }
    }

    /// Runs until simulation time reaches `t_end` (or the state absorbs);
    /// returns the number of reactions fired.
    ///
    /// An event drawn beyond `t_end` is kept pending and fires in a later
    /// quantum, so slicing a run into quanta leaves the trajectory
    /// unchanged.
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        let mut fired = 0;
        while self.time < t_end {
            let a0 = self.current_a0();
            match self.next_event_time(a0) {
                None => {
                    self.time = t_end;
                    break;
                }
                Some(t) if t > t_end => {
                    self.time = t_end;
                    break;
                }
                Some(t) => {
                    self.fire(a0, t);
                    fired += 1;
                }
            }
        }
        fired
    }

    /// Runs until `t_end`, invoking `on_sample(t, observables)` at every
    /// grid time `clock` yields within the interval. Returns reactions
    /// fired.
    ///
    /// Samples report the state *in force* at the sample time (the state
    /// before the event that crosses it), which is the standard alignment
    /// convention for piecewise-constant SSA trajectories — and exactly the
    /// "alignment of trajectories" contract of the simulation pipeline.
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        self.run_sampled_bounded(t_end, clock, u64::MAX, on_sample)
    }

    /// Like [`run_sampled`](SsaEngine::run_sampled), but stops after at
    /// most `max_steps` firings, leaving the clock mid-quantum. The hybrid
    /// engine drives its exact segments through this: stopping on a step
    /// count (a pure function of committed state) rather than a time keeps
    /// the phase-switch schedule independent of quantum slicing. With
    /// `max_steps = u64::MAX` this *is* `run_sampled`.
    pub(crate) fn run_sampled_bounded<F>(
        &mut self,
        t_end: f64,
        clock: &mut SampleClock,
        max_steps: u64,
        mut on_sample: F,
    ) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        let mut fired = 0;
        while fired < max_steps {
            let a0 = self.current_a0();
            let t_next = self.next_event_time(a0).unwrap_or(f64::INFINITY);
            // Emit all samples that fall before the next event and within
            // the quantum.
            let horizon = t_next.min(t_end);
            while let Some(ts) = clock.peek() {
                if ts > horizon {
                    break;
                }
                let values = self.observe();
                on_sample(ts, &values);
                clock.advance();
            }
            if t_next > t_end {
                self.time = t_end;
                break;
            }
            self.fire(a0, t_next);
            fired += 1;
        }
        fired
    }

    /// Replaces the engine's state with a flat term built from `atoms` at
    /// simulation time `time`, dropping any pending event and rebuilding
    /// the reaction table. The hybrid engine uses this to hand a
    /// leap-phase state back to its exact phase; the rebuilt table is
    /// bit-compatible with an incrementally maintained one (the table's
    /// build-equals-recompute contract).
    pub(crate) fn reset_flat_state(&mut self, atoms: cwc::multiset::Multiset, time: f64) {
        self.term = Term::from_atoms(atoms);
        self.time = time;
        self.pending = None;
        self.table.build(&self.model, &self.term, &mut self.scratch);
    }
}

/// Fixed-step sampling clock (the τ grid of the paper's Q/τ ratio).
///
/// Persistent across quanta: the simulator keeps one clock per instance so
/// samples align on a global grid regardless of quantum boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleClock {
    next: f64,
    period: f64,
    emitted: u64,
    limit: Option<u64>,
}

impl SampleClock {
    /// Creates a clock emitting at `start`, `start+period`, ...
    ///
    /// # Panics
    ///
    /// Panics if `period` is not finite and positive.
    pub fn new(start: f64, period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "sample period must be positive"
        );
        SampleClock {
            next: start,
            period,
            emitted: 0,
            limit: None,
        }
    }

    /// Caps the total number of samples emitted.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Next sample time, if any.
    pub fn peek(&self) -> Option<f64> {
        match self.limit {
            Some(l) if self.emitted >= l => None,
            _ => Some(self.next),
        }
    }

    /// Moves to the following grid point.
    pub fn advance(&mut self) {
        self.emitted += 1;
        self.next += self.period;
    }

    /// Number of samples emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The sampling period τ.
    pub fn period(&self) -> f64 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn decay_fires_exactly_n_times() {
        let mut e = SsaEngine::new(decay_model(25, 2.0), 1, 0);
        let fired = e.run_until(1e6);
        assert_eq!(fired, 25);
        assert_eq!(e.steps(), 25);
        assert_eq!(e.observe(), vec![0]);
        assert_eq!(e.step(), StepOutcome::Exhausted);
    }

    #[test]
    fn exhausted_state_fast_forwards_time() {
        let mut e = SsaEngine::new(decay_model(0, 1.0), 1, 0);
        assert_eq!(e.run_until(5.0), 0);
        assert_eq!(e.time(), 5.0);
    }

    #[test]
    fn identical_seeds_reproduce_trajectories() {
        let model = decay_model(50, 0.3);
        let mut a = SsaEngine::new(Arc::clone(&model), 9, 4);
        let mut b = SsaEngine::new(model, 9, 4);
        a.run_until(3.0);
        b.run_until(3.0);
        assert_eq!(a.term(), b.term());
        assert_eq!(a.time(), b.time());
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn quantum_slicing_is_bit_identical() {
        // The same trajectory, whether run in one go or in 100 quanta.
        let model = decay_model(40, 1.0);
        let mut whole = SsaEngine::new(Arc::clone(&model), 3, 7);
        whole.run_until(100.0);
        let mut sliced = SsaEngine::new(model, 3, 7);
        for k in 1..=100 {
            sliced.run_until(k as f64);
        }
        assert_eq!(whole.term(), sliced.term());
        assert_eq!(whole.steps(), sliced.steps());
        assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn mean_decay_time_is_statistically_plausible() {
        // For A -> ∅ at rate k with n0 molecules, E[N(t)] = n0 e^{-kt}.
        let model = decay_model(1000, 1.0);
        let mut e = SsaEngine::new(model, 123, 0);
        e.run_until(1.0);
        let remaining = e.observe()[0] as f64;
        let expected = 1000.0 * (-1.0f64).exp(); // ≈ 367.9
        let sd = (1000.0 * (-1.0f64).exp() * (1.0 - (-1.0f64).exp())).sqrt(); // ≈ 15.2
        assert!(
            (remaining - expected).abs() < 5.0 * sd,
            "remaining {remaining} too far from {expected}"
        );
    }

    #[test]
    fn reactions_report_propensities() {
        let model = decay_model(10, 0.5);
        let e = SsaEngine::new(model, 1, 0);
        let rs = e.reactions();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].rule, 0);
        assert!((rs[0].propensity - 5.0).abs() < 1e-12); // 0.5 * 10
        assert!((e.total_propensity() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sample_clock_emits_grid() {
        let mut c = SampleClock::new(0.0, 0.5).with_limit(3);
        assert_eq!(c.peek(), Some(0.0));
        c.advance();
        assert_eq!(c.peek(), Some(0.5));
        c.advance();
        c.advance();
        assert_eq!(c.peek(), None);
        assert_eq!(c.emitted(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_clock_panics() {
        let _ = SampleClock::new(0.0, 0.0);
    }

    #[test]
    fn run_sampled_emits_aligned_samples() {
        let model = decay_model(10, 1.0);
        let mut e = SsaEngine::new(model, 5, 0);
        let mut clock = SampleClock::new(0.0, 1.0);
        let mut samples = Vec::new();
        e.run_sampled(5.0, &mut clock, |t, v| samples.push((t, v[0])));
        // Grid points 0,1,2,3,4,5 -> 6 samples, monotone times, counts
        // non-increasing for a pure-death process.
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[0], (0.0, 10));
        assert!(samples.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(samples.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn run_sampled_across_quanta_equals_single_run() {
        let model = decay_model(30, 0.7);
        // Single run to t=6.
        let mut whole = SsaEngine::new(Arc::clone(&model), 11, 2);
        let mut wc = SampleClock::new(0.0, 0.5);
        let mut ws = Vec::new();
        whole.run_sampled(6.0, &mut wc, |t, v| ws.push((t, v.to_vec())));
        // Same run split into 12 quanta of 0.5.
        let mut parts = SsaEngine::new(model, 11, 2);
        let mut pc = SampleClock::new(0.0, 0.5);
        let mut ps = Vec::new();
        for k in 1..=12 {
            parts.run_sampled(k as f64 * 0.5, &mut pc, |t, v| ps.push((t, v.to_vec())));
        }
        assert_eq!(ws, ps);
        assert_eq!(whole.term(), parts.term());
    }

    #[test]
    fn mixed_quantum_sizes_still_bit_identical() {
        let model = decay_model(20, 0.9);
        let mut a = SsaEngine::new(Arc::clone(&model), 21, 0);
        a.run_until(10.0);
        let mut b = SsaEngine::new(model, 21, 0);
        // Irregular quanta covering the same horizon.
        for t in [0.3, 1.7, 1.9, 4.0, 9.99, 10.0] {
            b.run_until(t);
        }
        assert_eq!(a.term(), b.term());
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn birth_death_reaches_equilibrium_band() {
        // ∅ -> A at rate kb (constant), A -> ∅ at rate kd per molecule:
        // stationary mean kb/kd.
        let mut m = Model::new("bd");
        let a = m.species("A");
        let g = m.species("G"); // constant source species
        m.rule("birth")
            .consumes("G", 1)
            .produces("G", 1)
            .produces("A", 1)
            .rate(50.0)
            .build()
            .unwrap();
        m.rule("death").consumes("A", 1).rate(1.0).build().unwrap();
        m.initial.add_atoms(g, 1);
        m.observe("A", a);
        let mut e = SsaEngine::new(Arc::new(m), 77, 0);
        e.run_until(30.0); // burn in ≫ 1/kd
                           // Stationary distribution is Poisson(50): mean 50, sd ≈ 7.1.
        let n = e.observe()[0] as f64;
        assert!((n - 50.0).abs() < 5.0 * 7.1, "A = {n}, expected ≈ 50");
    }
}
