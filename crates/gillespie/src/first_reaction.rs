//! The first-reaction method: an alternative exact SSA sampler.
//!
//! **Extension beyond the paper** (the CWC simulator uses the direct
//! method only; StochKit, its related work, "remain[s] open to extension
//! via new stochastic [...] algorithms"). Gillespie's first-reaction
//! method draws one exponential waiting time *per enabled reaction* and
//! fires the earliest. It samples exactly the same process law as the
//! direct method — the cross-method statistical test in this module checks
//! that — while consuming randomness differently, which makes it a useful
//! oracle against subtle propensity bugs: both methods must agree on every
//! distributional property even though their trajectories differ
//! draw-by-draw.

use std::sync::Arc;

use cwc::matching::{apply_at, choose_assignment};
use cwc::model::Model;
use cwc::term::Term;
use rand::Rng;

use crate::rng::{sim_rng, SimRng};
use crate::ssa::{Reaction, SsaEngine, StepOutcome};

/// Exact SSA engine using the first-reaction method.
///
/// # Examples
///
/// ```
/// use cwc::model::Model;
/// use gillespie::first_reaction::FirstReactionEngine;
/// use std::sync::Arc;
///
/// let mut m = Model::new("decay");
/// let a = m.species("A");
/// m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
/// m.initial.add_atoms(a, 5);
/// let mut engine = FirstReactionEngine::new(Arc::new(m), 7, 0);
/// let fired = engine.run_until(1e9);
/// assert_eq!(fired, 5);
/// ```
#[derive(Debug, Clone)]
pub struct FirstReactionEngine {
    /// Reuses the direct engine's state and reaction enumeration; only the
    /// sampling loop differs.
    inner: SsaEngine,
    rng: SimRng,
    time: f64,
    steps: u64,
}

impl FirstReactionEngine {
    /// Creates an engine for `instance`, seeded from `base_seed`.
    ///
    /// The RNG stream is independent from the direct method's (offset
    /// instance space), so the two engines cannot accidentally share
    /// draws.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Self {
        FirstReactionEngine {
            inner: SsaEngine::new(model, base_seed, instance),
            rng: sim_rng(base_seed ^ 0xF1E5_7EAC, instance),
            time: 0.0,
            steps: 0,
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Reactions fired so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current term.
    pub fn term(&self) -> &Term {
        self.inner.term()
    }

    /// Evaluates the model's observables.
    pub fn observe(&self) -> Vec<u64> {
        self.inner.observe()
    }

    /// Executes one first-reaction step.
    pub fn step(&mut self) -> StepOutcome {
        let reactions: Vec<Reaction> = self.inner.reactions();
        if reactions.is_empty() {
            return StepOutcome::Exhausted;
        }
        // Draw a candidate firing time for every enabled reaction; the
        // minimum wins (provably equivalent to the direct method).
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in reactions.iter().enumerate() {
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let dt = -u.ln() / r.propensity;
            if best.map(|(_, b)| dt < b).unwrap_or(true) {
                best = Some((i, dt));
            }
        }
        let (winner, dt) = best.expect("non-empty reactions");
        let reaction = &reactions[winner];
        let model = Arc::clone(self.inner.model());
        let rule = &model.rules[reaction.rule];
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // Apply on the inner engine's term through its public API surface:
        // clone the site lookup locally.
        let assignment = {
            let site_term = self.inner.term().site(&reaction.site).expect("site exists");
            choose_assignment(site_term, &rule.lhs, u).expect("reaction enabled")
        };
        apply_at(self.inner.term_mut(), rule, &reaction.site, &assignment)
            .expect("chosen assignment applies");
        self.time += dt;
        self.steps += 1;
        StepOutcome::Fired {
            rule: reaction.rule,
            site: reaction.site.clone(),
            dt,
        }
    }

    /// Runs until `t_end` (or exhaustion); returns reactions fired.
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        let mut fired = 0;
        while self.time < t_end {
            match self.step() {
                StepOutcome::Fired { .. } => fired += 1,
                StepOutcome::Exhausted => {
                    self.time = t_end;
                    break;
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn two_species_model() -> Arc<Model> {
        let mut m = Model::new("race");
        let a = m.species("A");
        m.rule("to_b")
            .consumes("A", 1)
            .produces("B", 1)
            .rate(2.0)
            .build()
            .unwrap();
        m.rule("to_c")
            .consumes("A", 1)
            .produces("C", 1)
            .rate(1.0)
            .build()
            .unwrap();
        m.initial.add_atoms(a, 1);
        let b = m.species("B");
        let c = m.species("C");
        m.observe("B", b);
        m.observe("C", c);
        Arc::new(m)
    }

    #[test]
    fn fires_exactly_population_times_for_decay() {
        let mut e = FirstReactionEngine::new(decay_model(30, 1.0), 3, 0);
        assert_eq!(e.run_until(1e9), 30);
        assert_eq!(e.observe(), vec![0]);
        assert_eq!(e.step(), StepOutcome::Exhausted);
    }

    #[test]
    fn branch_probabilities_match_rates() {
        // A -> B at rate 2, A -> C at rate 1: P(B) = 2/3. Over 600 runs the
        // binomial sd is ~0.019, so ±5 sd ≈ ±0.10.
        let model = two_species_model();
        let mut b_wins = 0;
        let runs = 600;
        for i in 0..runs {
            let mut e = FirstReactionEngine::new(Arc::clone(&model), 11, i);
            e.run_until(1e9);
            if e.observe()[0] == 1 {
                b_wins += 1;
            }
        }
        let p = b_wins as f64 / runs as f64;
        assert!((p - 2.0 / 3.0).abs() < 0.10, "P(B first) = {p}");
    }

    #[test]
    fn mean_extinction_matches_direct_method() {
        // Both exact methods must agree on E[A(t)] within Monte Carlo error.
        let model = decay_model(100, 1.0);
        let runs = 200u64;
        let t = 1.0;
        let mut direct_sum = 0u64;
        let mut frm_sum = 0u64;
        for i in 0..runs {
            let mut d = crate::ssa::SsaEngine::new(Arc::clone(&model), 5, i);
            d.run_until(t);
            direct_sum += d.observe()[0];
            let mut f = FirstReactionEngine::new(Arc::clone(&model), 5, i + 10_000);
            f.run_until(t);
            frm_sum += f.observe()[0];
        }
        let d_mean = direct_sum as f64 / runs as f64;
        let f_mean = frm_sum as f64 / runs as f64;
        let expected = 100.0 * (-1.0f64).exp();
        assert!((d_mean - expected).abs() < 3.0, "direct {d_mean}");
        assert!((f_mean - expected).abs() < 3.0, "first-reaction {f_mean}");
        assert!(
            (d_mean - f_mean).abs() < 4.0,
            "methods disagree: {d_mean} vs {f_mean}"
        );
    }

    #[test]
    fn time_advances_monotonically() {
        let mut e = FirstReactionEngine::new(decay_model(20, 5.0), 9, 1);
        let mut last = 0.0;
        while let StepOutcome::Fired { .. } = e.step() {
            assert!(e.time() > last);
            last = e.time();
        }
    }
}
