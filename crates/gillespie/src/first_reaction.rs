//! The first-reaction method: an alternative exact SSA sampler.
//!
//! **Extension beyond the paper** (the CWC simulator uses the direct
//! method only; StochKit, its related work, "remain\[s\] open to extension
//! via new stochastic [...] algorithms"). Gillespie's first-reaction
//! method draws one exponential waiting time *per enabled reaction* and
//! fires the earliest. It samples exactly the same process law as the
//! direct method — the cross-method statistical test in this module checks
//! that — while consuming randomness differently, which makes it a useful
//! oracle against subtle propensity bugs: both methods must agree on every
//! distributional property even though their trajectories differ
//! draw-by-draw.
//!
//! ## Quantum-exact execution
//!
//! Like [`SsaEngine`], this engine keeps the drawn-but-not-yet-fired
//! winning event across quantum boundaries: when a quantum ends before the
//! event, the (reaction, absolute time) pair is preserved and fired in a
//! later quantum instead of being re-drawn, so rescheduling cannot change
//! a trajectory. The term is unchanged while an event is pending, so the
//! deterministically re-enumerated reaction list is identical when the
//! pending winner finally fires.
//!
//! ## Coupling to the direct method
//!
//! For single-channel states both methods consume randomness identically
//! (see the draw discipline in [`crate::rng`]): one uniform for the
//! waiting time, none for the selection, one for the assignment. An engine
//! built with [`FirstReactionEngine::coupled`] shares the direct method's
//! instance stream and therefore reproduces `SsaEngine` trajectories
//! **bit-for-bit** on single-channel models — the common-random-numbers
//! property test that pins down waiting-time and propensity formulas.

use std::sync::Arc;

use cwc::model::Model;
use cwc::term::{SiteId, Term};
use rand::Rng;

use crate::deps::ModelDeps;
use crate::rng::{sim_rng, SimRng};
use crate::ssa::{SampleClock, SsaEngine, StepOutcome};

/// Exact SSA engine using the first-reaction method.
///
/// # Examples
///
/// ```
/// use cwc::model::Model;
/// use gillespie::first_reaction::FirstReactionEngine;
/// use std::sync::Arc;
///
/// let mut m = Model::new("decay");
/// let a = m.species("A");
/// m.rule("decay").consumes("A", 1).rate(1.0).build().unwrap();
/// m.initial.add_atoms(a, 5);
/// let mut engine = FirstReactionEngine::new(Arc::new(m), 7, 0);
/// let fired = engine.run_until(1e9);
/// assert_eq!(fired, 5);
/// ```
#[derive(Debug, Clone)]
pub struct FirstReactionEngine {
    /// Reuses the direct engine's state and incremental reaction table;
    /// only the sampling loop differs.
    inner: SsaEngine,
    rng: SimRng,
    time: f64,
    /// The winning `(table entry index, absolute firing time)` already
    /// drawn but not yet fired. Preserved across quantum boundaries (see
    /// module docs); the term — and therefore the table — is unchanged
    /// while an event is pending, so the entry index stays valid.
    pending: Option<(usize, f64)>,
    steps: u64,
}

impl FirstReactionEngine {
    /// Creates an engine for `instance`, seeded from `base_seed`.
    ///
    /// The RNG stream is independent from the direct method's (offset
    /// instance space), so the two engines cannot accidentally share
    /// draws.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Self {
        FirstReactionEngine {
            inner: SsaEngine::new(model, base_seed, instance),
            rng: sim_rng(base_seed ^ 0xF1E5_7EAC, instance),
            time: 0.0,
            pending: None,
            steps: 0,
        }
    }

    /// Like [`FirstReactionEngine::new`], reusing an already-compiled
    /// dependency graph (see [`ModelDeps::compile`]).
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Self {
        FirstReactionEngine {
            inner: SsaEngine::with_deps(model, deps, base_seed, instance),
            rng: sim_rng(base_seed ^ 0xF1E5_7EAC, instance),
            time: 0.0,
            pending: None,
            steps: 0,
        }
    }

    /// Creates an engine sharing the direct method's instance stream
    /// (common random numbers): on single-channel models its trajectory is
    /// bit-for-bit identical to [`SsaEngine`]'s with the same seeds — the
    /// coupling oracle described in the module docs and [`crate::rng`].
    pub fn coupled(model: Arc<Model>, base_seed: u64, instance: u64) -> Self {
        FirstReactionEngine {
            inner: SsaEngine::new(model, base_seed, instance),
            rng: sim_rng(base_seed, instance),
            time: 0.0,
            pending: None,
            steps: 0,
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        self.inner.instance()
    }

    /// Reactions fired so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current term.
    pub fn term(&self) -> &Term {
        self.inner.term()
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        self.inner.model()
    }

    /// Evaluates the model's observables.
    pub fn observe(&self) -> Vec<u64> {
        self.inner.observe()
    }

    /// The winning event, drawing candidate times for every enabled
    /// reaction if none is pending. Returns `None` when the state is
    /// absorbing.
    ///
    /// Enabled reactions come straight off the shared incremental table,
    /// in table order — the same enumeration order (and so the same draw
    /// order) as the naive re-enumeration it replaced.
    fn next_event(&mut self) -> Option<(usize, f64)> {
        if let Some(p) = self.pending {
            return Some(p);
        }
        // One exponential candidate per enabled reaction; the minimum wins
        // (provably equivalent to the direct method).
        let mut best: Option<(usize, f64)> = None;
        let table = self.inner.table();
        for (entry, propensity) in table.active_entries() {
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let t = self.time + (-u.ln() / propensity);
            if best.map(|(_, b)| t < b).unwrap_or(true) {
                best = Some((entry, t));
            }
        }
        self.pending = best;
        best
    }

    /// Fires the pending event: chooses the assignment, rewrites the term
    /// and updates the shared reaction table (via the direct engine's
    /// firing path, with this engine's RNG supplying the draws).
    fn fire(&mut self, event: (usize, f64)) -> (usize, SiteId) {
        let (winner, event_time) = event;
        let (site, rule) = self.inner.table().site_rule(winner);
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.inner.apply_fire(site, rule, u);
        self.time = event_time;
        self.pending = None;
        self.steps += 1;
        (rule, site)
    }

    /// Executes one first-reaction step (fires the pending event if one
    /// was held over from a previous quantum).
    pub fn step(&mut self) -> StepOutcome {
        match self.next_event() {
            None => StepOutcome::Exhausted,
            Some(event) => {
                let dt = event.1 - self.time;
                let (rule, site) = self.fire(event);
                StepOutcome::Fired { rule, site, dt }
            }
        }
    }

    /// Runs until `t_end` (or exhaustion); returns reactions fired.
    ///
    /// An event drawn beyond `t_end` is kept pending and fires in a later
    /// quantum, so slicing a run into quanta leaves the trajectory
    /// unchanged.
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        let mut fired = 0;
        while self.time < t_end {
            match self.next_event() {
                None => {
                    self.time = t_end;
                    break;
                }
                Some((_, t)) if t > t_end => {
                    self.time = t_end;
                    break;
                }
                Some(event) => {
                    self.fire(event);
                    fired += 1;
                }
            }
        }
        fired
    }

    /// Runs until `t_end`, invoking `on_sample(t, observables)` at every
    /// grid time `clock` yields within the interval. Returns reactions
    /// fired. Same alignment contract as [`SsaEngine::run_sampled`]:
    /// samples report the state in force at the sample time.
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, mut on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        let mut fired = 0;
        loop {
            let t_next = self.next_event().map(|(_, t)| t).unwrap_or(f64::INFINITY);
            // Emit all samples that fall before the next event and within
            // the quantum.
            let horizon = t_next.min(t_end);
            while let Some(ts) = clock.peek() {
                if ts > horizon {
                    break;
                }
                let values = self.observe();
                on_sample(ts, &values);
                clock.advance();
            }
            if t_next > t_end {
                self.time = t_end;
                break;
            }
            let event = self.pending.expect("finite t_next implies pending");
            self.fire(event);
            fired += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn two_species_model() -> Arc<Model> {
        let mut m = Model::new("race");
        let a = m.species("A");
        m.rule("to_b")
            .consumes("A", 1)
            .produces("B", 1)
            .rate(2.0)
            .build()
            .unwrap();
        m.rule("to_c")
            .consumes("A", 1)
            .produces("C", 1)
            .rate(1.0)
            .build()
            .unwrap();
        m.initial.add_atoms(a, 1);
        let b = m.species("B");
        let c = m.species("C");
        m.observe("B", b);
        m.observe("C", c);
        Arc::new(m)
    }

    #[test]
    fn fires_exactly_population_times_for_decay() {
        let mut e = FirstReactionEngine::new(decay_model(30, 1.0), 3, 0);
        assert_eq!(e.run_until(1e9), 30);
        assert_eq!(e.observe(), vec![0]);
        assert_eq!(e.step(), StepOutcome::Exhausted);
    }

    #[test]
    fn branch_probabilities_match_rates() {
        // A -> B at rate 2, A -> C at rate 1: P(B) = 2/3. Over 600 runs the
        // binomial sd is ~0.019, so ±5 sd ≈ ±0.10.
        let model = two_species_model();
        let mut b_wins = 0;
        let runs = 600;
        for i in 0..runs {
            let mut e = FirstReactionEngine::new(Arc::clone(&model), 11, i);
            e.run_until(1e9);
            if e.observe()[0] == 1 {
                b_wins += 1;
            }
        }
        let p = b_wins as f64 / runs as f64;
        assert!((p - 2.0 / 3.0).abs() < 0.10, "P(B first) = {p}");
    }

    #[test]
    fn mean_extinction_matches_direct_method() {
        // Both exact methods must agree on E[A(t)] within Monte Carlo error.
        let model = decay_model(100, 1.0);
        let runs = 200u64;
        let t = 1.0;
        let mut direct_sum = 0u64;
        let mut frm_sum = 0u64;
        for i in 0..runs {
            let mut d = crate::ssa::SsaEngine::new(Arc::clone(&model), 5, i);
            d.run_until(t);
            direct_sum += d.observe()[0];
            let mut f = FirstReactionEngine::new(Arc::clone(&model), 5, i + 10_000);
            f.run_until(t);
            frm_sum += f.observe()[0];
        }
        let d_mean = direct_sum as f64 / runs as f64;
        let f_mean = frm_sum as f64 / runs as f64;
        let expected = 100.0 * (-1.0f64).exp();
        assert!((d_mean - expected).abs() < 3.0, "direct {d_mean}");
        assert!((f_mean - expected).abs() < 3.0, "first-reaction {f_mean}");
        assert!(
            (d_mean - f_mean).abs() < 4.0,
            "methods disagree: {d_mean} vs {f_mean}"
        );
    }

    #[test]
    fn time_advances_monotonically() {
        let mut e = FirstReactionEngine::new(decay_model(20, 5.0), 9, 1);
        let mut last = 0.0;
        while let StepOutcome::Fired { .. } = e.step() {
            assert!(e.time() > last);
            last = e.time();
        }
    }

    #[test]
    fn quantum_slicing_is_bit_identical() {
        // The same trajectory, whether run in one go or in many quanta:
        // the pending winner survives rescheduling (two-channel model, so
        // the winner index actually matters).
        let mut m = Model::new("bd");
        let a = m.species("A");
        m.rule("birth").produces("A", 1).rate(3.0).build().unwrap();
        m.rule("death").consumes("A", 1).rate(1.0).build().unwrap();
        m.initial.add_atoms(a, 5);
        m.observe("A", a);
        let model = Arc::new(m);

        let mut whole = FirstReactionEngine::new(Arc::clone(&model), 3, 7);
        whole.run_until(10.0);
        let mut sliced = FirstReactionEngine::new(model, 3, 7);
        for k in 1..=100 {
            sliced.run_until(k as f64 * 0.1);
        }
        assert_eq!(whole.term(), sliced.term());
        assert_eq!(whole.steps(), sliced.steps());
        assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn run_sampled_across_quanta_equals_single_run() {
        let model = decay_model(30, 0.7);
        let mut whole = FirstReactionEngine::new(Arc::clone(&model), 11, 2);
        let mut wc = SampleClock::new(0.0, 0.5);
        let mut ws = Vec::new();
        whole.run_sampled(6.0, &mut wc, |t, v| ws.push((t, v.to_vec())));
        let mut parts = FirstReactionEngine::new(model, 11, 2);
        let mut pc = SampleClock::new(0.0, 0.5);
        let mut ps = Vec::new();
        for k in 1..=12 {
            parts.run_sampled(k as f64 * 0.5, &mut pc, |t, v| ps.push((t, v.to_vec())));
        }
        assert_eq!(ws, ps);
        assert_eq!(whole.term(), parts.term());
        assert_eq!(whole.time(), parts.time());
    }

    #[test]
    fn coupled_engine_reproduces_direct_method_on_single_channel_models() {
        // Single-channel model + shared stream ⇒ identical draw discipline
        // ⇒ bit-for-bit identical trajectories (see crate::rng).
        let model = decay_model(40, 0.8);
        let mut direct = crate::ssa::SsaEngine::new(Arc::clone(&model), 21, 4);
        let mut frm = FirstReactionEngine::coupled(model, 21, 4);
        for t in [0.4, 1.3, 2.0, 5.0, 9.7, 20.0] {
            direct.run_until(t);
            frm.run_until(t);
            assert_eq!(direct.term(), frm.term(), "term at t={t}");
            assert_eq!(direct.time(), frm.time(), "time at t={t}");
            assert_eq!(direct.steps(), frm.steps(), "steps at t={t}");
        }
    }
}
