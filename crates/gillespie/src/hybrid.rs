//! Hybrid exact/approximate simulation: the incremental-table direct
//! method with tau-leaping engaged when propensities stratify.
//!
//! Tau-leaping only pays off while propensities are large enough that a
//! leap fires many reactions; near-absorbing states, small populations and
//! cold starts are exact-SSA territory. This engine runs both regimes and
//! switches between them from the committed state:
//!
//! - **Exact phase** — the unmodified [`SsaEngine`] (so the incremental
//!   [`ReactionTable`](crate::table::ReactionTable) of the dependency-graph
//!   engine is reused verbatim), driven in fixed segments of
//!   [`EXACT_SEGMENT`] reactions between switch decisions.
//! - **Leap phase** — Poisson leaps over the flat species-count vector,
//!   with the leap length picked by the Cao–Gillespie–Petzold bound
//!   (`epsilon` knob, shared with [`crate::adaptive`]).
//! - **The switch.** At each decision point the engine computes the CGP
//!   leap `τ(x)` and the total propensity `a0(x)` of the committed state:
//!   when `τ·a0 ≥ threshold` — at least `threshold` expected firings per
//!   leap — the propensities have stratified enough that leaping wins, and
//!   the engine leaps; otherwise it runs the next exact segment. Decisions
//!   are pure functions of the committed state, so they consume no
//!   randomness and cannot depend on quantum boundaries.
//!
//! Like every flat-model engine, the hybrid rejects compartment models at
//! construction ([`FlatModelError`]); the exact phase alone could drive
//! them, but the leap phase's state reduction could not.
//!
//! ## Quantum-exact execution and the RNG streams
//!
//! The exact phase consumes the instance's primary RNG stream exactly
//! like a plain direct-method engine — until the first switch, a hybrid
//! trajectory is *bit-for-bit identical* to [`SsaEngine`] with the same
//! seeds (a unit test pins this). The leap phase draws from a dedicated
//! salted stream ([`crate::rng`] documents the discipline), so engaging
//! leaps never perturbs the exact stream. Pending exact events and pending
//! leaps both survive quantum boundaries, and exact segments end on
//! *reaction counts*, never on quantum horizons — so trajectories are
//! slicing-invariant like every other engine behind
//! [`Engine`](crate::engine::Engine).

use std::sync::Arc;

use cwc::model::Model;
use cwc::multiset::Multiset;

use crate::batch::kernels::{self, Kernel, KernelDispatch};
use crate::deps::ModelDeps;
use crate::flat::{poisson, CgpScratch, FlatModel, FlatModelError};
use crate::rng::{sim_rng, SimRng};
use crate::ssa::{SampleClock, SsaEngine, StepOutcome};

/// Default relative-propensity-change bound ε of the leap phase.
pub const DEFAULT_EPSILON: f64 = 0.03;

/// Default switch threshold: expected firings per candidate leap above
/// which the engine leaves the exact phase.
pub const DEFAULT_THRESHOLD: f64 = 16.0;

/// Reactions fired per exact segment between switch decisions.
pub const EXACT_SEGMENT: u64 = 64;

/// Salt mixed into the base seed for the leap phase's dedicated RNG
/// stream (see module docs).
const LEAP_STREAM_SALT: u64 = 0x4859_4252_4944_5331;

/// A Poisson leap drawn but not yet committed.
#[derive(Debug, Clone)]
struct PendingLeap {
    /// Candidate state after the leap.
    state: Vec<i64>,
    /// Absolute time at which the leap commits.
    end: f64,
    /// Firings the leap applies when committed.
    firings: u64,
}

/// Where the engine is between committed transitions.
#[derive(Debug, Clone)]
enum Phase {
    /// Next call decides exact-vs-leap from the committed state.
    Decide,
    /// Running the exact engine until its step counter reaches `until`.
    Exact {
        /// Exact-engine step count that ends the segment.
        until: u64,
    },
    /// A leap is drawn and waiting for the horizon to pass its end.
    Leap(PendingLeap),
}

/// Hybrid exact/approximate engine: incremental-table SSA segments with
/// CGP-sized Poisson leaps when propensities stratify.
#[derive(Debug, Clone)]
pub struct HybridEngine {
    /// The exact phase: a full direct-method engine (term, incremental
    /// reaction table, primary RNG stream).
    exact: SsaEngine,
    flat: FlatModel,
    /// Committed species counts — authoritative outside exact segments,
    /// refreshed from the exact engine's term at decision points.
    state: Vec<i64>,
    phase: Phase,
    /// True while `exact` reflects the committed state (stale after a
    /// leap commits, until the next exact segment resynchronises it).
    synced: bool,
    epsilon: f64,
    threshold: f64,
    /// Reported simulation clock.
    time: f64,
    /// Dedicated leap-phase RNG stream.
    leap_rng: SimRng,
    leap_firings: u64,
    leaps: u64,
    /// Phase switches committed (exact→leap and leap→exact).
    switches: u64,
    /// Reusable accumulators for the per-decision CGP bound.
    cgp_scratch: CgpScratch,
    /// Configured kernel knob (see [`KernelDispatch`]).
    dispatch: KernelDispatch,
    /// The knob resolved against this CPU: which kernels the leap-phase
    /// folds run on. Never changes results — both are bit-identical.
    kernel: Kernel,
    /// Reusable propensity row for the leap-phase decision.
    props_buf: Vec<f64>,
    /// Rules with nonzero propensity at the decision point, ascending —
    /// the Poisson sweep iterates these instead of scanning every rule.
    active_buf: Vec<u32>,
    /// Reusable candidate-state row for leap drawing (recycled through
    /// the committed-state vector on leap commits).
    cand_buf: Vec<i64>,
}

impl HybridEngine {
    /// Builds a hybrid engine from a flat model, compiling its
    /// stoichiometry locally.
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] when any rule uses compartments, applies
    /// below the top level or has a non-mass-action law.
    pub fn new(model: Arc<Model>, base_seed: u64, instance: u64) -> Result<Self, FlatModelError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_deps(model, deps, base_seed, instance)
    }

    /// Like [`HybridEngine::new`], reusing an already-compiled
    /// [`ModelDeps`] (shared with the embedded exact engine's reaction
    /// table).
    ///
    /// # Errors
    ///
    /// Returns [`FlatModelError`] when the model is not flat mass-action.
    pub fn with_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
    ) -> Result<Self, FlatModelError> {
        let flat = FlatModel::compile(&model, &deps, "the hybrid SSA/tau engine")?;
        let state = flat.initial_state(&model);
        let exact = SsaEngine::with_deps(Arc::clone(&model), deps, base_seed, instance);
        Ok(HybridEngine {
            exact,
            flat,
            state,
            phase: Phase::Decide,
            synced: true,
            epsilon: DEFAULT_EPSILON,
            threshold: DEFAULT_THRESHOLD,
            time: 0.0,
            leap_rng: sim_rng(base_seed ^ LEAP_STREAM_SALT, instance),
            leap_firings: 0,
            leaps: 0,
            switches: 0,
            cgp_scratch: CgpScratch::default(),
            dispatch: KernelDispatch::Auto,
            kernel: KernelDispatch::Auto.resolve(),
            props_buf: Vec::new(),
            active_buf: Vec::new(),
            cand_buf: Vec::new(),
        })
    }

    /// Selects the kernel implementation for the leap phase's full-width
    /// folds (builder-style; the default is [`KernelDispatch::Auto`]).
    /// Both dispatches are bit-for-bit identical, so this is a
    /// performance knob, never a semantics knob.
    #[must_use]
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self.kernel = dispatch.resolve();
        self
    }

    /// The configured kernel dispatch knob.
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Sets the leap phase's CGP bound ε.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1)"
        );
        self.epsilon = epsilon;
        self
    }

    /// Sets the switch threshold (expected firings per candidate leap).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not finite and ≥ 1.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 1.0,
            "threshold must be finite and >= 1"
        );
        self.threshold = threshold;
        self
    }

    /// The leap phase's CGP bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The switch threshold (expected firings per candidate leap).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Instance id of this trajectory.
    pub fn instance(&self) -> u64 {
        self.exact.instance()
    }

    /// The model driving this engine.
    pub fn model(&self) -> &Arc<Model> {
        self.exact.model()
    }

    /// Total reaction firings (exact steps + leap firings).
    pub fn firings(&self) -> u64 {
        self.exact.steps() + self.leap_firings
    }

    /// Reactions fired one at a time by the exact phase.
    pub fn exact_steps(&self) -> u64 {
        self.exact.steps()
    }

    /// Committed Poisson leaps.
    pub fn leaps(&self) -> u64 {
        self.leaps
    }

    /// Committed phase switches (in either direction).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The committed species counts (ascending interned species order).
    ///
    /// `synced` — not the phase — decides authority: after an exact
    /// segment ends the engine sits in `Decide` with the flat vector not
    /// yet refreshed, so the exact term stays authoritative until the
    /// next leap commits.
    pub fn counts(&self) -> Vec<i64> {
        if self.synced {
            self.flat
                .species
                .iter()
                .map(|&s| self.exact.term().atoms.count(s) as i64)
                .collect()
        } else {
            self.state.clone()
        }
    }

    /// Evaluates the model's observables on the committed state (same
    /// authority rule as [`HybridEngine::counts`]).
    pub fn observe(&self) -> Vec<u64> {
        if self.synced {
            return self.exact.observe();
        }
        self.flat.observe(self.model(), &self.state)
    }

    /// Refreshes the flat state vector from the exact engine's term.
    fn sync_state_from_exact(&mut self) {
        for (i, &s) in self.flat.species.iter().enumerate() {
            self.state[i] = self.exact.term().atoms.count(s) as i64;
        }
    }

    /// Pushes the flat state into the exact engine (leap → exact
    /// hand-off), rebuilding its reaction table.
    fn sync_exact_from_state(&mut self) {
        let atoms: Multiset = self
            .flat
            .species
            .iter()
            .zip(&self.state)
            .filter(|&(_, &c)| c > 0)
            .map(|(&s, &c)| (s, c as u64))
            .collect();
        self.exact.reset_flat_state(atoms, self.time);
        self.synced = true;
    }

    /// Draws a CGP-sized Poisson leap from the committed state, halving
    /// on negativity. Returns `None` when (after shrinking) the leap is no
    /// longer worth `threshold` firings — the caller runs an exact segment
    /// instead.
    ///
    /// The Poisson sweep walks `active` (the nonzero-propensity rules of
    /// the decision point, ascending) — the same rules, in the same
    /// order, that the historical full scan drew for, so the leap-stream
    /// consumption is unchanged draw-for-draw.
    fn draw_leap(
        &mut self,
        props: &[f64],
        active: &[u32],
        a0: f64,
        mut tau: f64,
    ) -> Option<PendingLeap> {
        loop {
            if !(tau.is_finite() && tau * a0 >= self.threshold) {
                return None;
            }
            self.cand_buf.clone_from(&self.state);
            let mut firings = 0u64;
            for &r in active {
                let r = r as usize;
                let k = poisson(&mut self.leap_rng, props[r] * tau);
                firings += k;
                for &(i, d) in &self.flat.delta[r] {
                    self.cand_buf[i] += d * k as i64;
                }
            }
            if self.cand_buf.iter().all(|&c| c >= 0) {
                return Some(PendingLeap {
                    state: std::mem::take(&mut self.cand_buf),
                    end: self.time + tau,
                    firings,
                });
            }
            tau /= 2.0;
        }
    }

    /// The switch decision: from the committed state, enter a leap or the
    /// next exact segment. Consumes leap-stream randomness only when a
    /// leap is actually drawn; never touches the primary stream.
    fn decide(&mut self) {
        if self.synced && matches!(self.phase, Phase::Decide) {
            // Coming out of an exact segment (or from construction):
            // refresh the flat view of the term.
            self.sync_state_from_exact();
        }
        self.flat
            .propensities_into(&self.state, &mut self.props_buf);
        self.active_buf.clear();
        self.active_buf.extend(
            self.props_buf
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a > 0.0)
                .map(|(r, _)| r as u32),
        );
        // Bit-identical to the historical `props.iter().sum()`: zero
        // propensities are exact additive identities on a non-negative
        // running sum, and the kernels add the positive slots in the same
        // serial order (`-0.0` start only surfaces when every rule is
        // dead, where the `> 0.0` comparisons below agree for both
        // zeros).
        let a0 = kernels::row_sum(self.kernel, &self.props_buf);
        let tau = if a0 > 0.0 {
            self.flat.cgp_tau_with(
                &mut self.cgp_scratch,
                &self.state,
                &self.props_buf,
                self.epsilon,
                |_| true,
            )
        } else {
            0.0
        };
        if a0 > 0.0 && tau.is_finite() && tau * a0 >= self.threshold {
            let props = std::mem::take(&mut self.props_buf);
            let active = std::mem::take(&mut self.active_buf);
            let drawn = self.draw_leap(&props, &active, a0, tau);
            self.props_buf = props;
            self.active_buf = active;
            if let Some(p) = drawn {
                if self.synced {
                    self.switches += 1; // exact → leap
                }
                self.synced = false;
                self.phase = Phase::Leap(p);
                return;
            }
        }
        // Exact segment (also the absorbing case: the exact engine
        // fast-forwards and keeps emitting samples).
        if !self.synced {
            self.switches += 1; // leap → exact
            self.sync_exact_from_state();
        }
        self.phase = Phase::Exact {
            until: self.exact.steps() + EXACT_SEGMENT,
        };
    }

    /// Runs until `t_end`, invoking `on_sample(t, observables)` at every
    /// grid time `clock` yields within the interval. Returns the firings
    /// committed during the call.
    ///
    /// The slicing-invariant quantum-execution path: pending exact events
    /// and pending leaps survive the horizon, and samples report the
    /// committed state in force.
    pub fn run_sampled<F>(&mut self, t_end: f64, clock: &mut SampleClock, mut on_sample: F) -> u64
    where
        F: FnMut(f64, &[u64]),
    {
        let mut fired = 0;
        loop {
            match &self.phase {
                Phase::Decide => self.decide(),
                Phase::Exact { until } => {
                    let budget = until.saturating_sub(self.exact.steps());
                    if budget == 0 {
                        self.phase = Phase::Decide;
                        continue;
                    }
                    fired += self
                        .exact
                        .run_sampled_bounded(t_end, clock, budget, &mut on_sample);
                    self.time = self.exact.time();
                    if self.exact.steps() >= *until {
                        self.phase = Phase::Decide;
                        continue;
                    }
                    // Horizon reached mid-segment (pending event held by
                    // the exact engine) or state absorbed: quantum over.
                    return fired;
                }
                Phase::Leap(p) => {
                    let t_next = p.end;
                    let horizon = t_next.min(t_end);
                    while let Some(ts) = clock.peek() {
                        if ts > horizon {
                            break;
                        }
                        let values = self.observe();
                        on_sample(ts, &values);
                        clock.advance();
                    }
                    if t_next > t_end {
                        if self.time < t_end {
                            self.time = t_end;
                        }
                        return fired;
                    }
                    let Phase::Leap(p) = std::mem::replace(&mut self.phase, Phase::Decide) else {
                        unreachable!("matched Leap above");
                    };
                    // Recycle the outgoing state row as the next draw's
                    // candidate buffer.
                    self.cand_buf = std::mem::replace(&mut self.state, p.state);
                    self.time = p.end;
                    self.leap_firings += p.firings;
                    self.leaps += 1;
                    fired += p.firings;
                }
            }
        }
    }

    /// Runs until simulation time reaches `t_end` (or the state absorbs),
    /// without sampling; returns the reactions fired.
    pub fn run_until(&mut self, t_end: f64) -> u64 {
        let mut muted = SampleClock::new(0.0, 1.0).with_limit(0);
        self.run_sampled(t_end, &mut muted, |_, _| {})
    }

    /// Executes one committed transition free-running (no horizon): one
    /// exact reaction or one leap. Returns `(dt, firings)`;
    /// `(0.0, 0)` when the state is absorbing.
    pub fn step_transition(&mut self) -> (f64, u64) {
        let t0 = self.time;
        loop {
            match &self.phase {
                Phase::Decide => self.decide(),
                Phase::Exact { until } => {
                    let until = *until;
                    if self.exact.steps() >= until {
                        self.phase = Phase::Decide;
                        continue;
                    }
                    match self.exact.step() {
                        StepOutcome::Fired { .. } => {
                            self.time = self.exact.time();
                            if self.exact.steps() >= until {
                                self.phase = Phase::Decide;
                            }
                            return (self.time - t0, 1);
                        }
                        StepOutcome::Exhausted => return (0.0, 0),
                    }
                }
                Phase::Leap(_) => {
                    let Phase::Leap(p) = std::mem::replace(&mut self.phase, Phase::Decide) else {
                        unreachable!("matched Leap above");
                    };
                    self.cand_buf = std::mem::replace(&mut self.state, p.state);
                    self.time = p.end;
                    self.leap_firings += p.firings;
                    self.leaps += 1;
                    return (self.time - t0, p.firings);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwc::model::Model;

    fn decay_model(n: u64, rate: f64) -> Arc<Model> {
        let mut m = Model::new("decay");
        let a = m.species("A");
        m.rule("decay").consumes("A", 1).rate(rate).build().unwrap();
        m.initial.add_atoms(a, n);
        m.observe("A", a);
        Arc::new(m)
    }

    fn birth_death_model(birth: f64, death: f64, n0: u64) -> Arc<Model> {
        let mut m = Model::new("bd");
        let a = m.species("A");
        m.rule("birth")
            .produces("A", 1)
            .rate(birth)
            .build()
            .unwrap();
        m.rule("death")
            .consumes("A", 1)
            .rate(death)
            .build()
            .unwrap();
        m.initial.add_atoms(a, n0);
        m.observe("A", a);
        Arc::new(m)
    }

    #[test]
    fn rejects_compartment_models_naming_rule_and_engine() {
        let mut m = Model::new("c");
        m.rule("enter")
            .matches_comp("cell", &[], &[])
            .keeps(0, &[], &[("A", 1)])
            .rate(1.0)
            .build()
            .unwrap();
        let err = HybridEngine::new(Arc::new(m), 0, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("`enter`"), "{msg}");
        assert!(msg.contains("hybrid"), "{msg}");
    }

    #[test]
    fn small_models_never_switch_and_match_plain_ssa_bit_for_bit() {
        // With 30 molecules the CGP bound never reaches the switch
        // threshold, so the hybrid *is* the direct method on the same
        // stream: identical samples, state and step count.
        let model = decay_model(30, 1.0);
        let mut hybrid = HybridEngine::new(Arc::clone(&model), 9, 4).unwrap();
        let mut plain = SsaEngine::new(model, 9, 4);
        let mut hc = SampleClock::new(0.0, 0.25);
        let mut pc = SampleClock::new(0.0, 0.25);
        let mut hs = Vec::new();
        let mut ps = Vec::new();
        // Several quanta, to cross exact-segment boundaries mid-run.
        for t in [0.7, 1.5, 3.0, 6.0] {
            hybrid.run_sampled(t, &mut hc, |t, v| hs.push((t, v.to_vec())));
            plain.run_sampled(t, &mut pc, |t, v| ps.push((t, v.to_vec())));
        }
        assert_eq!(hs, ps);
        assert_eq!(hybrid.observe(), plain.observe());
        assert_eq!(hybrid.exact_steps(), plain.steps());
        assert_eq!(hybrid.time(), plain.time());
        assert_eq!(hybrid.leaps(), 0);
        assert_eq!(hybrid.switches(), 0);
    }

    #[test]
    fn large_populations_engage_the_leap_phase() {
        let model = birth_death_model(5000.0, 1.0, 5000);
        let mut e = HybridEngine::new(model, 42, 0).unwrap();
        e.run_until(4.0);
        assert!(e.leaps() > 0, "no leap on a 5000-molecule population");
        assert!(e.switches() > 0);
        assert!(
            e.leap_firings > e.exact_steps(),
            "{} leap firings vs {} exact steps",
            e.leap_firings,
            e.exact_steps()
        );
        // Stationary mean is 5000; sd ≈ 71.
        let n = e.observe()[0] as f64;
        assert!((n - 5000.0).abs() < 8.0 * 71.0, "A = {n}");
    }

    #[test]
    fn decaying_population_switches_back_to_exact() {
        // Start huge (leap phase), decay to nothing: the engine must hand
        // the state back to the exact phase and finish the tail exactly.
        let model = decay_model(50_000, 1.0);
        let mut e = HybridEngine::new(model, 3, 0).unwrap();
        e.run_until(40.0);
        assert_eq!(e.observe(), vec![0], "population must fully decay");
        assert_eq!(e.firings(), 50_000);
        assert!(e.leaps() > 0);
        assert!(e.exact_steps() > 0, "the tail must run exactly");
        assert!(e.switches() >= 2);
        assert!(e.counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn quantum_slicing_is_bit_identical_across_phases() {
        // The horizon slices must not move the switch points, the leap
        // draws or the exact stream.
        let model = birth_death_model(3000.0, 2.0, 50);
        let mk = || {
            HybridEngine::new(Arc::clone(&model), 17, 2)
                .unwrap()
                .with_epsilon(0.05)
                .with_threshold(8.0)
        };
        let mut whole = mk();
        let mut wc = SampleClock::new(0.0, 0.25);
        let mut ws = Vec::new();
        whole.run_sampled(5.0, &mut wc, |t, v| ws.push((t, v.to_vec())));
        assert!(whole.leaps() > 0, "test must cross into the leap phase");
        assert!(whole.exact_steps() > 0, "test must include exact segments");

        let mut sliced = mk();
        let mut sc = SampleClock::new(0.0, 0.25);
        let mut ss = Vec::new();
        for t in [0.05, 0.21, 0.6, 1.0, 1.31, 2.5, 3.99, 5.0] {
            sliced.run_sampled(t, &mut sc, |t, v| ss.push((t, v.to_vec())));
        }
        assert_eq!(ws, ss);
        assert_eq!(whole.counts(), sliced.counts());
        assert_eq!(whole.firings(), sliced.firings());
        assert_eq!(whole.leaps(), sliced.leaps());
        assert_eq!(whole.switches(), sliced.switches());
        assert_eq!(whole.time(), sliced.time());
    }

    #[test]
    fn absorbing_state_fast_forwards() {
        let model = decay_model(0, 1.0);
        let mut e = HybridEngine::new(model, 7, 0).unwrap();
        let mut clock = SampleClock::new(0.0, 1.0);
        let mut samples = Vec::new();
        e.run_sampled(3.0, &mut clock, |t, v| samples.push((t, v[0])));
        assert_eq!(e.time(), 3.0);
        assert_eq!(samples, vec![(0.0, 0), (1.0, 0), (2.0, 0), (3.0, 0)]);
        assert_eq!(e.step_transition(), (0.0, 0));
    }

    #[test]
    fn observe_is_fresh_at_exact_segment_boundaries() {
        // Regression: after exactly EXACT_SEGMENT exact firings the engine
        // sits in the decide state with the flat vector not yet refreshed;
        // observe()/counts() must read the exact term, not the stale
        // segment-start snapshot.
        let model = decay_model(200, 1.0);
        let mut e = HybridEngine::new(Arc::clone(&model), 5, 0).unwrap();
        let mut reference = SsaEngine::new(model, 5, 0);
        for _ in 0..EXACT_SEGMENT {
            e.step_transition();
            reference.step();
        }
        assert_eq!(e.exact_steps(), EXACT_SEGMENT);
        assert_eq!(e.observe(), reference.observe());
        assert_eq!(e.observe(), vec![200 - EXACT_SEGMENT]);
        assert_eq!(e.counts(), vec![(200 - EXACT_SEGMENT) as i64]);
    }

    #[test]
    fn step_transition_advances_through_both_phases() {
        let model = birth_death_model(5000.0, 1.0, 5000);
        let mut e = HybridEngine::new(model, 1, 0).unwrap();
        let mut events = 0;
        for _ in 0..200 {
            let (dt, fired) = e.step_transition();
            assert!(dt > 0.0);
            events += fired;
        }
        assert_eq!(events, e.firings());
        assert!(e.leaps() > 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let model = decay_model(1, 1.0);
        let _ = HybridEngine::new(model, 1, 0).unwrap().with_threshold(0.0);
    }
}
