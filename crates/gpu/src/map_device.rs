//! Functional GPU offloading: `ff_mapCUDA` re-created.
//!
//! "The user intervention would amount to writing the CUDA code for a CUDA
//! kernel which runs a simulation quantum for a single instance, then
//! wrapping it into `ff_mapCUDA` nodes". [`DeviceMap`] is that wrapper: it
//! owns the set of resident simulation instances, advances all of them one
//! quantum per "kernel" under the barrier semantics of the CUDA execution
//! model (no outcome is visible until the whole kernel retires), and
//! returns both the *real* simulation results — computed by the actual
//! engines behind the [`Engine`] abstraction, so they are bit-identical to
//! a CPU run with the same seeds and engine kind — and the *simulated*
//! device timing from [`crate::executor::simulate_device_run`].

use std::sync::Arc;

use cwc::model::Model;
use gillespie::batch::BatchedSsaEngine;
use gillespie::engine::{BatchEngine, Engine, EngineError, EngineKind, QuantumEngine};
use gillespie::ssa::SampleClock;

use crate::device::DeviceSpec;
use crate::executor::{simulate_device_run, GpuRunReport, WarpPacking};

/// A batch of samples produced by one instance during one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutput {
    /// Instance id.
    pub instance: u64,
    /// `(grid time, observable values)` pairs produced in the quantum.
    pub samples: Vec<(f64, Vec<u64>)>,
}

/// How the resident instances are laid out on the device.
#[derive(Debug)]
enum Lanes {
    /// One engine per lane, advanced lane by lane.
    Scalar(Vec<Engine>),
    /// The batched tier: SoA batches of replicas, each batch advancing
    /// its contiguous block of lanes in lockstep — the closest CPU-side
    /// analogue of the warp execution model the kernel simulates.
    Batched(Vec<BatchedSsaEngine>),
}

/// The device-resident map: all instances advance in lockstep quanta.
#[derive(Debug)]
pub struct DeviceMap {
    lanes: Lanes,
    clocks: Vec<SampleClock>,
    t_end: f64,
    quantum: f64,
    /// Event counts per executed kernel (the timing model's input).
    events_log: Vec<Vec<u64>>,
    time: f64,
}

impl DeviceMap {
    /// Loads `instances` direct-method (SSA) trajectories of `model` onto
    /// the device — the paper's configuration.
    pub fn new(
        model: Arc<Model>,
        instances: u64,
        base_seed: u64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Self {
        Self::with_engine(
            EngineKind::Ssa,
            model,
            instances,
            base_seed,
            t_end,
            quantum,
            sample_period,
        )
        .expect("SSA engine construction is infallible")
    }

    /// Loads `instances` trajectories driven by the given engine kind.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when `kind` cannot drive `model` (e.g.
    /// tau-leaping on a compartment model).
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine(
        kind: EngineKind,
        model: Arc<Model>,
        instances: u64,
        base_seed: u64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Result<Self, EngineError> {
        // Compile the model once for the whole device load; every lane's
        // engine shares the dependency graph.
        let deps = Arc::new(gillespie::deps::ModelDeps::compile(&model));
        let lanes = match kind {
            EngineKind::Batched { width } => {
                kind.validate()?;
                let mut batches = Vec::new();
                let mut first = 0u64;
                while first < instances {
                    let w = (width as u64).min(instances - first) as usize;
                    batches.push(BatchedSsaEngine::with_deps(
                        Arc::clone(&model),
                        Arc::clone(&deps),
                        base_seed,
                        first,
                        w,
                    )?);
                    first += w as u64;
                }
                Lanes::Batched(batches)
            }
            _ => Lanes::Scalar(
                (0..instances)
                    .map(|i| {
                        kind.build_with_deps(Arc::clone(&model), Arc::clone(&deps), base_seed, i)
                    })
                    .collect::<Result<_, _>>()?,
            ),
        };
        let clocks = (0..instances)
            .map(|_| SampleClock::new(0.0, sample_period))
            .collect();
        Ok(DeviceMap {
            lanes,
            clocks,
            t_end,
            quantum,
            events_log: Vec::new(),
            time: 0.0,
        })
    }

    /// True when every instance reached the horizon.
    pub fn is_done(&self) -> bool {
        self.time >= self.t_end
    }

    /// Executes one kernel: every unfinished instance advances one quantum.
    ///
    /// Returns the outputs of all instances (the kernel-wide barrier:
    /// nothing is returned until everything in the kernel finished, exactly
    /// the "collection of outcomes could not start until all the instances
    /// have completed the quantum" constraint).
    pub fn run_kernel(&mut self) -> Vec<KernelOutput> {
        let horizon = (self.time + self.quantum).min(self.t_end);
        let mut events = vec![0u64; self.clocks.len()];
        let mut outputs = Vec::with_capacity(self.clocks.len());
        match &mut self.lanes {
            Lanes::Scalar(engines) => {
                for (i, engine) in engines.iter_mut().enumerate() {
                    // Dispatch through the QuantumEngine contract — the
                    // "kernel" only needs advance-one-quantum, whatever
                    // the integrator.
                    let outcome =
                        QuantumEngine::advance_quantum(engine, horizon, &mut self.clocks[i]);
                    events[i] = outcome.events;
                    if !outcome.samples.is_empty() {
                        outputs.push(KernelOutput {
                            instance: engine.instance(),
                            samples: outcome.samples,
                        });
                    }
                }
            }
            Lanes::Batched(batches) => {
                for batch in batches.iter_mut() {
                    // Each batch owns the contiguous block of lanes (and
                    // clocks) starting at its first instance.
                    let first = batch.first_instance() as usize;
                    let w = batch.width();
                    let outcomes =
                        batch.advance_quantum_batch(horizon, &mut self.clocks[first..first + w]);
                    for (r, outcome) in outcomes.into_iter().enumerate() {
                        events[first + r] = outcome.events;
                        if !outcome.samples.is_empty() {
                            outputs.push(KernelOutput {
                                instance: batch.instance(r),
                                samples: outcome.samples,
                            });
                        }
                    }
                }
            }
        }
        self.events_log.push(events);
        self.time = horizon;
        outputs
    }

    /// Runs kernels until the horizon, returning all outputs.
    pub fn run_to_end(&mut self) -> Vec<KernelOutput> {
        let mut all = Vec::new();
        while !self.is_done() {
            all.extend(self.run_kernel());
        }
        all
    }

    /// Simulated device timing of the kernels executed so far.
    pub fn device_timing(&self, device: &DeviceSpec, packing: WarpPacking) -> GpuRunReport {
        simulate_device_run(&self.events_log, device, packing)
    }

    /// Per-kernel event matrix (for external timing models, e.g. the CPU
    /// side of Table I).
    pub fn events_log(&self) -> &[Vec<u64>] {
        &self.events_log
    }

    /// Total SSA events fired across all instances.
    pub fn total_events(&self) -> u64 {
        self.events_log.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels::simple::decay;

    fn map() -> DeviceMap {
        DeviceMap::new(Arc::new(decay(30, 1.0)), 4, 9, 2.0, 0.5, 0.25)
    }

    #[test]
    fn kernels_advance_lockstep() {
        let mut m = map();
        assert!(!m.is_done());
        m.run_kernel();
        assert_eq!(m.events_log().len(), 1);
        m.run_kernel();
        m.run_kernel();
        m.run_kernel();
        assert!(m.is_done());
    }

    #[test]
    fn device_results_match_cpu_results_exactly() {
        // The same seeds on a plain engine must reproduce the device's
        // samples bit-for-bit, for every engine kind: offloading changes
        // *where*, not *what*.
        let model = Arc::new(decay(30, 1.0));
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.1 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
            // Batched lanes: 4 instances at width 3 → batches of 3 and 1,
            // each replica still bit-identical to `kind.build` (scalar SSA).
            EngineKind::Batched { width: 3 },
        ] {
            let mut device =
                DeviceMap::with_engine(kind, Arc::clone(&model), 4, 9, 2.0, 0.5, 0.25).unwrap();
            let outputs = device.run_to_end();

            for i in 0..4u64 {
                let mut engine = kind.build(Arc::clone(&model), 9, i).unwrap();
                let mut clock = SampleClock::new(0.0, 0.25);
                let expected = engine.advance_quantum(2.0, &mut clock).samples;
                let got: Vec<(f64, Vec<u64>)> = outputs
                    .iter()
                    .filter(|o| o.instance == i)
                    .flat_map(|o| o.samples.clone())
                    .collect();
                assert_eq!(got, expected, "{kind}: instance {i}");
            }
        }
    }

    #[test]
    fn timing_reflects_executed_kernels() {
        let mut m = map();
        m.run_to_end();
        let device = DeviceSpec::tesla_k40(1e-6);
        let t = m.device_timing(&device, WarpPacking::RebalanceEachQuantum);
        assert!(t.total_s > 0.0);
        assert!(t.kernels >= 1);
        assert!(t.divergence >= 1.0);
        assert!(m.total_events() > 0);
    }
}
