//! # simt — a SIMT GPGPU execution-model simulator
//!
//! The reproduction's substitute for the paper's NVidia Tesla K40 (see
//! DESIGN.md §3). Table I of the paper is about the *execution model* —
//! "in the SIMT model all threads in a block not necessarily should execute
//! the same instruction, however any divergence turns into a performance
//! penalty" — and about how quantum size interacts with per-quantum load
//! rebalancing. Both are modelled here:
//!
//! - [`device`]: the hardware parameters ([`DeviceSpec::tesla_k40`]);
//! - [`executor`]: lockstep-warp timing with list-scheduled warp slots and
//!   optional per-quantum re-packing of instances into warps;
//! - [`map_device`]: the functional `ff_mapCUDA` equivalent — it advances
//!   *real* engines behind the [`gillespie::engine::Engine`] abstraction
//!   (any [`gillespie::engine::EngineKind`]: SSA, first-reaction, fixed
//!   or adaptive tau-leaping, hybrid) under kernel-barrier semantics, so
//!   simulation results
//!   are bit-identical to CPU execution while the timing comes from the
//!   SIMT model.
//!
//! ## Example
//!
//! ```
//! use simt::{DeviceMap, DeviceSpec, WarpPacking};
//! use std::sync::Arc;
//!
//! let model = Arc::new(biomodels::simple::decay(50, 1.0));
//! let mut device = DeviceMap::new(model, 8, 42, 2.0, 0.5, 0.25);
//! let outputs = device.run_to_end();
//! assert!(!outputs.is_empty());
//! let timing = device.device_timing(&DeviceSpec::tesla_k40(1e-6),
//!                                   WarpPacking::RebalanceEachQuantum);
//! assert!(timing.divergence >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod executor;
pub mod map_device;

pub use device::DeviceSpec;
pub use executor::{simulate_device_run, GpuRunReport, WarpPacking};
pub use map_device::{DeviceMap, KernelOutput};
