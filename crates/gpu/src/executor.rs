//! SIMT timing simulation of quantum-sliced SSA execution.
//!
//! The paper: "due to the atomic nature of the CUDA kernel execution model,
//! collection of outcomes for a simulation quantum could not start until
//! all the instances have completed the quantum" and "any divergence turns
//! into a performance penalty (thread stall). Due to very uneven execution
//! time of different trajectories (due to random walks of simulation time),
//! thread divergence turns into load balancing and eventually into
//! performance degradation."
//!
//! The model: one kernel per quantum. Threads (instances) execute their
//! quantum's events in lockstep warps — a warp costs the *maximum* of its
//! threads' event counts. Warps are list-scheduled onto the device's warp
//! slots. Between kernels, the stream scheduler may *re-pack* instances
//! into warps sorted by the previous quantum's intensity (the "load
//! re-balancing strategy after the computation of each quantum" that the
//! paper credits for making the same code tunable to GPU hardware):
//! because SSA event intensity is autocorrelated in time, sorting clusters
//! similar-progress instances into the same warp and cuts divergence.

use crate::device::DeviceSpec;

/// How instances are packed into warps between kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarpPacking {
    /// Keep the initial instance order for the whole run.
    Static,
    /// Re-sort instances by the previous quantum's event count before each
    /// kernel (the paper's per-quantum load rebalancing).
    #[default]
    RebalanceEachQuantum,
}

/// Timing breakdown of one simulated GPU run.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRunReport {
    /// Total wall time on the device.
    pub total_s: f64,
    /// Number of kernels launched (one per quantum).
    pub kernels: usize,
    /// Time spent computing (sum of kernel makespans).
    pub compute_s: f64,
    /// Time spent on fixed per-kernel overheads (launch + transfers).
    pub overhead_s: f64,
    /// Divergence factor ≥ 1: lane-time actually paid over lane-time that
    /// perfect intra-warp balance would pay.
    pub divergence: f64,
}

/// Simulates the device-side execution of a quantum-sliced run.
///
/// `events_per_quantum[q][i]` is the number of SSA events instance `i`
/// fires during quantum `q` (0 once the instance has finished). The same
/// matrix driven through the multicore model gives the CPU side of
/// Table I, so both sides share the *identical* workload.
pub fn simulate_device_run(
    events_per_quantum: &[Vec<u64>],
    device: &DeviceSpec,
    packing: WarpPacking,
) -> GpuRunReport {
    simulate_device_run_with_buffering(events_per_quantum, device, packing, 1.0)
}

/// Like [`simulate_device_run`], with per-thread sample buffering taken
/// into account: each thread holds `samples_per_quantum` results on chip,
/// which lowers warp occupancy (see
/// [`DeviceSpec::occupancy_warp_slots`]) — the mechanism that makes large
/// quanta (high Q/τ) pay at high instance counts in Table I.
pub fn simulate_device_run_with_buffering(
    events_per_quantum: &[Vec<u64>],
    device: &DeviceSpec,
    packing: WarpPacking,
    samples_per_quantum: f64,
) -> GpuRunReport {
    let instances = events_per_quantum.first().map(Vec::len).unwrap_or(0);
    let mut order: Vec<usize> = (0..instances).collect();
    let mut prev_events: Vec<u64> = vec![0; instances];

    let mut compute_s = 0.0;
    let mut overhead_s = 0.0;
    let mut paid_lane_events = 0u64; // Σ warps (warp_size × max)
    let mut useful_lane_events = 0u64; // Σ threads e_i

    for quantum in events_per_quantum {
        // Active instances this kernel (finished ones are not shipped).
        let active: Vec<usize> = order.iter().copied().filter(|&i| quantum[i] > 0).collect();
        if active.is_empty() {
            continue;
        }
        // Warp formation over the (possibly re-sorted) active instances.
        let warp_times: Vec<u64> = active
            .chunks(device.warp_size)
            .map(|warp| {
                let max = warp.iter().map(|&i| quantum[i]).max().expect("non-empty");
                paid_lane_events += max * warp.len() as u64;
                useful_lane_events += warp.iter().map(|&i| quantum[i]).sum::<u64>();
                max
            })
            .collect();
        // List-schedule warps onto the warp slots (greedy, deterministic).
        let slots = device.occupancy_warp_slots(samples_per_quantum);
        let mut slot_load = vec![0u64; slots.min(warp_times.len()).max(1)];
        for &w in &warp_times {
            let min = slot_load
                .iter_mut()
                .min_by_key(|l| **l)
                .expect("at least one slot");
            *min += w;
        }
        let makespan_events = slot_load.iter().copied().max().unwrap_or(0);
        compute_s += makespan_events as f64 * device.sec_per_event;
        overhead_s += device.kernel_overhead_s(active.len(), samples_per_quantum);

        // Rebalance for the next kernel.
        if packing == WarpPacking::RebalanceEachQuantum {
            for (i, e) in quantum.iter().enumerate() {
                prev_events[i] = *e;
            }
            order.sort_by(|&a, &b| prev_events[b].cmp(&prev_events[a]).then(a.cmp(&b)));
        }
    }

    let kernels = events_per_quantum
        .iter()
        .filter(|q| q.iter().any(|&e| e > 0))
        .count();
    GpuRunReport {
        total_s: compute_s + overhead_s,
        kernels,
        compute_s,
        overhead_s,
        divergence: if useful_lane_events == 0 {
            1.0
        } else {
            paid_lane_events as f64 / useful_lane_events as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_k40(1e-6)
    }

    #[test]
    fn uniform_work_has_no_divergence() {
        let events = vec![vec![100u64; 64]; 4];
        let r = simulate_device_run(&events, &device(), WarpPacking::Static);
        assert!((r.divergence - 1.0).abs() < 1e-12);
        assert_eq!(r.kernels, 4);
        // 64 instances = 2 warps ≤ 90 slots -> makespan = 100 events/kernel.
        let expected_compute = 4.0 * 100.0 * device().sec_per_event;
        assert!((r.compute_s - expected_compute).abs() < 1e-12);
    }

    #[test]
    fn divergence_grows_with_skew() {
        // One hot thread per warp: warp pays the max for everyone.
        let mut quantum = vec![10u64; 32];
        quantum[0] = 1000;
        let r = simulate_device_run(&[quantum], &device(), WarpPacking::Static);
        assert!(r.divergence > 2.0, "divergence {}", r.divergence);
    }

    #[test]
    fn rebalancing_cuts_divergence_for_autocorrelated_load() {
        // Two intensity classes interleaved: static packing mixes them in
        // every warp, so every warp pays the hot-thread maximum.
        // Rebalancing separates the classes after the first quantum. The
        // wall-time benefit appears when warps outnumber the 90 warp slots
        // (here 8192 threads = 256 warps), because homogeneous cheap warps
        // stop occupying slots for the hot ones.
        let quanta: Vec<Vec<u64>> = (0..20)
            .map(|_| {
                (0..8192)
                    .map(|i| if i % 2 == 0 { 10u64 } else { 1000 })
                    .collect()
            })
            .collect();
        let stat = simulate_device_run(&quanta, &device(), WarpPacking::Static);
        let reb = simulate_device_run(&quanta, &device(), WarpPacking::RebalanceEachQuantum);
        assert!(
            reb.total_s < stat.total_s * 0.85,
            "rebalanced {} vs static {}",
            reb.total_s,
            stat.total_s
        );
        // The pure compute benefit is larger; fixed per-kernel overheads
        // (launch + unified-memory migration) dilute it in total_s.
        assert!(
            reb.compute_s < stat.compute_s * 0.72,
            "compute: rebalanced {} vs static {}",
            reb.compute_s,
            stat.compute_s
        );
        assert!(reb.divergence < stat.divergence);
    }

    #[test]
    fn rebalancing_cannot_beat_the_global_straggler_below_slot_count() {
        // With fewer warps than slots the kernel ends when the slowest warp
        // does; packing cannot hide a single globally hot thread — the
        // paper's "GPGPU succeed[s] to exploit only a fraction of its peak
        // power" effect.
        let quanta: Vec<Vec<u64>> = (0..5)
            .map(|_| {
                (0..256)
                    .map(|i| if i == 0 { 5000u64 } else { 10 })
                    .collect()
            })
            .collect();
        let stat = simulate_device_run(&quanta, &device(), WarpPacking::Static);
        let reb = simulate_device_run(&quanta, &device(), WarpPacking::RebalanceEachQuantum);
        assert!((stat.compute_s - reb.compute_s).abs() < 1e-12);
        let floor = 5.0 * 5000.0 * device().sec_per_event;
        assert!((stat.compute_s - floor).abs() < 1e-9);
    }

    #[test]
    fn finished_instances_leave_the_device() {
        // Instance 1 finishes after the first quantum; later kernels ship
        // only instance 0.
        let events = vec![vec![100, 100], vec![100, 0], vec![100, 0]];
        let r = simulate_device_run(&events, &device(), WarpPacking::Static);
        assert_eq!(r.kernels, 3);
        // Overhead for kernel 1 covers 2 instances; kernels 2-3 only 1.
        let d = device();
        let expected = d.kernel_overhead_s(2, 1.0) + 2.0 * d.kernel_overhead_s(1, 1.0);
        assert!((r.overhead_s - expected).abs() < 1e-12);
    }

    #[test]
    fn more_warps_than_slots_serialise() {
        // 90 slots; 180 uniform warps -> two rounds.
        let instances = 180 * 32;
        let events = vec![vec![50u64; instances]];
        let r = simulate_device_run(&events, &device(), WarpPacking::Static);
        let expected_compute = 2.0 * 50.0 * device().sec_per_event;
        assert!((r.compute_s - expected_compute).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_zero() {
        let r = simulate_device_run(&[], &device(), WarpPacking::Static);
        assert_eq!(r.total_s, 0.0);
        assert_eq!(r.kernels, 0);
        assert_eq!(r.divergence, 1.0);
    }
}
