//! Device specifications for the SIMT execution-model simulator.
//!
//! The paper's GPGPU port targets an NVidia Tesla K40 (15 SMX, 2880 CUDA
//! cores) via CUDA Unified Memory. We do not have the silicon; what Table I
//! actually measures is the *execution model* — lockstep warps, divergence,
//! kernel-grain synchronisation, host–device transfer — so that is what
//! [`DeviceSpec`] parameterises (see DESIGN.md §3).

/// Hardware parameters of a simulated SIMT device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Scalar lanes per SM (CUDA cores / SM).
    pub lanes_per_sm: usize,
    /// Threads per warp (lockstep granularity).
    pub warp_size: usize,
    /// Seconds one lane needs per SSA event (scalar speed of a lane).
    pub sec_per_event: f64,
    /// Fixed cost of launching one kernel (driver + dispatch).
    pub kernel_launch_s: f64,
    /// Fixed unified-memory migration latency per kernel.
    pub mem_latency_s: f64,
    /// Bytes of task state migrated per instance per kernel.
    pub bytes_per_instance: f64,
    /// Bytes migrated per buffered sample per instance per kernel (result
    /// rows travelling back through unified memory).
    pub bytes_per_sample: f64,
    /// Host–device bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// On-chip budget (registers/local memory), in abstract units, that
    /// bounds how many threads can be resident at once.
    pub occupancy_budget: f64,
    /// Base on-chip footprint of one thread, in the same units.
    pub thread_base_footprint: f64,
    /// Additional footprint per buffered sample (one per τ within the
    /// quantum): larger quanta need larger per-thread result buffers, which
    /// lowers occupancy — the mechanism behind Table I's Q/τ sensitivity.
    pub sample_footprint: f64,
}

impl DeviceSpec {
    /// A Tesla-K40-like device, calibrated against a host CPU whose cores
    /// need `cpu_sec_per_event` seconds per SSA event.
    ///
    /// A K40 lane (745 MHz, in-order, no branch prediction) is taken to be
    /// ~3.3× slower than a ~2 GHz out-of-order Xeon core on this pointer-
    /// chasing workload; with 2880 lanes the aggregate throughput advantage
    /// is ≈ 27× over 32 cores *before* divergence losses — matching the
    /// ≈ 2× net win Table I reports once divergence is paid.
    pub fn tesla_k40(cpu_sec_per_event: f64) -> Self {
        DeviceSpec {
            name: "Tesla K40 (simulated)".to_owned(),
            sms: 15,
            lanes_per_sm: 192,
            warp_size: 32,
            sec_per_event: cpu_sec_per_event * 3.3,
            kernel_launch_s: 10e-6,
            mem_latency_s: 20e-6,
            bytes_per_instance: 64.0,
            bytes_per_sample: 64.0,
            bandwidth_bps: 8e9, // PCIe gen3 x16 effective
            // Calibrated so a 1-sample quantum keeps all 90 warp slots
            // resident while a 10-sample quantum leaves 30 (per-thread
            // result buffers eat registers/local memory).
            occupancy_budget: 4800.0,
            thread_base_footprint: 1.0,
            sample_footprint: 0.4,
        }
    }

    /// Total scalar lanes ("CUDA cores").
    pub fn total_lanes(&self) -> usize {
        self.sms * self.lanes_per_sm
    }

    /// Warps that can execute concurrently across the device.
    pub fn warp_slots(&self) -> usize {
        (self.total_lanes() / self.warp_size).max(1)
    }

    /// Warp slots actually usable when each thread buffers
    /// `samples_per_quantum` samples (occupancy limit).
    pub fn occupancy_warp_slots(&self, samples_per_quantum: f64) -> usize {
        let per_thread = self.thread_base_footprint + self.sample_footprint * samples_per_quantum;
        let resident_threads = (self.occupancy_budget / per_thread).floor() as usize;
        (resident_threads / self.warp_size).clamp(1, self.warp_slots())
    }

    /// Per-kernel overhead (launch + memory migration) for `n` resident
    /// instances each buffering `samples_per_quantum` samples.
    pub fn kernel_overhead_s(&self, instances: usize, samples_per_quantum: f64) -> f64 {
        let per_instance = self.bytes_per_instance + self.bytes_per_sample * samples_per_quantum;
        self.kernel_launch_s
            + self.mem_latency_s
            + (instances as f64 * per_instance) / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_has_2880_cores() {
        let d = DeviceSpec::tesla_k40(1e-6);
        assert_eq!(d.total_lanes(), 2880);
        assert_eq!(d.warp_slots(), 90);
    }

    #[test]
    fn lane_is_slower_than_cpu_core() {
        let d = DeviceSpec::tesla_k40(2e-6);
        assert!(d.sec_per_event > 2e-6);
    }

    #[test]
    fn occupancy_shrinks_with_quantum_size() {
        let d = DeviceSpec::tesla_k40(1e-6);
        assert_eq!(
            d.occupancy_warp_slots(1.0),
            90,
            "1-sample quanta keep full occupancy"
        );
        assert_eq!(
            d.occupancy_warp_slots(10.0),
            30,
            "10-sample quanta drop to a third"
        );
        assert!(d.occupancy_warp_slots(1000.0) >= 1);
    }

    #[test]
    fn overhead_grows_with_instances_and_samples() {
        let d = DeviceSpec::tesla_k40(1e-6);
        assert!(d.kernel_overhead_s(2048, 1.0) > d.kernel_overhead_s(128, 1.0));
        assert!(d.kernel_overhead_s(128, 10.0) > d.kernel_overhead_s(128, 1.0));
        assert!(d.kernel_overhead_s(0, 1.0) >= d.kernel_launch_s);
    }
}
