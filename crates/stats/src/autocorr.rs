//! Autocorrelation and ACF-based period estimation.
//!
//! A second, independent estimator for the oscillation period (the paper's
//! Neurospora analysis): instead of detecting peaks in the (noisy) series,
//! find the first significant maximum of the autocorrelation function. The
//! two estimators cross-validate each other in the tests — disagreement
//! flags either noise mis-handling or grid problems.

/// Normalised autocorrelation of `xs` for lags `0..=max_lag`.
///
/// `acf[0]` is 1 (for non-constant series); constant or too-short series
/// yield all-zero tails.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag.min(n.saturating_sub(1)) {
        if var <= f64::EPSILON {
            acf.push(if lag == 0 { 1.0 } else { 0.0 });
            continue;
        }
        let cov: f64 = (0..n - lag)
            .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
            .sum::<f64>()
            / n as f64;
        acf.push(cov / var);
    }
    acf
}

/// Estimates the dominant period of a uniformly sampled series from the
/// first local maximum of its ACF beyond the initial decay.
///
/// `dt` is the sampling period. Returns `None` when no significant
/// (> `min_correlation`) maximum exists.
pub fn period_from_acf(xs: &[f64], dt: f64, min_correlation: f64) -> Option<f64> {
    if xs.len() < 8 || dt.is_nan() || dt <= 0.0 {
        return None;
    }
    let max_lag = xs.len() / 2;
    let acf = autocorrelation(xs, max_lag);
    // Skip the initial decay: wait until the ACF first drops below zero.
    let first_negative = acf.iter().position(|&v| v < 0.0)?;
    // The first local maximum after that, if high enough, marks the period.
    let mut best: Option<(usize, f64)> = None;
    for lag in (first_negative + 1)..acf.len().saturating_sub(1) {
        if acf[lag] >= acf[lag - 1] && acf[lag] > acf[lag + 1] && acf[lag] >= min_correlation {
            match best {
                Some((_, b)) if b >= acf[lag] => {}
                _ => best = Some((lag, acf[lag])),
            }
            // First qualifying maximum is the fundamental; stop.
            break;
        }
    }
    best.map(|(lag, _)| lag as f64 * dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(period: f64, n: usize, dt: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 * dt / period).sin() * 10.0 + 50.0)
            .collect()
    }

    #[test]
    fn acf_lag0_is_one_and_bounded() {
        let xs = sine(20.0, 400, 0.5);
        let acf = autocorrelation(&xs, 100);
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert!(acf.iter().all(|&v| (-1.0 - 1e-9..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn acf_of_constant_series_is_degenerate() {
        let acf = autocorrelation(&[3.0; 50], 10);
        assert_eq!(acf[0], 1.0);
        assert!(acf[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sine_period_recovered_from_acf() {
        let xs = sine(22.0, 800, 0.5);
        let p = period_from_acf(&xs, 0.5, 0.3).expect("period exists");
        assert!((p - 22.0).abs() < 1.0, "ACF period {p}");
    }

    #[test]
    fn acf_and_peak_methods_agree_on_noisy_data() {
        let mut xs = sine(18.0, 900, 0.5);
        for (i, v) in xs.iter_mut().enumerate() {
            *v += (((i * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5) * 8.0;
        }
        let times: Vec<f64> = (0..xs.len()).map(|i| i as f64 * 0.5).collect();
        let peaks = crate::period::analyse_period(&times, &xs, 5, 0.3, 10)
            .mean_period()
            .expect("peak period");
        let acf = period_from_acf(&xs, 0.5, 0.2).expect("acf period");
        assert!((peaks - acf).abs() < 2.0, "peak {peaks} vs acf {acf}");
    }

    #[test]
    fn aperiodic_series_yields_none() {
        // Monotone drift has a non-negative ACF tail (no zero crossing).
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        assert_eq!(period_from_acf(&xs, 1.0, 0.3), None);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(autocorrelation(&[], 5).is_empty());
        assert_eq!(period_from_acf(&[1.0, 2.0], 1.0, 0.5), None);
        assert_eq!(period_from_acf(&sine(10.0, 100, 0.5), 0.0, 0.5), None);
    }
}
