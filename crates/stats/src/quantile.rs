//! Online quantile estimation (the P² algorithm).
//!
//! Jain & Chlamtac's P² estimator maintains a target quantile with five
//! markers and O(1) memory — the right shape for an on-line statistical
//! engine that cannot buffer whole trajectories ("high-quality results
//! might turn into big data", as the paper puts it).

/// Streaming estimator of a single quantile via the P² algorithm.
///
/// # Examples
///
/// ```
/// use streamstat::quantile::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1001 {
///     q.push(i as f64);
/// }
/// let median = q.estimate().unwrap();
/// assert!((median - 501.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (q0..q4).
    heights: [f64; 5],
    /// Marker positions (1-based, n0..n4).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    seen: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p` (0 < p < 1).
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside (0, 1).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            seen: 0,
        }
    }

    /// The target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations fed so far.
    pub fn count(&self) -> usize {
        self.seen
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        if self.seen < 5 {
            self.heights[self.seen] = x;
            self.seen += 1;
            if self.seen == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("values are not NaN"));
            }
            return;
        }
        self.seen += 1;
        // Find the cell containing x and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust the interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// Current estimate (`None` with no data; exact for ≤ 5 observations).
    pub fn estimate(&self) -> Option<f64> {
        match self.seen {
            0 => None,
            n if n < 5 => {
                // Exact small-sample quantile (nearest-rank).
                let mut v = self.heights[..n].to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("values are not NaN"));
                let rank = ((self.p * n as f64).ceil() as usize).clamp(1, n);
                Some(v[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }

    /// Representative pseudo-samples of everything seen so far: `k`
    /// inverse-CDF points of the marker curve — except while five or
    /// fewer observations exist, where the raw values are returned
    /// verbatim (possibly more than `k`) so small samples stay exact.
    /// This is the "downsample" half of the
    /// [`Mergeable`](crate::merge::Mergeable) merge and the portable form
    /// the sharded farm ships over the wire.
    pub fn downsample(&self, k: usize) -> Vec<f64> {
        let n = self.seen;
        if n == 0 || k == 0 {
            return Vec::new();
        }
        if n <= 5 {
            return self.heights[..n].to_vec();
        }
        let k = k.min(n);
        (0..k)
            .map(|j| {
                // Mid-point ranks over [1, n] (1-based, like the P² marker
                // positions), linearly interpolated through the markers.
                let r = 1.0 + (j as f64 + 0.5) / k as f64 * (n as f64 - 1.0);
                self.height_at_rank(r)
            })
            .collect()
    }

    /// Linear interpolation of the marker curve at 1-based rank `r`.
    fn height_at_rank(&self, r: f64) -> f64 {
        for i in 0..4 {
            if r <= self.positions[i + 1] {
                let (n0, n1) = (self.positions[i], self.positions[i + 1]);
                let (q0, q1) = (self.heights[i], self.heights[i + 1]);
                if n1 <= n0 {
                    return q1;
                }
                let t = ((r - n0) / (n1 - n0)).clamp(0.0, 1.0);
                return q0 + t * (q1 - q0);
            }
        }
        self.heights[4]
    }

    /// Raw marker state `(p, heights, positions, desired, seen)` — the
    /// wire form (the increments are a pure function of `p` and are not
    /// included).
    pub fn raw_parts(&self) -> (f64, [f64; 5], [f64; 5], [f64; 5], u64) {
        (
            self.p,
            self.heights,
            self.positions,
            self.desired,
            self.seen as u64,
        )
    }

    /// Reassembles an estimator from [`P2Quantile::raw_parts`] output.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside (0, 1), like [`P2Quantile::new`].
    pub fn from_raw_parts(
        p: f64,
        heights: [f64; 5],
        positions: [f64; 5],
        desired: [f64; 5],
        seen: u64,
    ) -> Self {
        let mut q = P2Quantile::new(p);
        q.heights = heights;
        q.positions = positions;
        q.desired = desired;
        q.seen = seen as usize;
        q
    }
}

impl crate::merge::Mergeable for P2Quantile {
    /// *Approximate* merge: the P² marker invariant cannot be combined
    /// exactly, so both estimators are downsampled to pseudo-samples —
    /// [`2 × P2_DOWNSAMPLE`](crate::merge::P2_DOWNSAMPLE) in total, split
    /// proportionally to the two observation counts — which are replayed,
    /// sorted, into a fresh estimator. The proportional split keeps the
    /// merge sensible for any size ratio of the two sides;
    /// [`P2Quantile::count`] consequently reports replayed pseudo-samples,
    /// not the exact union count.
    ///
    /// # Panics
    ///
    /// Panics when the two estimators target different quantiles.
    fn merge_from(&mut self, other: &Self) {
        assert!(
            (self.p - other.p).abs() < 1e-12,
            "cannot merge estimators of different quantile targets ({} vs {})",
            self.p,
            other.p
        );
        if other.seen == 0 {
            return;
        }
        if self.seen == 0 {
            *self = other.clone();
            return;
        }
        let budget = 2 * crate::merge::P2_DOWNSAMPLE;
        let k_self =
            ((budget * self.seen) as f64 / (self.seen + other.seen) as f64).round() as usize;
        let k_self = k_self.clamp(1, budget - 1);
        let mut pts = self.downsample(k_self);
        pts.extend(other.downsample(budget - k_self));
        pts.sort_by(|a, b| a.partial_cmp(b).expect("marker heights are not NaN"));
        let mut merged = P2Quantile::new(self.p);
        for x in pts {
            merged.push(x);
        }
        *self = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so tests need no rand dependency here.
    fn lcg_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn median_of_uniform_stream() {
        let xs = lcg_stream(42, 50_000);
        let mut q = P2Quantile::new(0.5);
        for &x in &xs {
            q.push(x);
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p90_of_uniform_stream() {
        let xs = lcg_stream(7, 50_000);
        let mut q = P2Quantile::new(0.9);
        for &x in &xs {
            q.push(x);
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.9).abs() < 0.02, "p90 estimate {est}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.push(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.push(1.0);
        q.push(2.0);
        // Nearest-rank median of {1,2,3} = 2.
        assert_eq!(q.estimate(), Some(2.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn handles_sorted_and_reversed_input() {
        for reversed in [false, true] {
            let mut xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
            if reversed {
                xs.reverse();
            }
            let mut q = P2Quantile::new(0.25);
            for &x in &xs {
                q.push(x);
            }
            let est = q.estimate().unwrap();
            assert!(
                (est - 2_500.0).abs() < 150.0,
                "p25 of 0..10000 ({reversed}): {est}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_out_of_range_p() {
        let _ = P2Quantile::new(1.0);
    }
}
