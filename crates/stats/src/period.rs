//! Oscillation analysis: peak detection and local period estimation.
//!
//! The paper's cloud experiment "compute\[s\] the period of each oscillation
//! and plot\[s\] the moving average of more than 200 simulations of the local
//! period" for the Neurospora circadian model. This module provides that
//! analysis: smooth the series, find its peaks, and report the sequence of
//! peak-to-peak intervals (the *local periods*).

use crate::filter::savitzky_golay;

/// A detected local maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index into the series.
    pub index: usize,
    /// Time of the peak (grid time of that index).
    pub time: f64,
    /// Smoothed value at the peak.
    pub value: f64,
}

/// Finds local maxima of `values` that rise at least `min_prominence`
/// above the lower of the two surrounding valleys and are separated by at
/// least `min_distance` indices.
///
/// `times[i]` supplies the time of sample `i` (must be the same length as
/// `values`).
///
/// # Panics
///
/// Panics when `times` and `values` lengths differ.
pub fn find_peaks(
    times: &[f64],
    values: &[f64],
    min_prominence: f64,
    min_distance: usize,
) -> Vec<Peak> {
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    let n = values.len();
    let mut peaks: Vec<Peak> = Vec::new();
    let mut i = 1;
    while i + 1 < n {
        if values[i] >= values[i - 1] && values[i] > values[i + 1] {
            // Walk left/right to the surrounding valleys.
            let mut left_min = values[i];
            for j in (0..i).rev() {
                left_min = left_min.min(values[j]);
                if values[j] > values[i] {
                    break;
                }
            }
            let mut right_min = values[i];
            for &vj in values.iter().skip(i + 1) {
                right_min = right_min.min(vj);
                if vj > values[i] {
                    break;
                }
            }
            let prominence = values[i] - left_min.max(right_min);
            if prominence >= min_prominence {
                let candidate = Peak {
                    index: i,
                    time: times[i],
                    value: values[i],
                };
                match peaks.last() {
                    Some(last) if i - last.index < min_distance => {
                        // Too close: keep the taller of the two.
                        if candidate.value > last.value {
                            *peaks.last_mut().expect("non-empty") = candidate;
                        }
                    }
                    _ => peaks.push(candidate),
                }
            }
        }
        i += 1;
    }
    peaks
}

/// Result of a period analysis on one trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PeriodAnalysis {
    /// Detected peaks after smoothing.
    pub peaks: Vec<Peak>,
    /// Peak-to-peak intervals (`peaks.len() - 1` entries), the *local
    /// periods* of the oscillation.
    pub local_periods: Vec<f64>,
}

impl PeriodAnalysis {
    /// Mean of the local periods (`None` with fewer than two peaks).
    pub fn mean_period(&self) -> Option<f64> {
        if self.local_periods.is_empty() {
            None
        } else {
            Some(self.local_periods.iter().sum::<f64>() / self.local_periods.len() as f64)
        }
    }
}

/// Smooths `values` (Savitzky–Golay, `smooth_half_window`) then extracts
/// peaks and local periods.
///
/// `min_prominence` is expressed as a fraction of the smoothed series'
/// peak-to-trough range (e.g. 0.2), making the analysis amplitude-free.
pub fn analyse_period(
    times: &[f64],
    values: &[f64],
    smooth_half_window: usize,
    min_prominence: f64,
    min_distance: usize,
) -> PeriodAnalysis {
    if values.len() < 3 {
        return PeriodAnalysis::default();
    }
    let smoothed = savitzky_golay(values, smooth_half_window);
    let lo = smoothed.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(f64::EPSILON);
    let peaks = find_peaks(times, &smoothed, min_prominence * range, min_distance);
    let local_periods = peaks.windows(2).map(|w| w[1].time - w[0].time).collect();
    PeriodAnalysis {
        peaks,
        local_periods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(period: f64, n: usize, dt: f64) -> (Vec<f64>, Vec<f64>) {
        let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|t| 100.0 + 50.0 * (2.0 * std::f64::consts::PI * t / period).sin())
            .collect();
        (times, values)
    }

    #[test]
    fn clean_sine_period_is_recovered() {
        let (times, values) = sine_series(22.0, 500, 0.5);
        let analysis = analyse_period(&times, &values, 3, 0.2, 10);
        assert!(
            analysis.peaks.len() >= 9,
            "found {} peaks",
            analysis.peaks.len()
        );
        let mean = analysis.mean_period().unwrap();
        assert!((mean - 22.0).abs() < 1.0, "mean period {mean}");
    }

    #[test]
    fn noisy_sine_period_is_recovered() {
        let (times, mut values) = sine_series(20.0, 600, 0.5);
        // Deterministic pseudo-noise.
        for (i, v) in values.iter_mut().enumerate() {
            *v += (((i * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5) * 20.0;
        }
        let analysis = analyse_period(&times, &values, 5, 0.3, 15);
        let mean = analysis.mean_period().unwrap();
        assert!((mean - 20.0).abs() < 2.0, "mean period {mean}");
    }

    #[test]
    fn flat_series_has_no_peaks() {
        let times: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let values = vec![5.0; 100];
        let analysis = analyse_period(&times, &values, 3, 0.1, 5);
        assert!(analysis.peaks.is_empty());
        assert_eq!(analysis.mean_period(), None);
    }

    #[test]
    fn monotone_series_has_no_peaks() {
        let times: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 2.0).collect();
        let analysis = analyse_period(&times, &values, 2, 0.1, 5);
        assert!(analysis.peaks.is_empty());
    }

    #[test]
    fn min_distance_merges_twin_peaks() {
        let times: Vec<f64> = (0..9).map(|i| i as f64).collect();
        //               peak   peak (taller)
        let values = [0.0, 5.0, 1.0, 6.0, 0.0, 0.0, 0.0, 5.0, 0.0];
        let peaks = find_peaks(&times, &values, 0.5, 4);
        // First two peaks are 2 apart -> merged keeping the taller (6.0).
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].value, 6.0);
        assert_eq!(peaks[1].value, 5.0);
    }

    #[test]
    fn low_prominence_bumps_are_ignored() {
        let times: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let values = [0.0, 10.0, 9.8, 9.9, 9.7, 10.0, 0.0];
        // The middle 9.9 bump has prominence 0.1 only.
        let peaks = find_peaks(&times, &values, 1.0, 1);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 1);
        assert_eq!(peaks[1].index, 5);
    }

    #[test]
    fn tiny_series_is_handled() {
        let analysis = analyse_period(&[0.0, 1.0], &[1.0, 2.0], 2, 0.1, 1);
        assert!(analysis.peaks.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        find_peaks(&[0.0], &[1.0, 2.0], 0.1, 1);
    }
}
