//! Online mean/variance (Welford) with parallel merging.
//!
//! The paper's analysis pipeline computes "statistical estimators [...] on
//! streams, thus [...] computed while simulation are still running". The
//! mean/variance statistical engine is a Welford accumulator: numerically
//! stable one-pass updates plus a Chan merge so per-worker partials can be
//! gathered.

/// One-pass mean/variance/min/max accumulator.
///
/// # Examples
///
/// ```
/// use streamstat::welford::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 5.0);
/// assert_eq!(r.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every value of `xs`.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n-1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of squared deviations from the mean (the Welford `M2` term) —
    /// exposed, with [`Running::from_parts`], so the accumulator can cross
    /// process boundaries in the sharded farm's wire format.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reassembles an accumulator from its raw state
    /// (`count`/`mean`/`m2`/`min`/`max`, as produced by the accessors).
    /// Exists for deserialisation; feeding inconsistent parts yields an
    /// accumulator that reports them verbatim.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Running {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl crate::merge::Mergeable for Running {
    /// Exact Chan et al. combination (same as [`Running::merge`]): counts,
    /// minima and maxima are preserved exactly; mean/variance agree with
    /// the pooled computation up to `f64` reassociation.
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pass_variance(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
    }

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [1.5, -2.0, 3.25, 0.0, 10.0, -7.5, 2.2];
        let r: Running = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((r.mean() - mean).abs() < 1e-12);
        assert!((r.population_variance() - two_pass_variance(&xs)).abs() < 1e-12);
        assert_eq!(r.min(), -7.5);
        assert_eq!(r.max(), 10.0);
        assert_eq!(r.count(), 7);
    }

    #[test]
    fn empty_accumulator_is_sane() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.population_variance(), 0.0);
        assert_eq!(r.sample_variance(), 0.0);
    }

    #[test]
    fn single_value_has_zero_variance() {
        let mut r = Running::new();
        r.push(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.population_variance(), 0.0);
        assert_eq!(r.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Running = xs.iter().copied().collect();
        let mut merged: Running = xs[..37].iter().copied().collect();
        let part2: Running = xs[37..].iter().copied().collect();
        merged.merge(&part2);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-10);
        assert!((merged.population_variance() - whole.population_variance()).abs() < 1e-10);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut r: Running = xs.iter().copied().collect();
        let before = r;
        r.merge(&Running::new());
        assert_eq!(r, before);
        let mut e = Running::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn catastrophic_cancellation_resistance() {
        // Large offset + small variance: naive sum-of-squares would lose it.
        let offset = 1e9;
        let mut r = Running::new();
        for i in 0..1000 {
            r.push(offset + (i % 2) as f64);
        }
        assert!((r.population_variance() - 0.25).abs() < 1e-6);
    }
}
