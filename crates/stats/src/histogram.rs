//! Fixed-range streaming histogram.
//!
//! StochSimGPU (related work in the paper) "allows computation of averages
//! and histograms of the molecular populations across the sampled
//! realisations"; the CWC analysis pipeline offers the same estimator as a
//! statistical engine.

/// Streaming histogram over a fixed `[lo, hi)` range with equal-width bins.
///
/// Out-of-range observations are counted in saturating edge bins so no
/// observation is silently lost.
///
/// # Examples
///
/// ```
/// use streamstat::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 7.0, 9.9, -3.0] {
///     h.push(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_count(0), 3); // 1.0, 1.5 and the clamped -3.0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics when `bins` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Adds one observation (clamped into the edge bins when out of range).
    pub fn push(&mut self, x: f64) {
        let nbins = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            nbins - 1
        } else {
            let w = (self.hi - self.lo) / nbins as f64;
            (((x - self.lo) / w) as usize).min(nbins - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Reassembles a histogram from its geometry and raw bin counts (the
    /// wire-format constructor; the total count is recomputed).
    ///
    /// # Panics
    ///
    /// Panics on empty `bins` or `hi <= lo`, like [`Histogram::new`].
    pub fn from_parts(lo: f64, hi: f64, bins: Vec<u64>) -> Self {
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let count = bins.iter().sum();
        Histogram {
            lo,
            hi,
            bins,
            count,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Normalised frequencies (sum to 1 when non-empty).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|&c| c as f64 / self.count as f64)
            .collect()
    }

    /// Index of the fullest bin (`None` when empty).
    pub fn mode_bin(&self) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        self.bins
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics when ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
    }
}

impl crate::merge::Mergeable for Histogram {
    /// Exact bin-wise sum (same as [`Histogram::merge`]).
    ///
    /// # Panics
    ///
    /// Panics when the two histograms' ranges or bin counts differ.
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        assert_eq!(h.bin_edges(3), (3.0, 4.0));
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-100.0);
        h.push(100.0);
        h.push(1.0); // hi edge is exclusive -> last bin
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(3), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.2] {
            h.push(x);
        }
        let f = h.frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[1], 0.5);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for x in [0.1, 1.1, 1.2, 1.3, 2.5] {
            h.push(x);
        }
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 2.0, 2);
        a.push(0.5);
        let mut b = Histogram::new(0.0, 2.0, 2);
        b.push(1.5);
        b.push(0.1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "ranges differ")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 2.0, 2);
        let b = Histogram::new(0.0, 3.0, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
