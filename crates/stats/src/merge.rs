//! The [`Mergeable`] contract: combine per-shard partial statistics.
//!
//! The sharded simulation farm computes statistics *per shard* and ships
//! the partial accumulator state — not raw trajectories — back to the
//! coordinator (the StochKit-FF design: "mergeable online statistics
//! instead of trajectory shipping"). Every estimator that can travel that
//! way implements `Mergeable`; the merge logic used to be an ad hoc
//! inherent method per type, this trait is the single seam the
//! coordinator (and any future tree-reduction) programs against.
//!
//! Implementations in this crate:
//!
//! - [`Running`](crate::welford::Running) — the exact Chan et al.
//!   parallel combination of Welford moments (count, mean, M2, min, max);
//! - [`Histogram`](crate::histogram::Histogram) — exact bin-wise sum
//!   (geometries must match);
//! - [`P2Quantile`](crate::quantile::P2Quantile) — *approximate*: the P²
//!   marker invariant cannot be combined exactly, so both estimators are
//!   downsampled to a bounded set of representative pseudo-samples
//!   (inverse-CDF points of their marker curves, split proportionally to
//!   the two counts) and replayed into a fresh estimator — see
//!   [`P2_DOWNSAMPLE`].
//!
//! Downstream crates implement `Mergeable` for their own aggregate state
//! (e.g. the simulation pipeline's per-run summary, which is a vector of
//! the accumulators above).

/// A statistic whose partial states can be combined.
///
/// `a.merge_from(&b)` must make `a` summarise the union of the
/// observations fed to `a` and `b`. Exactness is per-implementation:
/// counts, minima/maxima and histogram bins merge exactly; floating-point
/// moments merge up to the usual non-associativity of `f64` addition;
/// quantile sketches merge approximately (documented on the impl).
///
/// Merging must be independent of shard placement in the following sense:
/// feeding the same observations in the same order, however they are
/// partitioned into accumulators, must change count/min/max results not
/// at all and moment results only by floating-point reassociation.
pub trait Mergeable {
    /// Folds `other`'s observations into `self`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the two accumulators are structurally
    /// incompatible (e.g. histograms over different ranges): merging
    /// partials of *different* statistics is a programming error, not a
    /// recoverable condition.
    fn merge_from(&mut self, other: &Self);
}

/// Per-side budget of representative pseudo-samples a [`P2Quantile`]
/// merge replays (the two sides share `2 × P2_DOWNSAMPLE` points,
/// split proportionally to their counts). Bounds merge cost regardless
/// of how many observations either shard saw.
///
/// [`P2Quantile`]: crate::quantile::P2Quantile
pub const P2_DOWNSAMPLE: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::quantile::P2Quantile;
    use crate::welford::Running;

    #[test]
    fn running_merges_through_the_trait() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64).cos() * 5.0).collect();
        let whole: Running = xs.iter().copied().collect();
        let mut left: Running = xs[..20].iter().copied().collect();
        let right: Running = xs[20..].iter().copied().collect();
        Mergeable::merge_from(&mut left, &right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn histogram_merges_exactly() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        for x in [1.0, 2.0, 9.0] {
            a.push(x);
        }
        for x in [3.0, 9.5] {
            b.push(x);
        }
        Mergeable::merge_from(&mut a, &b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.bin_count(1), 2); // 2.0 and 3.0
        assert_eq!(a.bin_count(4), 2); // 9.0 and 9.5
    }

    #[test]
    fn quantile_merge_is_close_to_pooled() {
        // Two disjoint uniform halves: the pooled median is the boundary.
        let mut left = P2Quantile::new(0.5);
        let mut right = P2Quantile::new(0.5);
        for i in 0..500 {
            left.push(i as f64);
            right.push(500.0 + i as f64);
        }
        Mergeable::merge_from(&mut left, &right);
        let est = left.estimate().unwrap();
        assert!(
            (est - 500.0).abs() < 60.0,
            "merged median {est} too far from 500"
        );
    }

    #[test]
    fn quantile_merge_with_tiny_other_replays_exact_values() {
        let mut a = P2Quantile::new(0.5);
        for x in [1.0, 2.0, 3.0] {
            a.push(x);
        }
        let mut b = P2Quantile::new(0.5);
        b.push(100.0);
        Mergeable::merge_from(&mut a, &b);
        assert_eq!(a.count(), 4);
        // Small-sample estimates stay exact (nearest-rank over raw values).
        assert_eq!(a.estimate(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_merge_rejects_different_targets() {
        let mut a = P2Quantile::new(0.5);
        let b = P2Quantile::new(0.9);
        Mergeable::merge_from(&mut a, &b);
    }
}
