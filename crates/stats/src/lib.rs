//! # streamstat — on-line statistics for simulation streams
//!
//! The statistical engines of the CWC simulator's analysis pipeline
//! (Aldinucci et al., ICDCS 2014, Fig. 2): every estimator here is
//! single-pass and mergeable, so it can run *while simulations are still
//! running*, inside a farm of statistical engines fed by sliding windows of
//! trajectory cuts.
//!
//! | Engine | Module | Paper reference |
//! |---|---|---|
//! | mean / variance | [`welford`] | "mean, variance" boxes in Fig. 2 |
//! | k-means | [`kmeans`] | "k-means" box in Fig. 2 |
//! | sliding windows | [`window`] | "generation of sliding windows of trajectories" |
//! | moving average / smoothing | [`filter`] | "moving average ... of the local period" |
//! | peak & period detection | [`period`] | "compute the period of each oscillation" |
//! | autocorrelation | [`autocorr`] | independent ACF-based period estimator |
//! | histogram | [`histogram`] | StochSimGPU-style population histograms |
//! | on-line quantiles | [`quantile`] | big-data-safe distribution summaries |
//! | partial-state merging | [`merge`] | StochKit-FF-style sharded farms |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autocorr;
pub mod filter;
pub mod histogram;
pub mod kmeans;
pub mod merge;
pub mod period;
pub mod quantile;
pub mod welford;
pub mod window;

pub use autocorr::{autocorrelation, period_from_acf};
pub use filter::{savitzky_golay, Ewma, MovingAverage};
pub use histogram::Histogram;
pub use kmeans::{bimodality_ratio, kmeans1d, Clustering};
pub use merge::Mergeable;
pub use period::{analyse_period, find_peaks, Peak, PeriodAnalysis};
pub use quantile::P2Quantile;
pub use welford::Running;
pub use window::SlidingWindow;
