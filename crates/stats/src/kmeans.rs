//! K-means clustering of trajectory cuts.
//!
//! The paper's Fig. 2 names three statistical engines: mean, variance and
//! **k-means** — the latter classifies the population of trajectories at a
//! given instant (or window) into clusters, which is how multi-stable
//! systems (two or more distinct stable states across trajectories) are
//! summarised on-line.
//!
//! Deterministic by construction: initial centroids are spread over the
//! data's range (no RNG), and Lloyd iterations stop on convergence or an
//! iteration cap, so repeated runs of the pipeline report identical
//! clusterings.

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Final centroids, sorted ascending for 1-D stability.
    pub centroids: Vec<f64>,
    /// `assignment[i]` is the centroid index of point `i`.
    pub assignment: Vec<usize>,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs 1-D k-means with deterministic quantile-spread initialisation.
///
/// Returns `None` when `k` is zero or there are fewer points than `k`.
///
/// # Examples
///
/// ```
/// use streamstat::kmeans::kmeans1d;
///
/// let points = [1.0, 1.2, 0.8, 10.0, 10.3, 9.7];
/// let c = kmeans1d(&points, 2, 100).unwrap();
/// assert_eq!(c.sizes, vec![3, 3]);
/// assert!((c.centroids[0] - 1.0).abs() < 0.1);
/// assert!((c.centroids[1] - 10.0).abs() < 0.2);
/// ```
pub fn kmeans1d(points: &[f64], k: usize, max_iterations: usize) -> Option<Clustering> {
    if k == 0 || points.len() < k {
        return None;
    }
    // Quantile-based initialisation: centroids at the (2i+1)/2k quantiles.
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("points are not NaN"));
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let q = (2 * i + 1) as f64 / (2 * k) as f64;
            let idx = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
            sorted[idx]
        })
        .collect();
    centroids.dedup();
    while centroids.len() < k {
        // Degenerate data (many ties): pad with slight offsets to keep k
        // clusters; empty ones collapse during iteration.
        let last = *centroids.last().expect("non-empty");
        centroids.push(last + 1.0 + centroids.len() as f64);
    }

    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, &p) in points.iter().enumerate() {
            let nearest = nearest_centroid(&centroids, p);
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &p) in points.iter().enumerate() {
            sums[assignment[i]] += p;
            counts[assignment[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
    }
    // Sort centroids and remap assignments for deterministic output.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| centroids[a].partial_cmp(&centroids[b]).expect("not NaN"));
    let mut remap = vec![0usize; k];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        remap[old_idx] = new_idx;
    }
    let centroids: Vec<f64> = order.iter().map(|&i| centroids[i]).collect();
    let assignment: Vec<usize> = assignment.into_iter().map(|a| remap[a]).collect();
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for (i, &p) in points.iter().enumerate() {
        sizes[assignment[i]] += 1;
        inertia += (p - centroids[assignment[i]]).powi(2);
    }
    Some(Clustering {
        centroids,
        assignment,
        sizes,
        inertia,
        iterations,
    })
}

fn nearest_centroid(centroids: &[f64], p: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (p - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Convenience: detects whether a population is plausibly bimodal by
/// comparing k=2 inertia against k=1 inertia.
///
/// Returns the inertia ratio `k2/k1` (low means strongly bimodal) or
/// `None` for degenerate inputs. Uniform data yields ≈ 0.25; strongly
/// bimodal data falls well below 0.1.
pub fn bimodality_ratio(points: &[f64]) -> Option<f64> {
    let k1 = kmeans1d(points, 1, 50)?;
    let k2 = kmeans1d(points, 2, 50)?;
    if k1.inertia <= f64::EPSILON {
        return Some(1.0); // constant data: unimodal by definition
    }
    Some(k2.inertia / k1.inertia)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_clusters() {
        let pts = [0.9, 1.0, 1.1, 5.0, 5.1, 4.9, 5.05];
        let c = kmeans1d(&pts, 2, 100).unwrap();
        assert_eq!(c.sizes, vec![3, 4]);
        assert!((c.centroids[0] - 1.0).abs() < 0.05);
        assert!((c.centroids[1] - 5.0).abs() < 0.06);
        // All low points to cluster 0, high to cluster 1.
        assert_eq!(&c.assignment[..3], &[0, 0, 0]);
        assert_eq!(&c.assignment[3..], &[1, 1, 1, 1]);
    }

    #[test]
    fn k1_centroid_is_mean() {
        let pts = [1.0, 2.0, 3.0, 4.0];
        let c = kmeans1d(&pts, 1, 10).unwrap();
        assert!((c.centroids[0] - 2.5).abs() < 1e-12);
        assert_eq!(c.sizes, vec![4]);
    }

    #[test]
    fn rejects_degenerate_requests() {
        assert!(kmeans1d(&[1.0, 2.0], 3, 10).is_none());
        assert!(kmeans1d(&[1.0], 0, 10).is_none());
        assert!(kmeans1d(&[], 1, 10).is_none());
    }

    #[test]
    fn constant_data_converges() {
        let pts = [2.0; 10];
        let c = kmeans1d(&pts, 2, 50).unwrap();
        assert_eq!(c.sizes.iter().sum::<usize>(), 10);
        assert!(c.inertia < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts: Vec<f64> = (0..50).map(|i| ((i * 37) % 17) as f64).collect();
        let a = kmeans1d(&pts, 3, 100).unwrap();
        let b = kmeans1d(&pts, 3, 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn centroids_are_sorted() {
        let pts = [10.0, 1.0, 5.0, 10.2, 0.9, 5.1];
        let c = kmeans1d(&pts, 3, 100).unwrap();
        assert!(c.centroids.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bimodality_ratio_distinguishes_shapes() {
        let bimodal: Vec<f64> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    1.0 + (i as f64) * 0.01
                } else {
                    9.0 + (i as f64) * 0.01
                }
            })
            .collect();
        let unimodal: Vec<f64> = (0..20).map(|i| 5.0 + ((i * 13) % 7) as f64 * 0.1).collect();
        let rb = bimodality_ratio(&bimodal).unwrap();
        let ru = bimodality_ratio(&unimodal).unwrap();
        assert!(rb < 0.05, "bimodal ratio {rb}");
        // Uniformly spread data: k=2 cuts inertia to ~1/4, no further.
        assert!(ru > 0.2, "unimodal ratio {ru}");
        assert_eq!(bimodality_ratio(&[3.3; 8]), Some(1.0));
    }
}
