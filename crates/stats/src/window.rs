//! Sliding windows over a stream.
//!
//! "the incoming stream is passed through sliding windows of trajectory
//! cuts. Each sliding window can be processed in parallel." This module
//! provides the window generator: it consumes items one at a time and
//! emits a full window every `slide` items once `width` items have
//! accumulated.

use std::collections::VecDeque;

/// Sliding-window generator: emits overlapping windows of a stream.
///
/// # Examples
///
/// ```
/// use streamstat::window::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3, 1);
/// assert!(w.push(1).is_none());
/// assert!(w.push(2).is_none());
/// assert_eq!(w.push(3), Some(vec![1, 2, 3]));
/// assert_eq!(w.push(4), Some(vec![2, 3, 4]));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    buf: VecDeque<T>,
    width: usize,
    slide: usize,
    since_emit: usize,
    emitted_any: bool,
}

impl<T: Clone> SlidingWindow<T> {
    /// Creates a window of `width` items advancing by `slide` per emission.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `slide` is zero, or `slide > width` (gapped
    /// windows would silently drop stream items).
    pub fn new(width: usize, slide: usize) -> Self {
        assert!(width > 0, "window width must be non-zero");
        assert!(slide > 0, "window slide must be non-zero");
        assert!(slide <= width, "slide must not exceed width");
        SlidingWindow {
            buf: VecDeque::with_capacity(width),
            width,
            slide,
            since_emit: 0,
            emitted_any: false,
        }
    }

    /// Window width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Window slide.
    pub fn slide(&self) -> usize {
        self.slide
    }

    /// Feeds one item; returns a full window when one is due.
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.buf.push_back(item);
        if self.buf.len() > self.width {
            self.buf.pop_front();
        }
        if self.buf.len() == self.width {
            if !self.emitted_any {
                self.emitted_any = true;
                self.since_emit = 0;
                return Some(self.buf.iter().cloned().collect());
            }
            self.since_emit += 1;
            if self.since_emit == self.slide {
                self.since_emit = 0;
                return Some(self.buf.iter().cloned().collect());
            }
        }
        None
    }

    /// Emits whatever is buffered (possibly shorter than `width`); used at
    /// end of stream so the tail is analysed too.
    pub fn flush(&mut self) -> Option<Vec<T>> {
        // Only flush when the buffered tail has not just been emitted.
        if self.buf.is_empty() || (self.emitted_any && self.since_emit == 0) {
            return None;
        }
        self.since_emit = 0;
        Some(self.buf.iter().cloned().collect())
    }

    /// Number of currently buffered items.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_windows(width: usize, slide: usize, n: usize) -> Vec<Vec<usize>> {
        let mut w = SlidingWindow::new(width, slide);
        let mut out = Vec::new();
        for i in 0..n {
            if let Some(win) = w.push(i) {
                out.push(win);
            }
        }
        if let Some(win) = w.flush() {
            out.push(win);
        }
        out
    }

    #[test]
    fn width3_slide1_is_dense() {
        let ws = collect_windows(3, 1, 6);
        assert_eq!(
            ws,
            vec![vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5],]
        );
    }

    #[test]
    fn width4_slide2_overlaps_by_half() {
        let ws = collect_windows(4, 2, 8);
        assert_eq!(
            ws,
            vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5], vec![4, 5, 6, 7]]
        );
    }

    #[test]
    fn tumbling_window_when_slide_equals_width() {
        let ws = collect_windows(2, 2, 6);
        assert_eq!(ws, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    }

    #[test]
    fn flush_emits_partial_tail() {
        let ws = collect_windows(4, 4, 6);
        assert_eq!(ws, vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]]);
        // Short stream: flush emits the partial window.
        let ws = collect_windows(4, 4, 2);
        assert_eq!(ws, vec![vec![0, 1]]);
    }

    #[test]
    fn flush_is_idempotent_after_exact_emission() {
        let mut w = SlidingWindow::new(2, 2);
        w.push(0);
        assert!(w.push(1).is_some());
        assert_eq!(w.flush(), None); // window just emitted, nothing new
    }

    #[test]
    fn every_item_appears_in_some_window() {
        for (width, slide) in [(3usize, 1usize), (4, 2), (5, 5), (7, 3)] {
            let ws = collect_windows(width, slide, 23);
            let mut seen = [false; 23];
            for w in &ws {
                for &i in w {
                    seen[i] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "width={width} slide={slide} dropped items"
            );
        }
    }

    #[test]
    #[should_panic(expected = "slide must not exceed width")]
    fn gapped_windows_are_rejected() {
        let _ = SlidingWindow::<u8>::new(2, 3);
    }

    #[test]
    fn accessors() {
        let w = SlidingWindow::<u8>::new(5, 2);
        assert_eq!(w.width(), 5);
        assert_eq!(w.slide(), 2);
        assert_eq!(w.buffered(), 0);
    }
}
