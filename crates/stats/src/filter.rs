//! Stream filters: moving average, exponential smoothing, Savitzky–Golay.
//!
//! The paper plots "the moving average of more than 200 simulations of the
//! local period" — these filters turn raw, noisy trajectory series into the
//! "filtered simulation results" that Fig. 2 sends to the GUI.

use std::collections::VecDeque;

/// Centred/trailing moving average over a fixed window.
///
/// # Examples
///
/// ```
/// use streamstat::filter::MovingAverage;
///
/// let mut ma = MovingAverage::new(2);
/// assert_eq!(ma.push(2.0), 2.0);        // window [2]
/// assert_eq!(ma.push(4.0), 3.0);        // window [2,4]
/// assert_eq!(ma.push(6.0), 5.0);        // window [4,6]
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    buf: VecDeque<f64>,
    width: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a trailing moving average of `width` samples.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "moving average width must be non-zero");
        MovingAverage {
            buf: VecDeque::with_capacity(width),
            width,
            sum: 0.0,
        }
    }

    /// Feeds one value; returns the average of the last `width` values
    /// (fewer while warming up).
    pub fn push(&mut self, x: f64) -> f64 {
        self.buf.push_back(x);
        self.sum += x;
        if self.buf.len() > self.width {
            self.sum -= self.buf.pop_front().expect("non-empty");
        }
        self.sum / self.buf.len() as f64
    }

    /// Applies the filter to a whole series.
    pub fn apply(width: usize, xs: &[f64]) -> Vec<f64> {
        let mut ma = MovingAverage::new(width);
        xs.iter().map(|&x| ma.push(x)).collect()
    }
}

/// Exponential moving average with smoothing factor `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates a filter; `alpha` in (0, 1], larger = less smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, state: None }
    }

    /// Feeds one value and returns the smoothed estimate.
    pub fn push(&mut self, x: f64) -> f64 {
        let next = match self.state {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.state = Some(next);
        next
    }

    /// Current estimate, if any value has been fed.
    pub fn value(&self) -> Option<f64> {
        self.state
    }
}

/// Savitzky–Golay smoothing (quadratic, symmetric window of 2m+1 points).
///
/// Preserves peak positions better than a moving average, which matters for
/// the oscillation-period analysis. The series ends are padded by
/// replication.
pub fn savitzky_golay(xs: &[f64], half_window: usize) -> Vec<f64> {
    if xs.is_empty() || half_window == 0 {
        return xs.to_vec();
    }
    let m = half_window as i64;
    // Quadratic SG coefficients: c_i ∝ (3m² + 3m − 1 − 5i²), the standard
    // closed form for polynomial order 2.
    let norm: f64 = (-m..=m)
        .map(|i| (3 * m * m + 3 * m - 1 - 5 * i * i) as f64)
        .sum();
    let coeff: Vec<f64> = (-m..=m)
        .map(|i| (3 * m * m + 3 * m - 1 - 5 * i * i) as f64 / norm)
        .collect();
    let n = xs.len() as i64;
    (0..n)
        .map(|t| {
            coeff
                .iter()
                .enumerate()
                .map(|(j, &c)| {
                    let idx = (t + j as i64 - m).clamp(0, n - 1) as usize;
                    c * xs[idx]
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_warms_up_then_slides() {
        let out = MovingAverage::apply(3, &[3.0, 3.0, 3.0, 6.0]);
        assert_eq!(out, vec![3.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let out = MovingAverage::apply(5, &[7.0; 20]);
        assert!(out.iter().all(|&v| (v - 7.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_moving_average_panics() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn ewma_tracks_step_change() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.push(0.0), 0.0);
        let v1 = e.push(10.0);
        assert_eq!(v1, 5.0);
        let v2 = e.push(10.0);
        assert_eq!(v2, 7.5);
        assert_eq!(e.value(), Some(7.5));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn savitzky_golay_preserves_constants_and_lines() {
        let constant = [4.0; 11];
        let out = savitzky_golay(&constant, 2);
        for v in &out {
            assert!((v - 4.0).abs() < 1e-9);
        }
        // SG of order 2 reproduces linear trends exactly (interior points).
        let line: Vec<f64> = (0..21).map(|i| 2.0 * i as f64).collect();
        let out = savitzky_golay(&line, 3);
        for i in 3..18 {
            assert!((out[i] - line[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn savitzky_golay_smooths_noise() {
        // Alternating noise around zero should shrink substantially.
        let noisy: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = savitzky_golay(&noisy, 3);
        let raw_energy: f64 = noisy.iter().map(|v| v * v).sum();
        let out_energy: f64 = out.iter().map(|v| v * v).sum();
        assert!(out_energy < raw_energy / 4.0);
    }

    #[test]
    fn savitzky_golay_degenerate_inputs() {
        assert!(savitzky_golay(&[], 3).is_empty());
        assert_eq!(savitzky_golay(&[1.0, 2.0], 0), vec![1.0, 2.0]);
    }
}
