//! Fault-injection harness for the `cwc-shard` worker.
//!
//! Every failure mode the shard supervisor recovers from is exercisable
//! in-tree, driven by the [`FAULT_ENV`] environment variable on the
//! worker process — no special build, no test-only binary. The plan
//! format is
//!
//! ```text
//! CWC_SHARD_FAULT = kind[:key=value,key=value,...]
//! ```
//!
//! with kinds
//!
//! | kind            | effect at the trigger point                       |
//! |-----------------|---------------------------------------------------|
//! | `crash`         | stop writing frames and exit (EOF mid-stream)     |
//! | `stall`         | stop writing frames *and heartbeats*, stay alive  |
//! | `corrupt-frame` | emit a length-prefixed frame of garbage, then die |
//! | `garbage`       | emit raw non-frame bytes on stdout, then die      |
//! | `delay-start`   | sleep `ms` before starting work (and heartbeats)  |
//!
//! and keys
//!
//! - `shard=N` | `shard=any` — which shard index triggers (default: any);
//! - `attempt=N` | `attempt=any` — which attempt triggers (default: `0`,
//!   the first launch — so a retried slice runs clean and recovery tests
//!   converge);
//! - `cuts=N` — fire at the first frame written once `N` cuts are out
//!   (default `0`: before the first frame); ignored by `delay-start`;
//! - `ms=N` — milliseconds for `delay-start` (default `1000`).
//!
//! Examples: `crash:shard=1,cuts=3`, `stall:attempt=any`,
//! `corrupt-frame:cuts=5`, `delay-start:ms=2000,shard=0`.

use std::fmt;

/// Environment variable carrying a [`FaultPlan`] for `cwc-shard`.
pub const FAULT_ENV: &str = "CWC_SHARD_FAULT";

/// What the injected fault does when it fires. See the module docs for
/// the observable effect of each kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stop writing frames and exit: the coordinator sees EOF before
    /// the end-of-stream report.
    Crash,
    /// Stop writing frames *and heartbeats* but keep the process alive:
    /// only the watchdog can catch this one.
    Stall,
    /// Write a well-formed length prefix followed by garbage payload
    /// bytes (a decode failure at the coordinator), then die.
    CorruptFrame,
    /// Write raw bytes that are not a frame at all (a corrupt length
    /// prefix at the coordinator), then die.
    Garbage,
    /// Sleep `ms` milliseconds before doing any work — long enough and
    /// the watchdog fires on a shard that never even started.
    DelayStart,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
            FaultKind::CorruptFrame => "corrupt-frame",
            FaultKind::Garbage => "garbage",
            FaultKind::DelayStart => "delay-start",
        };
        f.write_str(s)
    }
}

/// A parsed fault-injection plan: which worker triggers, when, and what
/// happens. Parsed from [`FAULT_ENV`] by the `cwc-shard` worker at
/// startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected failure mode.
    pub kind: FaultKind,
    /// Trigger only on this shard index (`None`: any shard).
    pub shard: Option<u64>,
    /// Trigger only on this attempt number (`None`: any attempt).
    /// Defaults to `Some(0)` — only the first launch faults, so a
    /// requeued slice runs clean and recovery converges.
    pub attempt: Option<u32>,
    /// Fire at the first frame written once this many cuts are out.
    pub cuts: u64,
    /// Milliseconds to sleep for [`FaultKind::DelayStart`].
    pub ms: u64,
}

impl FaultPlan {
    /// Parses a plan from the [`FAULT_ENV`] variable; `Ok(None)` when
    /// the variable is unset or empty (the overwhelmingly common case).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed plan — the worker treats
    /// it as a protocol error rather than silently running fault-free.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_ENV) {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// Parses `kind[:key=value,...]` (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed piece.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (kind, rest) = match s.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (s, None),
        };
        let kind = match kind {
            "crash" => FaultKind::Crash,
            "stall" => FaultKind::Stall,
            "corrupt-frame" => FaultKind::CorruptFrame,
            "garbage" => FaultKind::Garbage,
            "delay-start" => FaultKind::DelayStart,
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        let mut plan = FaultPlan {
            kind,
            shard: None,
            attempt: Some(0),
            cuts: 0,
            ms: 1000,
        };
        for pair in rest.into_iter().flat_map(|r| r.split(',')) {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!("expected key=value, got `{pair}`"));
            };
            let bad = |e: &dyn fmt::Display| format!("bad value for `{key}`: {e}");
            match key {
                "shard" => {
                    plan.shard = match value {
                        "any" => None,
                        n => Some(n.parse().map_err(|e| bad(&e))?),
                    }
                }
                "attempt" => {
                    plan.attempt = match value {
                        "any" => None,
                        n => Some(n.parse().map_err(|e| bad(&e))?),
                    }
                }
                "cuts" => plan.cuts = value.parse().map_err(|e| bad(&e))?,
                "ms" => plan.ms = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Whether this plan triggers for the given shard/attempt pair.
    pub fn applies(&self, shard: u64, attempt: u32) -> bool {
        // `Option::is_none_or` is past the workspace MSRV (1.75).
        self.shard.map_or(true, |s| s == shard) && self.attempt.map_or(true, |a| a == attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_kind_parses_with_defaults() {
        let p = FaultPlan::parse("crash").unwrap();
        assert_eq!(p.kind, FaultKind::Crash);
        assert_eq!(p.shard, None);
        assert_eq!(p.attempt, Some(0));
        assert_eq!(p.cuts, 0);
    }

    #[test]
    fn full_plans_parse() {
        let p = FaultPlan::parse("corrupt-frame:shard=2,attempt=1,cuts=7").unwrap();
        assert_eq!(p.kind, FaultKind::CorruptFrame);
        assert_eq!(p.shard, Some(2));
        assert_eq!(p.attempt, Some(1));
        assert_eq!(p.cuts, 7);
        let p = FaultPlan::parse("delay-start:ms=250,shard=any,attempt=any").unwrap();
        assert_eq!(p.kind, FaultKind::DelayStart);
        assert_eq!(p.ms, 250);
        assert_eq!(p.shard, None);
        assert_eq!(p.attempt, None);
    }

    #[test]
    fn malformed_plans_are_rejected_with_reasons() {
        assert!(FaultPlan::parse("explode").unwrap_err().contains("kind"));
        assert!(FaultPlan::parse("crash:cuts")
            .unwrap_err()
            .contains("key=value"));
        assert!(FaultPlan::parse("crash:cuts=abc")
            .unwrap_err()
            .contains("cuts"));
        assert!(FaultPlan::parse("crash:bogus=1")
            .unwrap_err()
            .contains("bogus"));
    }

    #[test]
    fn applicability_honours_shard_and_attempt_filters() {
        let p = FaultPlan::parse("stall:shard=1").unwrap();
        assert!(p.applies(1, 0));
        assert!(!p.applies(0, 0), "wrong shard");
        assert!(!p.applies(1, 1), "attempt defaults to first launch only");
        let any = FaultPlan::parse("stall:shard=any,attempt=any").unwrap();
        assert!(any.applies(3, 9));
    }
}
