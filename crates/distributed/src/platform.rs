//! Host, VM and network profiles of the paper's testbeds.
//!
//! Performance section of the paper, §V: a 32-core Nehalem workstation, an
//! Infiniband (IPoIB) cluster of 12-thread Xeons, Amazon EC2 quad-core VMs
//! and two 16-core Sandy Bridge workstations. These profiles capture the
//! parameters that shape the curves — core counts, relative per-core
//! speed, virtualisation overhead, link latency/bandwidth — not the
//! microarchitecture.

/// A (possibly virtual) machine profile.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Display name.
    pub name: String,
    /// Usable cores for simulation work.
    pub cores: usize,
    /// Per-core speed relative to the reference core (1.0 = Nehalem).
    pub speed: f64,
    /// Fractional throughput loss to virtualisation (0 for bare metal).
    pub virt_overhead: f64,
}

impl HostProfile {
    /// Effective events-per-second multiplier of one core.
    pub fn core_rate(&self) -> f64 {
        self.speed * (1.0 - self.virt_overhead)
    }

    /// The paper's 4 × 8-core Nehalem E7-4820 workstation (32 cores).
    pub fn nehalem32() -> Self {
        HostProfile {
            name: "Intel Nehalem 32-core".into(),
            cores: 32,
            speed: 1.0,
            virt_overhead: 0.0,
        }
    }

    /// One 16-core Sandy Bridge workstation (the heterogeneous experiment
    /// uses two). Slightly faster per core than Nehalem.
    pub fn sandy_bridge16() -> Self {
        HostProfile {
            name: "Intel Sandy Bridge 16-core".into(),
            cores: 16,
            speed: 1.25,
            virt_overhead: 0.0,
        }
    }

    /// One cluster node: 2 × six-core Xeon X5670 @3.0 GHz.
    pub fn xeon12() -> Self {
        HostProfile {
            name: "Xeon X5670 12-core node".into(),
            cores: 12,
            speed: 1.2,
            virt_overhead: 0.0,
        }
    }

    /// An EC2 quad-core VM (Intel E5-2670 with virtualisation overhead).
    pub fn ec2_quad() -> Self {
        HostProfile {
            name: "EC2 quad-core VM".into(),
            cores: 4,
            speed: 1.1,
            virt_overhead: 0.08,
        }
    }

    /// Restricts the profile to `cores` cores (e.g. "2 cores per host").
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the profile's cores.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0 && cores <= self.cores, "invalid core restriction");
        self.cores = cores;
        self
    }
}

/// A network link profile.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Display name.
    pub name: String,
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Fixed per-message software overhead in seconds (serialisation,
    /// syscalls) charged on top of size/bandwidth.
    pub per_message_s: f64,
}

impl NetworkProfile {
    /// Time for one message of `bytes` to cross the link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + self.per_message_s + bytes as f64 / self.bandwidth_bps
    }

    /// Shared-memory "link" inside one host (stream between threads).
    pub fn shared_memory() -> Self {
        NetworkProfile {
            name: "shared memory".into(),
            latency_s: 0.5e-6,
            bandwidth_bps: 8e9,
            per_message_s: 0.1e-6,
        }
    }

    /// Gigabit Ethernet.
    pub fn gigabit_ethernet() -> Self {
        NetworkProfile {
            name: "GbE".into(),
            latency_s: 55e-6,
            bandwidth_bps: 118e6,
            per_message_s: 8e-6,
        }
    }

    /// Infiniband used through the TCP/IP stack (IPoIB), as in the paper.
    pub fn ipoib() -> Self {
        NetworkProfile {
            name: "IPoIB".into(),
            latency_s: 18e-6,
            bandwidth_bps: 900e6,
            per_message_s: 8e-6,
        }
    }

    /// Amazon EC2 internal network (higher latency, ~1 Gb/s class).
    pub fn ec2() -> Self {
        NetworkProfile {
            name: "EC2 network".into(),
            latency_s: 250e-6,
            bandwidth_bps: 120e6,
            per_message_s: 5e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_core_counts() {
        assert_eq!(HostProfile::nehalem32().cores, 32);
        assert_eq!(HostProfile::sandy_bridge16().cores, 16);
        assert_eq!(HostProfile::xeon12().cores, 12);
        assert_eq!(HostProfile::ec2_quad().cores, 4);
    }

    #[test]
    fn virtualisation_reduces_core_rate() {
        let vm = HostProfile::ec2_quad();
        assert!(vm.core_rate() < vm.speed);
        let bare = HostProfile::nehalem32();
        assert_eq!(bare.core_rate(), 1.0);
    }

    #[test]
    fn with_cores_restricts() {
        let h = HostProfile::xeon12().with_cores(4);
        assert_eq!(h.cores, 4);
    }

    #[test]
    #[should_panic(expected = "invalid core restriction")]
    fn with_cores_rejects_oversubscription() {
        let _ = HostProfile::ec2_quad().with_cores(8);
    }

    #[test]
    fn network_ordering_matches_physics() {
        let shm = NetworkProfile::shared_memory();
        let gbe = NetworkProfile::gigabit_ethernet();
        let ib = NetworkProfile::ipoib();
        let msg = 64 * 1024;
        assert!(shm.transfer_time(msg) < ib.transfer_time(msg));
        assert!(ib.transfer_time(msg) < gbe.transfer_time(msg));
        // Infiniband wins on both latency and bandwidth.
        assert!(ib.latency_s < gbe.latency_s);
        assert!(ib.bandwidth_bps > gbe.bandwidth_bps);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let gbe = NetworkProfile::gigabit_ethernet();
        assert!(gbe.transfer_time(1 << 20) > 10.0 * gbe.transfer_time(1 << 10));
    }
}
