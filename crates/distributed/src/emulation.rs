//! Functional emulation of the distributed simulator.
//!
//! The DES models in [`crate::cluster`] predict *timing*; this module
//! proves the *code path*: it actually runs the distributed deployment —
//! remote simulation farms receiving [`RemoteTaskSpec`]s, streaming
//! serialised [`SampleBatch`]es back through the wire codec to the
//! alignment/analysis node — inside one process, with every byte really
//! encoded and decoded. The paper's claim that the port needs "very
//! limited code modifications" is visible here: the farm, alignment,
//! window and statistics stages are the unmodified `cwcsim` components;
//! only (de)serialisation stages are added around them.

use std::sync::Arc;

use cwc::model::Model;
use cwcsim::config::SimConfig;
use cwcsim::engines::{StatEngineSet, StatRow};
use cwcsim::sim_farm::{SimMaster, SimWorker};
use cwcsim::task::{SampleBatch, SimTask};
use cwcsim::windows::WindowGen;
use cwcsim::Alignment;
use fastflow::node::{flat_stage, map_stage, Outbox};
use fastflow::pipeline::Pipeline;

use crate::wire::{self, RemoteTaskSpec, WireError};

/// Error from an emulated distributed run.
#[derive(Debug)]
pub enum EmulationError {
    /// The underlying pipeline failed.
    Pipeline(fastflow::error::Error),
    /// A message failed to decode.
    Wire(WireError),
    /// Configuration/model rejected.
    Sim(cwcsim::SimError),
}

impl std::fmt::Display for EmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulationError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            EmulationError::Wire(e) => write!(f, "wire error: {e}"),
            EmulationError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for EmulationError {}

/// Outcome of an emulated distributed run.
#[derive(Debug)]
pub struct EmulatedRun {
    /// Analysis rows, time-ordered (same contract as `cwcsim::SimReport`).
    pub rows: Vec<StatRow>,
    /// Bytes that crossed the emulated network.
    pub bytes_transferred: u64,
    /// Messages that crossed the emulated network.
    pub messages: u64,
}

/// Runs `cfg.instances` trajectories split across `farms` emulated remote
/// hosts, streaming serialised batches back to a local analysis node.
///
/// Every farm is a real master–worker pipeline over its own instance
/// range; its output batches are wire-encoded, "shipped", decoded, and
/// merged into the standard alignment → windows → statistics pipeline.
///
/// # Errors
///
/// Returns [`EmulationError`] on invalid input or node failure.
pub fn run_distributed_emulation(
    model: Arc<Model>,
    cfg: &SimConfig,
    farms: usize,
) -> Result<EmulatedRun, EmulationError> {
    cfg.validate()
        .map_err(|e| EmulationError::Sim(cwcsim::SimError::Config(e)))?;
    model
        .validate()
        .map_err(|e| EmulationError::Sim(cwcsim::SimError::Model(e)))?;
    assert!(farms > 0, "need at least one farm");

    // --- "generation of simulation tasks" node: produce one RemoteTaskSpec
    // per farm (parameters only — remote farms build their own engines).
    // The split is the sharded runner's plan: contiguous in instance
    // order, remainder spread over the leading farms, never empty.
    let plan = cwcsim::plan::ShardPlan::new(cfg.instances, farms);
    let specs: Vec<RemoteTaskSpec> = plan
        .ranges()
        .iter()
        .map(|r| RemoteTaskSpec {
            first_instance: r.first_instance,
            count: r.count,
            base_seed: cfg.base_seed,
            t_end: cfg.t_end,
            quantum: cfg.quantum,
            sample_period: cfg.sample_period,
            engine: cfg.engine,
        })
        .collect();

    // Ship the specs through the codec, as the real deployment would.
    let encoded_specs: Vec<Vec<u8>> = specs.iter().map(wire::to_bytes).collect();

    // --- remote farms: each runs a real master-worker pipeline and returns
    // its encoded batch stream.
    let mut encoded_batches: Vec<Vec<u8>> = Vec::new();
    for spec_bytes in &encoded_specs {
        let spec: RemoteTaskSpec = wire::from_bytes(spec_bytes).map_err(EmulationError::Wire)?;
        if spec.count == 0 {
            continue;
        }
        let model = Arc::clone(&model);
        // One model compilation per remote farm, shared by its instances
        // (in the real deployment each host compiles the shipped model
        // once, not once per trajectory).
        let deps = Arc::new(gillespie::deps::ModelDeps::compile(&model));
        let tasks: Vec<SimTask> = (spec.first_instance..spec.first_instance + spec.count)
            .map(|i| {
                SimTask::with_engine_deps(
                    spec.engine,
                    Arc::clone(&model),
                    Arc::clone(&deps),
                    spec.base_seed,
                    i,
                    spec.t_end,
                    spec.quantum,
                    spec.sample_period,
                )
            })
            .collect::<Result<_, _>>()
            .map_err(|e| EmulationError::Sim(cwcsim::SimError::Engine(e)))?;
        let workers: Vec<SimWorker> = (0..cfg.sim_workers.max(1))
            .map(|_| SimWorker::new())
            .collect();
        let farm_out: Vec<Vec<u8>> = Pipeline::from_source(tasks.into_iter())
            .master_worker_farm(SimMaster::new(), workers)
            // Serialising stage added around unchanged pipeline code.
            .named_stage("serialise", map_stage(|b: SampleBatch| wire::to_bytes(&b)))
            .collect()
            .map_err(EmulationError::Pipeline)?;
        encoded_batches.extend(farm_out);
    }

    let messages = encoded_batches.len() as u64;
    let bytes_transferred: u64 = encoded_batches.iter().map(|b| b.len() as u64).sum();

    // --- local node: de-serialising stage, then the unchanged alignment →
    // windows → statistics pipeline.
    let engine_set = StatEngineSet::new(cfg.engines.clone());
    let stat_set = engine_set.clone();
    let rows: Vec<StatRow> = Pipeline::from_source(encoded_batches.into_iter())
        .named_stage(
            "deserialise",
            map_stage(|bytes: Vec<u8>| {
                wire::from_bytes::<SampleBatch>(&bytes).expect("well-formed batch")
            }),
        )
        .named_stage(
            "alignment",
            Alignment::new(cfg.instances, cfg.sample_period),
        )
        .named_stage(
            "window-gen",
            WindowGen::new(cfg.window_width, cfg.window_slide),
        )
        .stage(flat_stage(
            move |w: cwcsim::windows::Window, out: &mut Outbox<'_, StatRow>| {
                for row in stat_set.analyse(&w).rows {
                    out.push(row);
                }
            },
        ))
        .collect()
        .map_err(EmulationError::Pipeline)?;

    let mut rows = rows;
    rows.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("times are not NaN"));
    Ok(EmulatedRun {
        rows,
        bytes_transferred,
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels::simple::decay;

    fn cfg() -> SimConfig {
        SimConfig::new(8, 3.0)
            .quantum(0.5)
            .sample_period(0.25)
            .sim_workers(2)
            .stat_workers(1)
            .window(4, 2)
            .seed(21)
    }

    #[test]
    fn distributed_rows_equal_local_rows() {
        let model = Arc::new(decay(40, 1.0));
        let cfg = cfg();
        let local = cwcsim::run_simulation(Arc::clone(&model), &cfg).unwrap();
        let remote = run_distributed_emulation(model, &cfg, 3).unwrap();
        assert_eq!(
            remote.rows, local.rows,
            "distribution must not change results"
        );
        assert!(remote.bytes_transferred > 0);
        assert!(remote.messages >= 8); // at least one batch per instance
    }

    #[test]
    fn farm_count_does_not_change_results() {
        let model = Arc::new(decay(25, 1.0));
        let cfg = cfg();
        let one = run_distributed_emulation(Arc::clone(&model), &cfg, 1).unwrap();
        let four = run_distributed_emulation(model, &cfg, 4).unwrap();
        assert_eq!(one.rows, four.rows);
    }

    #[test]
    fn more_farms_than_instances_is_fine() {
        let model = Arc::new(decay(5, 1.0));
        let mut cfg = cfg();
        cfg.instances = 3;
        let run = run_distributed_emulation(model, &cfg, 8).unwrap();
        assert!(!run.rows.is_empty());
    }
}
