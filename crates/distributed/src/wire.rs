//! Versioned binary wire format for distributed streams.
//!
//! "The pipeline was also extended to implement de-serialising and
//! serialising activities without modifying the existing code": in the
//! distributed CWC simulator, stream items cross process boundaries, so
//! they are encoded to bytes at the sender and decoded at the receiver,
//! with the pipeline stages in between untouched. This module is that
//! codec: a small, explicit, little-endian format with a magic/version
//! envelope — no derive macros, every message's layout is visible and
//! testable.

use cwc::model::{Model, Observable, ObservableSite};
use cwc::multiset::Multiset;
use cwc::rule::{CompPattern, CompProduction, Pattern, Production, RateLaw, Rule};
use cwc::species::{Label, Species};
use cwc::term::{Compartment, Term};
use cwcsim::engines::StatEngineKind;
use cwcsim::merge::{ObsSummary, RunSummary};
use cwcsim::plan::ShardRange;
use cwcsim::task::SampleBatch;
use cwcsim::ShardSpec;
use gillespie::deps::{KeptChild, ModelDeps, RuleDeps};
use gillespie::engine::EngineKind;
use gillespie::trajectory::Cut;
use streamstat::histogram::Histogram;
use streamstat::quantile::P2Quantile;
use streamstat::welford::Running;

/// Magic bytes of an encoded message envelope.
pub const MAGIC: [u8; 4] = *b"CWCS";
/// Current wire format version. Version 2 added the engine-kind field to
/// [`RemoteTaskSpec`] (engine-agnostic remote farms); version 3 added the
/// adaptive-tau and hybrid engine kinds (tags 3 and 4); version 4 added
/// the sharded-farm messages — full CWC models (so `cwc-shard` child
/// processes receive arbitrary models, not a registry name), aligned
/// partial [`Cut`]s, and the mergeable partial-statistics state
/// ([`RunSummary`] with its Welford/histogram/P² accumulators) — plus the
/// [`crate::shard`] frame envelope around them; version 5 added the
/// batched engine kind (tag 5 + batch width); version 6 added the
/// supervision fields — the heartbeat frame
/// ([`crate::shard::ToCoordinator::Progress`], tag 3) and the
/// `attempt`/`heartbeat_period` fields of [`ShardSpec`] — so the
/// coordinator's watchdog can tell a slow shard from a stalled one and
/// a requeued slice can be targeted by the fault-injection harness;
/// version 7 added the network-transport messages — the worker
/// registration hello ([`crate::net::WorkerHello`] with protocol
/// version + capacity, so a coordinator rejects mismatched daemons at
/// connect time) and the serialized [`ModelDeps`] payload in
/// [`crate::shard::ShardJob`], so workers stop recompiling the model's
/// dependency graph on every attempt.
pub const VERSION: u16 = 7;

/// Error produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the decoder needed.
    UnexpectedEof,
    /// Envelope magic did not match.
    BadMagic,
    /// Envelope version is not supported.
    BadVersion(u16),
    /// A tag byte had an invalid value.
    BadTag(u8),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::BadMagic => write!(f, "bad message magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte reader with bounds checking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Types encodable to / decodable from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value, consuming bytes from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64, f64);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag(0xFF))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        // Guard against hostile lengths: cap the pre-allocation.
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Wire for SampleBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.instance.encode(buf);
        self.samples.encode(buf);
        self.events.encode(buf);
        self.finished.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SampleBatch {
            instance: u64::decode(r)?,
            samples: Vec::decode(r)?,
            events: u64::decode(r)?,
            finished: bool::decode(r)?,
        })
    }
}

/// The engine selector crosses the wire as a tag byte plus the kind's
/// knobs where applicable (tag 0 = SSA, 1 = tau-leap + leap length,
/// 2 = first-reaction, 3 = adaptive-tau + epsilon, 4 = hybrid + epsilon
/// and switch threshold, 5 = batched + batch width).
impl Wire for EngineKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EngineKind::Ssa => buf.push(0),
            EngineKind::TauLeap { tau } => {
                buf.push(1);
                tau.encode(buf);
            }
            EngineKind::FirstReaction => buf.push(2),
            EngineKind::AdaptiveTau { epsilon } => {
                buf.push(3);
                epsilon.encode(buf);
            }
            EngineKind::Hybrid { epsilon, threshold } => {
                buf.push(4);
                epsilon.encode(buf);
                threshold.encode(buf);
            }
            EngineKind::Batched { width } => {
                buf.push(5);
                (*width as u64).encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(EngineKind::Ssa),
            1 => Ok(EngineKind::TauLeap {
                tau: f64::decode(r)?,
            }),
            2 => Ok(EngineKind::FirstReaction),
            3 => Ok(EngineKind::AdaptiveTau {
                epsilon: f64::decode(r)?,
            }),
            4 => Ok(EngineKind::Hybrid {
                epsilon: f64::decode(r)?,
                threshold: f64::decode(r)?,
            }),
            5 => Ok(EngineKind::Batched {
                width: u64::decode(r)? as usize,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Parameters shipped to a remote simulation farm: which instances to run
/// and how (the distributed version sends *parameters*, not engine state —
/// remote farms construct their own engines from the shared model and the
/// spec's engine kind).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTaskSpec {
    /// First instance id (inclusive).
    pub first_instance: u64,
    /// Number of consecutive instances.
    pub count: u64,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Time horizon.
    pub t_end: f64,
    /// Simulation quantum.
    pub quantum: f64,
    /// Sampling period τ.
    pub sample_period: f64,
    /// Stochastic integrator the remote farm must build.
    pub engine: EngineKind,
}

impl Wire for RemoteTaskSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.first_instance.encode(buf);
        self.count.encode(buf);
        self.base_seed.encode(buf);
        self.t_end.encode(buf);
        self.quantum.encode(buf);
        self.sample_period.encode(buf);
        self.engine.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RemoteTaskSpec {
            first_instance: u64::decode(r)?,
            count: u64::decode(r)?,
            base_seed: u64::decode(r)?,
            t_end: f64::decode(r)?,
            quantum: f64::decode(r)?,
            sample_period: f64::decode(r)?,
            engine: EngineKind::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Wire v4: the sharded farm's payloads. A `cwc-shard` child process
// receives a full model plus its shard spec and streams aligned partial
// cuts and one mergeable partial-statistics state back — everything
// below is that vocabulary. Interned handles travel as their raw u32
// (the decoder re-interns the alphabet's names in the same order, so
// raw ids mean the same thing on both sides; `Label::TOP`'s sentinel
// raw value round-trips unchanged).
// ---------------------------------------------------------------------

impl Wire for Species {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.raw().encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Species::from_raw(u32::decode(r)?))
    }
}

impl Wire for Label {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.raw().encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Label::from_raw(u32::decode(r)?))
    }
}

impl Wire for Multiset {
    fn encode(&self, buf: &mut Vec<u8>) {
        let pairs: Vec<(Species, u64)> = self.iter().collect();
        pairs.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let pairs: Vec<(Species, u64)> = Vec::decode(r)?;
        let mut ms = Multiset::new();
        for (s, n) in pairs {
            ms.insert(s, n);
        }
        Ok(ms)
    }
}

impl Wire for Compartment {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.label.encode(buf);
        self.wrap.encode(buf);
        self.content.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Compartment {
            label: Label::decode(r)?,
            wrap: Multiset::decode(r)?,
            content: Term::decode(r)?,
        })
    }
}

impl Wire for Term {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.atoms.encode(buf);
        self.comps.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Term {
            atoms: Multiset::decode(r)?,
            comps: Vec::decode(r)?,
        })
    }
}

impl Wire for CompPattern {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.label.encode(buf);
        self.wrap.encode(buf);
        self.atoms.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CompPattern {
            label: Label::decode(r)?,
            wrap: Multiset::decode(r)?,
            atoms: Multiset::decode(r)?,
        })
    }
}

impl Wire for Pattern {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.atoms.encode(buf);
        self.comps.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Pattern {
            atoms: Multiset::decode(r)?,
            comps: Vec::decode(r)?,
        })
    }
}

/// Tag 0 = keep, 1 = new, 2 = dissolve.
impl Wire for CompProduction {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CompProduction::Keep {
                index,
                add_wrap,
                add_atoms,
            } => {
                buf.push(0);
                (*index as u64).encode(buf);
                add_wrap.encode(buf);
                add_atoms.encode(buf);
            }
            CompProduction::New { label, wrap, atoms } => {
                buf.push(1);
                label.encode(buf);
                wrap.encode(buf);
                atoms.encode(buf);
            }
            CompProduction::Dissolve { index } => {
                buf.push(2);
                (*index as u64).encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(CompProduction::Keep {
                index: u64::decode(r)? as usize,
                add_wrap: Multiset::decode(r)?,
                add_atoms: Multiset::decode(r)?,
            }),
            1 => Ok(CompProduction::New {
                label: Label::decode(r)?,
                wrap: Multiset::decode(r)?,
                atoms: Multiset::decode(r)?,
            }),
            2 => Ok(CompProduction::Dissolve {
                index: u64::decode(r)? as usize,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Production {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.atoms.encode(buf);
        self.comps.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Production {
            atoms: Multiset::decode(r)?,
            comps: Vec::decode(r)?,
        })
    }
}

/// Tag 0 = mass action, 1 = Hill repression, 2 = Hill activation,
/// 3 = Michaelis–Menten saturation.
impl Wire for RateLaw {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RateLaw::MassAction => buf.push(0),
            RateLaw::HillRepression { inhibitor, k, n } => {
                buf.push(1);
                inhibitor.encode(buf);
                k.encode(buf);
                n.encode(buf);
            }
            RateLaw::HillActivation { activator, k, n } => {
                buf.push(2);
                activator.encode(buf);
                k.encode(buf);
                n.encode(buf);
            }
            RateLaw::Saturating { substrate, km } => {
                buf.push(3);
                substrate.encode(buf);
                km.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(RateLaw::MassAction),
            1 => Ok(RateLaw::HillRepression {
                inhibitor: Species::decode(r)?,
                k: f64::decode(r)?,
                n: f64::decode(r)?,
            }),
            2 => Ok(RateLaw::HillActivation {
                activator: Species::decode(r)?,
                k: f64::decode(r)?,
                n: f64::decode(r)?,
            }),
            3 => Ok(RateLaw::Saturating {
                substrate: Species::decode(r)?,
                km: f64::decode(r)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Rule {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.site.encode(buf);
        self.lhs.encode(buf);
        self.rhs.encode(buf);
        self.rate.encode(buf);
        self.law.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Rule {
            name: String::decode(r)?,
            site: Label::decode(r)?,
            lhs: Pattern::decode(r)?,
            rhs: Production::decode(r)?,
            rate: f64::decode(r)?,
            law: RateLaw::decode(r)?,
        })
    }
}

/// Tag 0 = everywhere, 1 = top only, 2 = at label.
impl Wire for ObservableSite {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ObservableSite::Everywhere => buf.push(0),
            ObservableSite::TopOnly => buf.push(1),
            ObservableSite::AtLabel(label) => {
                buf.push(2);
                label.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ObservableSite::Everywhere),
            1 => Ok(ObservableSite::TopOnly),
            2 => Ok(ObservableSite::AtLabel(Label::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Observable {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.species.encode(buf);
        self.site.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Observable {
            name: String::decode(r)?,
            species: Species::decode(r)?,
            site: ObservableSite::decode(r)?,
        })
    }
}

/// A full CWC model crosses the wire as its name, the alphabet's names
/// (in interning order, so the decoder's re-interning reproduces the
/// same raw handles), the rules, the initial term and the observables.
impl Wire for Model {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        let species: Vec<String> = self
            .alphabet
            .all_species()
            .map(|s| self.alphabet.species_name(s).to_owned())
            .collect();
        species.encode(buf);
        let labels: Vec<String> = (0..self.alphabet.label_count())
            .map(|i| {
                self.alphabet
                    .label_name(Label::from_raw(i as u32))
                    .to_owned()
            })
            .collect();
        labels.encode(buf);
        self.rules.encode(buf);
        self.initial.encode(buf);
        self.observables.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut model = Model::new(&String::decode(r)?);
        for name in Vec::<String>::decode(r)? {
            model.species(&name);
        }
        for name in Vec::<String>::decode(r)? {
            model.label(&name);
        }
        // Rules are pushed semantically unvalidated here (the receiver
        // re-validates the whole model before running it, with better
        // errors than BadTag) — but every interned handle is bounds-
        // checked against the decoded alphabet, because an out-of-range
        // id would panic deep inside compilation, not fail validation.
        model.rules = Vec::decode(r)?;
        model.initial = Term::decode(r)?;
        model.observables = Vec::decode(r)?;
        check_model_handles(&model)?;
        Ok(model)
    }
}

/// Rejects decoded models whose species/label handles fall outside the
/// decoded alphabet (possible only through a corrupt or hostile stream).
fn check_model_handles(model: &Model) -> Result<(), WireError> {
    let n_species = model.alphabet.species_count() as u32;
    let n_labels = model.alphabet.label_count() as u32;
    let bad = || WireError::BadTag(0xFD);
    let check_species = |s: Species| (s.raw() < n_species).then_some(()).ok_or_else(bad);
    let check_label = |l: Label| {
        (l.is_top() || l.raw() < n_labels)
            .then_some(())
            .ok_or_else(bad)
    };
    let check_multiset = |ms: &Multiset| ms.iter().try_for_each(|(s, _)| check_species(s));
    fn check_term(
        t: &Term,
        check_multiset: &impl Fn(&Multiset) -> Result<(), WireError>,
        check_label: &impl Fn(Label) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        check_multiset(&t.atoms)?;
        for c in &t.comps {
            check_label(c.label)?;
            check_multiset(&c.wrap)?;
            check_term(&c.content, check_multiset, check_label)?;
        }
        Ok(())
    }
    for rule in &model.rules {
        check_label(rule.site)?;
        check_multiset(&rule.lhs.atoms)?;
        for cp in &rule.lhs.comps {
            check_label(cp.label)?;
            check_multiset(&cp.wrap)?;
            check_multiset(&cp.atoms)?;
        }
        check_multiset(&rule.rhs.atoms)?;
        for prod in &rule.rhs.comps {
            match prod {
                CompProduction::Keep {
                    add_wrap,
                    add_atoms,
                    ..
                } => {
                    check_multiset(add_wrap)?;
                    check_multiset(add_atoms)?;
                }
                CompProduction::New { label, wrap, atoms } => {
                    check_label(*label)?;
                    check_multiset(wrap)?;
                    check_multiset(atoms)?;
                }
                CompProduction::Dissolve { .. } => {}
            }
        }
        match &rule.law {
            RateLaw::MassAction => {}
            RateLaw::HillRepression { inhibitor, .. } => check_species(*inhibitor)?,
            RateLaw::HillActivation { activator, .. } => check_species(*activator)?,
            RateLaw::Saturating { substrate, .. } => check_species(*substrate)?,
        }
    }
    check_term(&model.initial, &check_multiset, &check_label)?;
    for obs in &model.observables {
        check_species(obs.species)?;
        if let ObservableSite::AtLabel(l) = obs.site {
            check_label(l)?;
        }
    }
    Ok(())
}

impl Wire for Cut {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.time.encode(buf);
        self.values.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Cut {
            time: f64::decode(r)?,
            values: Vec::decode(r)?,
        })
    }
}

/// Tag 0 = mean/variance, 1 = k-means, 2 = quantile, 3 = histogram.
impl Wire for StatEngineKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            StatEngineKind::MeanVariance => buf.push(0),
            StatEngineKind::KMeans { k } => {
                buf.push(1);
                (*k as u64).encode(buf);
            }
            StatEngineKind::Quantile { p } => {
                buf.push(2);
                p.encode(buf);
            }
            StatEngineKind::Histogram { lo, hi, bins } => {
                buf.push(3);
                lo.encode(buf);
                hi.encode(buf);
                (*bins as u64).encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(StatEngineKind::MeanVariance),
            1 => Ok(StatEngineKind::KMeans {
                k: u64::decode(r)? as usize,
            }),
            2 => Ok(StatEngineKind::Quantile { p: f64::decode(r)? }),
            3 => Ok(StatEngineKind::Histogram {
                lo: f64::decode(r)?,
                hi: f64::decode(r)?,
                bins: u64::decode(r)? as usize,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Running {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.count().encode(buf);
        self.mean().encode(buf);
        self.m2().encode(buf);
        self.min().encode(buf);
        self.max().encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Running::from_parts(
            u64::decode(r)?,
            f64::decode(r)?,
            f64::decode(r)?,
            f64::decode(r)?,
            f64::decode(r)?,
        ))
    }
}

impl Wire for Histogram {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.lo().encode(buf);
        self.hi().encode(buf);
        let counts: Vec<u64> = (0..self.bins()).map(|i| self.bin_count(i)).collect();
        counts.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lo = f64::decode(r)?;
        let hi = f64::decode(r)?;
        let counts: Vec<u64> = Vec::decode(r)?;
        // Validate before the constructor would panic on hostile input.
        if counts.is_empty() || hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(WireError::BadTag(0xFE));
        }
        Ok(Histogram::from_parts(lo, hi, counts))
    }
}

impl Wire for P2Quantile {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (p, heights, positions, desired, seen) = self.raw_parts();
        p.encode(buf);
        for x in heights.iter().chain(&positions).chain(&desired) {
            x.encode(buf);
        }
        seen.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = f64::decode(r)?;
        if !(p > 0.0 && p < 1.0) {
            return Err(WireError::BadTag(0xFE));
        }
        let mut arrays = [[0.0f64; 5]; 3];
        for a in &mut arrays {
            for x in a.iter_mut() {
                *x = f64::decode(r)?;
            }
        }
        let [heights, positions, desired] = arrays;
        Ok(P2Quantile::from_raw_parts(
            p,
            heights,
            positions,
            desired,
            u64::decode(r)?,
        ))
    }
}

impl Wire for ObsSummary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.running.encode(buf);
        self.histogram.encode(buf);
        self.quantile.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ObsSummary {
            running: Running::decode(r)?,
            histogram: Option::decode(r)?,
            quantile: Option::decode(r)?,
        })
    }
}

impl Wire for RunSummary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.engines().to_vec().encode(buf);
        self.observables().to_vec().encode(buf);
        self.cuts().encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RunSummary::from_parts(
            Vec::decode(r)?,
            Vec::decode(r)?,
            u64::decode(r)?,
        ))
    }
}

impl Wire for ShardRange {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.shard as u64).encode(buf);
        self.first_instance.encode(buf);
        self.count.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardRange {
            shard: u64::decode(r)? as usize,
            first_instance: u64::decode(r)?,
            count: u64::decode(r)?,
        })
    }
}

impl Wire for ShardSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.range.encode(buf);
        self.engine.encode(buf);
        self.base_seed.encode(buf);
        self.t_end.encode(buf);
        self.quantum.encode(buf);
        self.sample_period.encode(buf);
        (self.sim_workers as u64).encode(buf);
        (self.channel_capacity as u64).encode(buf);
        self.engines.encode(buf);
        self.attempt.encode(buf);
        self.heartbeat_period.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardSpec {
            range: ShardRange::decode(r)?,
            engine: EngineKind::decode(r)?,
            base_seed: u64::decode(r)?,
            t_end: f64::decode(r)?,
            quantum: f64::decode(r)?,
            sample_period: f64::decode(r)?,
            sim_workers: u64::decode(r)? as usize,
            channel_capacity: u64::decode(r)? as usize,
            engines: Vec::decode(r)?,
            attempt: u32::decode(r)?,
            heartbeat_period: f64::decode(r)?,
        })
    }
}

impl Wire for KeptChild {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.pattern as u64).encode(buf);
        self.label.encode(buf);
        self.wrap_delta.encode(buf);
        self.content_delta.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(KeptChild {
            pattern: u64::decode(r)? as usize,
            label: Label::decode(r)?,
            wrap_delta: Vec::decode(r)?,
            content_delta: Vec::decode(r)?,
        })
    }
}

impl Wire for RuleDeps {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.site.encode(buf);
        self.structural.encode(buf);
        self.site_reads.encode(buf);
        self.child_wrap_reads.encode(buf);
        self.child_content_reads.encode(buf);
        self.site_delta.encode(buf);
        self.kept.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RuleDeps {
            site: Label::decode(r)?,
            structural: bool::decode(r)?,
            site_reads: Vec::decode(r)?,
            child_wrap_reads: Vec::decode(r)?,
            child_content_reads: Vec::decode(r)?,
            site_delta: Vec::decode(r)?,
            kept: Vec::decode(r)?,
        })
    }
}

/// [`ModelDeps`] crosses the wire as its four part lists (per-rule deps
/// plus the three affected-rule tables); the decoder rebuilds it through
/// [`ModelDeps::from_parts`], so a hostile or corrupted payload that is
/// structurally inconsistent (mismatched lengths, out-of-range rule
/// indices) surfaces as a decode error — tag byte `0xFC` — rather than
/// a deps table that indexes out of bounds at simulation time.
impl Wire for ModelDeps {
    fn encode(&self, buf: &mut Vec<u8>) {
        let n = self.len();
        (n as u64).encode(buf);
        for r in 0..n {
            self.rule(r).encode(buf);
        }
        (n as u64).encode(buf);
        for r in 0..n {
            self.same_site_affected(r).to_vec().encode(buf);
        }
        (n as u64).encode(buf);
        for r in 0..n {
            self.child_lists(r).to_vec().encode(buf);
        }
        (n as u64).encode(buf);
        for r in 0..n {
            self.parent_affected(r).to_vec().encode(buf);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rules: Vec<RuleDeps> = Vec::decode(r)?;
        let same_site: Vec<Vec<u32>> = Vec::decode(r)?;
        let child_rules: Vec<Vec<Vec<u32>>> = Vec::decode(r)?;
        let parent_rules: Vec<Vec<u32>> = Vec::decode(r)?;
        ModelDeps::from_parts(rules, same_site, child_rules, parent_rules)
            .map_err(|_| WireError::BadTag(0xFC))
    }
}

/// Encodes a message with the magic/version envelope.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&MAGIC);
    VERSION.encode(&mut buf);
    value.encode(&mut buf);
    buf
}

/// Decodes an enveloped message, requiring full consumption of `bytes`.
///
/// # Errors
///
/// Returns a [`WireError`] on bad envelope, malformed body or trailing
/// bytes.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::decode(&mut r)?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let value = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

/// Size in bytes of the encoded form (envelope included) — the message
/// size the network models charge for.
pub fn encoded_size<T: Wire>(value: &T) -> usize {
    to_bytes(value).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(-0.5f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello wire"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip((7u8, String::from("x")));
        roundtrip(vec![(0.5f64, vec![1u64]), (1.5, vec![2, 3])]);
    }

    #[test]
    fn sample_batch_roundtrips() {
        roundtrip(SampleBatch {
            instance: 17,
            samples: vec![(0.0, vec![1, 2]), (0.5, vec![3, 4])],
            events: 99,
            finished: true,
        });
    }

    #[test]
    fn remote_task_spec_roundtrips() {
        for engine in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.125 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.03 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 16.0,
            },
            EngineKind::Batched { width: 64 },
        ] {
            roundtrip(RemoteTaskSpec {
                first_instance: 128,
                count: 64,
                base_seed: 7,
                t_end: 100.0,
                quantum: 5.0,
                sample_period: 0.5,
                engine,
            });
        }
    }

    #[test]
    fn engine_kind_bad_tag_is_rejected() {
        let mut bytes = to_bytes(&EngineKind::Ssa);
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert_eq!(from_bytes::<EngineKind>(&bytes), Err(WireError::BadTag(9)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&1u64);
        bytes[0] = b'X';
        assert_eq!(from_bytes::<u64>(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = to_bytes(&1u64);
        bytes[4] = 99;
        assert!(matches!(
            from_bytes::<u64>(&bytes),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        assert_eq!(
            from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = to_bytes(&1u8);
        bytes.push(0);
        assert_eq!(from_bytes::<u8>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut bytes = to_bytes(&true);
        let last = bytes.len() - 1;
        bytes[last] = 7;
        assert_eq!(from_bytes::<bool>(&bytes), Err(WireError::BadTag(7)));
    }

    #[test]
    fn hostile_length_does_not_overallocate() {
        // A Vec claiming u64::MAX elements must fail with EOF, not OOM.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        VERSION.encode(&mut bytes);
        u64::MAX.encode(&mut bytes);
        assert_eq!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn encoded_size_charges_the_envelope() {
        assert_eq!(encoded_size(&0u8), 4 + 2 + 1);
    }

    // --- wire v4 payloads ---

    #[test]
    fn cut_roundtrips() {
        roundtrip(Cut {
            time: 1.25,
            values: vec![vec![1, 2], vec![3, 4], vec![5, 6]],
        });
        roundtrip(Cut {
            time: 0.0,
            values: vec![],
        });
    }

    #[test]
    fn stat_engine_kinds_roundtrip() {
        roundtrip(StatEngineKind::MeanVariance);
        roundtrip(StatEngineKind::KMeans { k: 3 });
        roundtrip(StatEngineKind::Quantile { p: 0.9 });
        roundtrip(StatEngineKind::Histogram {
            lo: -1.0,
            hi: 9.0,
            bins: 12,
        });
    }

    #[test]
    fn accumulators_roundtrip() {
        let r: Running = [1.0, 2.5, -3.0, 8.0].into_iter().collect();
        roundtrip(r);

        let mut h = Histogram::new(0.0, 10.0, 4);
        for x in [0.5, 3.0, 9.9, 12.0] {
            h.push(x);
        }
        roundtrip(h);

        let mut q = P2Quantile::new(0.5);
        for i in 0..100 {
            q.push(i as f64);
        }
        let bytes = to_bytes(&q);
        let back: P2Quantile = from_bytes(&bytes).unwrap();
        assert_eq!(back.raw_parts(), q.raw_parts());
        assert_eq!(back.estimate(), q.estimate());
    }

    #[test]
    fn hostile_accumulator_parameters_are_rejected_not_panicked() {
        // Histogram with hi <= lo.
        let h = Histogram::new(0.0, 1.0, 2);
        let mut bytes = to_bytes(&h);
        // hi is the second f64 after the envelope (4 magic + 2 version + 8 lo).
        bytes[14..22].copy_from_slice(&(-5.0f64).to_le_bytes());
        assert!(from_bytes::<Histogram>(&bytes).is_err());
        // Quantile with p outside (0, 1).
        let q = P2Quantile::new(0.5);
        let mut bytes = to_bytes(&q);
        bytes[6..14].copy_from_slice(&(2.0f64).to_le_bytes());
        assert!(from_bytes::<P2Quantile>(&bytes).is_err());
    }

    #[test]
    fn run_summary_roundtrips_and_keeps_merging() {
        use streamstat::merge::Mergeable;
        let engines = vec![
            StatEngineKind::MeanVariance,
            StatEngineKind::Histogram {
                lo: 0.0,
                hi: 100.0,
                bins: 10,
            },
            StatEngineKind::Quantile { p: 0.5 },
        ];
        let mut s = RunSummary::new(engines);
        s.push_cut(&Cut {
            time: 0.0,
            values: vec![vec![10], vec![20], vec![30]],
        });
        let bytes = to_bytes(&s);
        let mut back: RunSummary = from_bytes(&bytes).unwrap();
        assert_eq!(back.cuts(), 1);
        let (a, b) = (&s.observables()[0], &back.observables()[0]);
        assert_eq!(a.running, b.running);
        assert_eq!(a.histogram, b.histogram);
        // A decoded summary must still merge with a live one.
        back.merge_from(&s);
        assert_eq!(back.observables()[0].running.count(), 6);
    }

    #[test]
    fn shard_spec_roundtrips() {
        roundtrip(ShardSpec {
            range: ShardRange {
                shard: 2,
                first_instance: 64,
                count: 32,
            },
            engine: EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
            base_seed: 7,
            t_end: 50.0,
            quantum: 1.0,
            sample_period: 0.5,
            sim_workers: 4,
            channel_capacity: 64,
            engines: vec![
                StatEngineKind::MeanVariance,
                StatEngineKind::KMeans { k: 2 },
            ],
            attempt: 3,
            heartbeat_period: 0.25,
        });
    }

    #[test]
    fn out_of_range_model_handles_are_rejected_not_panicked() {
        let mut m = Model::new("bad");
        let a = m.species("A");
        m.rule("r").consumes("A", 1).rate(1.0).build().unwrap();
        m.initial.add_atoms(a, 1);
        m.observe("A", a);
        // Corrupt a handle past the shipped alphabet: decoding must fail
        // cleanly instead of letting compilation panic later.
        m.observables[0].species = Species::from_raw(99);
        assert!(from_bytes::<Model>(&to_bytes(&m)).is_err());
        // And an out-of-range label on a rule site.
        let mut m2 = Model::new("bad2");
        let b = m2.species("B");
        m2.rule("r").consumes("B", 1).rate(1.0).build().unwrap();
        m2.initial.add_atoms(b, 1);
        m2.observe("B", b);
        m2.rules[0].site = Label::from_raw(7);
        assert!(from_bytes::<Model>(&to_bytes(&m2)).is_err());
    }

    #[test]
    fn compartment_model_roundtrips_bit_for_bit() {
        let model = {
            let mut m = Model::new("wire-test");
            let a = m.species("A");
            let cell = m.label("cell");
            m.rule("engulf")
                .consumes("A", 1)
                .matches_comp("cell", &[("R", 1)], &[])
                .keeps(0, &[], &[("A", 1)])
                .rate(0.5)
                .build()
                .unwrap();
            m.rule("feed")
                .produces("A", 2)
                .rate(3.0)
                .repressed_by("A", 100.0, 2.0)
                .build()
                .unwrap();
            m.initial.add_atoms(a, 10);
            let receptor = m.species("R");
            m.initial.add_compartment(cwc::term::Compartment::new(
                cell,
                Multiset::from([(receptor, 1)]),
                cwc::term::Term::new(),
            ));
            m.observe("A", a);
            m.observe_at("cell_A", a, ObservableSite::AtLabel(cell));
            m
        };
        let bytes = to_bytes(&model);
        let back: Model = from_bytes(&bytes).unwrap();
        assert_eq!(back.name, model.name);
        assert_eq!(back.rules, model.rules);
        assert_eq!(back.initial, model.initial);
        assert_eq!(back.observables, model.observables);
        back.validate().unwrap();
        // Re-interning preserved the raw handles and names.
        assert_eq!(
            back.alphabet.find_species("A"),
            model.alphabet.find_species("A")
        );
        assert_eq!(
            back.alphabet.find_label("cell"),
            model.alphabet.find_label("cell")
        );
        // The decoded model drives identical trajectories.
        let mut a = gillespie::ssa::SsaEngine::new(std::sync::Arc::new(model), 42, 0);
        let mut b = gillespie::ssa::SsaEngine::new(std::sync::Arc::new(back), 42, 0);
        a.run_until(2.0);
        b.run_until(2.0);
        assert_eq!(a.observe(), b.observe());
    }

    #[test]
    fn model_deps_roundtrip_bit_for_bit() {
        for model in [
            biomodels::simple::decay(40, 1.0),
            biomodels::simple::birth_death(2.0, 0.1, 5),
            biomodels::cell_transport::cell_transport(Default::default()),
        ] {
            let deps = ModelDeps::compile(&model);
            let back: ModelDeps = from_bytes(&to_bytes(&deps)).expect("deps roundtrip");
            assert_eq!(back, deps, "{}", model.name);
            back.validate_for(&model)
                .expect("decoded deps fit the source model");
        }
    }

    #[test]
    fn inconsistent_deps_payload_is_rejected_not_panicked() {
        // Hand-craft a payload whose part lists disagree: zero rules but
        // one same-site affected list. `from_parts` must refuse it and
        // the decoder must surface that as a typed error.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        VERSION.encode(&mut buf);
        Vec::<RuleDeps>::new().encode(&mut buf);
        vec![vec![0u32]].encode(&mut buf);
        Vec::<Vec<Vec<u32>>>::new().encode(&mut buf);
        Vec::<Vec<u32>>::new().encode(&mut buf);
        assert_eq!(from_bytes::<ModelDeps>(&buf), Err(WireError::BadTag(0xFC)));
        // Truncated deps payloads die with EOF, not a panic.
        let model = biomodels::cell_transport::cell_transport(Default::default());
        let bytes = to_bytes(&ModelDeps::compile(&model));
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes::<ModelDeps>(&bytes[..cut]).is_err());
        }
    }
}
