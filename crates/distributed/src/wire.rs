//! Versioned binary wire format for distributed streams.
//!
//! "The pipeline was also extended to implement de-serialising and
//! serialising activities without modifying the existing code": in the
//! distributed CWC simulator, stream items cross process boundaries, so
//! they are encoded to bytes at the sender and decoded at the receiver,
//! with the pipeline stages in between untouched. This module is that
//! codec: a small, explicit, little-endian format with a magic/version
//! envelope — no derive macros, every message's layout is visible and
//! testable.

use cwcsim::task::SampleBatch;
use gillespie::engine::EngineKind;

/// Magic bytes of an encoded message envelope.
pub const MAGIC: [u8; 4] = *b"CWCS";
/// Current wire format version. Version 2 added the engine-kind field to
/// [`RemoteTaskSpec`] (engine-agnostic remote farms); version 3 added the
/// adaptive-tau and hybrid engine kinds (tags 3 and 4).
pub const VERSION: u16 = 3;

/// Error produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the decoder needed.
    UnexpectedEof,
    /// Envelope magic did not match.
    BadMagic,
    /// Envelope version is not supported.
    BadVersion(u16),
    /// A tag byte had an invalid value.
    BadTag(u8),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::BadMagic => write!(f, "bad message magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte reader with bounds checking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Types encodable to / decodable from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value, consuming bytes from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64, f64);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag(0xFF))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        // Guard against hostile lengths: cap the pre-allocation.
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Wire for SampleBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.instance.encode(buf);
        self.samples.encode(buf);
        self.events.encode(buf);
        self.finished.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SampleBatch {
            instance: u64::decode(r)?,
            samples: Vec::decode(r)?,
            events: u64::decode(r)?,
            finished: bool::decode(r)?,
        })
    }
}

/// The engine selector crosses the wire as a tag byte plus the kind's
/// knobs where applicable (tag 0 = SSA, 1 = tau-leap + leap length,
/// 2 = first-reaction, 3 = adaptive-tau + epsilon, 4 = hybrid + epsilon
/// and switch threshold).
impl Wire for EngineKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EngineKind::Ssa => buf.push(0),
            EngineKind::TauLeap { tau } => {
                buf.push(1);
                tau.encode(buf);
            }
            EngineKind::FirstReaction => buf.push(2),
            EngineKind::AdaptiveTau { epsilon } => {
                buf.push(3);
                epsilon.encode(buf);
            }
            EngineKind::Hybrid { epsilon, threshold } => {
                buf.push(4);
                epsilon.encode(buf);
                threshold.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(EngineKind::Ssa),
            1 => Ok(EngineKind::TauLeap {
                tau: f64::decode(r)?,
            }),
            2 => Ok(EngineKind::FirstReaction),
            3 => Ok(EngineKind::AdaptiveTau {
                epsilon: f64::decode(r)?,
            }),
            4 => Ok(EngineKind::Hybrid {
                epsilon: f64::decode(r)?,
                threshold: f64::decode(r)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Parameters shipped to a remote simulation farm: which instances to run
/// and how (the distributed version sends *parameters*, not engine state —
/// remote farms construct their own engines from the shared model and the
/// spec's engine kind).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTaskSpec {
    /// First instance id (inclusive).
    pub first_instance: u64,
    /// Number of consecutive instances.
    pub count: u64,
    /// Base RNG seed.
    pub base_seed: u64,
    /// Time horizon.
    pub t_end: f64,
    /// Simulation quantum.
    pub quantum: f64,
    /// Sampling period τ.
    pub sample_period: f64,
    /// Stochastic integrator the remote farm must build.
    pub engine: EngineKind,
}

impl Wire for RemoteTaskSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.first_instance.encode(buf);
        self.count.encode(buf);
        self.base_seed.encode(buf);
        self.t_end.encode(buf);
        self.quantum.encode(buf);
        self.sample_period.encode(buf);
        self.engine.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RemoteTaskSpec {
            first_instance: u64::decode(r)?,
            count: u64::decode(r)?,
            base_seed: u64::decode(r)?,
            t_end: f64::decode(r)?,
            quantum: f64::decode(r)?,
            sample_period: f64::decode(r)?,
            engine: EngineKind::decode(r)?,
        })
    }
}

/// Encodes a message with the magic/version envelope.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&MAGIC);
    VERSION.encode(&mut buf);
    value.encode(&mut buf);
    buf
}

/// Decodes an enveloped message, requiring full consumption of `bytes`.
///
/// # Errors
///
/// Returns a [`WireError`] on bad envelope, malformed body or trailing
/// bytes.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::decode(&mut r)?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let value = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

/// Size in bytes of the encoded form (envelope included) — the message
/// size the network models charge for.
pub fn encoded_size<T: Wire>(value: &T) -> usize {
    to_bytes(value).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(-0.5f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello wire"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip((7u8, String::from("x")));
        roundtrip(vec![(0.5f64, vec![1u64]), (1.5, vec![2, 3])]);
    }

    #[test]
    fn sample_batch_roundtrips() {
        roundtrip(SampleBatch {
            instance: 17,
            samples: vec![(0.0, vec![1, 2]), (0.5, vec![3, 4])],
            events: 99,
            finished: true,
        });
    }

    #[test]
    fn remote_task_spec_roundtrips() {
        for engine in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.125 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.03 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 16.0,
            },
        ] {
            roundtrip(RemoteTaskSpec {
                first_instance: 128,
                count: 64,
                base_seed: 7,
                t_end: 100.0,
                quantum: 5.0,
                sample_period: 0.5,
                engine,
            });
        }
    }

    #[test]
    fn engine_kind_bad_tag_is_rejected() {
        let mut bytes = to_bytes(&EngineKind::Ssa);
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert_eq!(from_bytes::<EngineKind>(&bytes), Err(WireError::BadTag(9)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = to_bytes(&1u64);
        bytes[0] = b'X';
        assert_eq!(from_bytes::<u64>(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = to_bytes(&1u64);
        bytes[4] = 99;
        assert!(matches!(
            from_bytes::<u64>(&bytes),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        assert_eq!(
            from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = to_bytes(&1u8);
        bytes.push(0);
        assert_eq!(from_bytes::<u8>(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut bytes = to_bytes(&true);
        let last = bytes.len() - 1;
        bytes[last] = 7;
        assert_eq!(from_bytes::<bool>(&bytes), Err(WireError::BadTag(7)));
    }

    #[test]
    fn hostile_length_does_not_overallocate() {
        // A Vec claiming u64::MAX elements must fail with EOF, not OOM.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        VERSION.encode(&mut bytes);
        u64::MAX.encode(&mut bytes);
        assert_eq!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn encoded_size_charges_the_envelope() {
        assert_eq!(encoded_size(&0u8), 4 + 2 + 1);
    }
}
