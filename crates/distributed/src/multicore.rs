//! Discrete-event model of the multicore simulation-analysis pipeline.
//!
//! Reproduces the performance behaviour of the paper's Fig. 3 (and the CPU
//! column of Table I): `sim_workers` cores execute quanta on demand with
//! feedback rescheduling, a single alignment thread re-groups samples into
//! cuts, and a farm of `stat_engines` analyses complete cuts. The workload
//! matrix comes from real engine runs ([`crate::workload::WorkloadTrace`]),
//! the unit costs from measurements ([`crate::workload::CostModel`]), so
//! the model's only synthetic inputs are core counts and speeds.
//!
//! The characteristic Fig. 3 shape emerges naturally: analysis work per cut
//! grows with the number of trajectories, so with one statistical engine
//! the analysis stage saturates for large datasets ("the speedup decreases
//! with the dimension increasing of the dataset, because of the on-line
//! data filtering and analysis") — and a farm of 4 statistical engines
//! restores scalability.

use std::collections::VecDeque;

use desim::{simulate, Scheduler, World};

use crate::platform::HostProfile;
use crate::workload::{CostModel, WorkloadTrace};

/// Parameters of one multicore pipeline simulation.
#[derive(Debug, Clone)]
pub struct MulticoreParams {
    /// The machine.
    pub host: HostProfile,
    /// Cores devoted to simulation engines.
    pub sim_workers: usize,
    /// Cores devoted to statistical engines.
    pub stat_engines: usize,
    /// Measured unit costs.
    pub costs: CostModel,
    /// Observable values per sample (columns per trajectory per cut).
    pub values_per_sample: usize,
    /// Fixed scheduling overhead per dispatched quantum.
    pub dispatch_overhead_s: f64,
    /// When true (default), alignment and statistics run on their own
    /// cores next to the `sim_workers`. When false, *all* stages compete
    /// for one shared pool of [`pool_cores`](Self::pool_cores) cores — the
    /// right model for a small VM where the whole pipeline shares four
    /// cores (the paper's Fig. 5 setting, whose speedup tops out at 3.15/4
    /// because of "the additional work done by the on-line alignment of
    /// trajectories").
    pub dedicated_stages: bool,
    /// Size of the shared pool when `dedicated_stages` is false
    /// (`None` = same as `sim_workers`). A VM keeps all its cores even
    /// when fewer simulation workers run: analysis then overlaps for free,
    /// which is exactly why the 1-worker baseline excludes analysis time.
    pub pool_cores: Option<usize>,
}

impl MulticoreParams {
    /// Sensible defaults on the given host.
    pub fn new(host: HostProfile, sim_workers: usize, stat_engines: usize) -> Self {
        MulticoreParams {
            host,
            sim_workers,
            stat_engines,
            costs: CostModel::nominal(),
            values_per_sample: 3,
            dispatch_overhead_s: 2e-6,
            dedicated_stages: true,
            pool_cores: None,
        }
    }
}

/// Timing outcome of the pipeline model.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Wall-clock makespan of the run.
    pub makespan_s: f64,
    /// Aggregate busy time of the simulation cores.
    pub sim_busy_s: f64,
    /// Busy time of the alignment thread.
    pub align_busy_s: f64,
    /// Aggregate busy time of the statistical engines.
    pub stat_busy_s: f64,
    /// Cuts analysed.
    pub cuts: u64,
}

impl PipelineOutcome {
    /// Time a single core would need for the same work (the speedup
    /// baseline of Fig. 3).
    pub fn sequential_time_s(&self) -> f64 {
        self.sim_busy_s + self.align_busy_s + self.stat_busy_s
    }

    /// Speedup of this configuration over the sequential execution.
    pub fn speedup(&self) -> f64 {
        self.sequential_time_s() / self.makespan_s
    }
}

/// Service-completion events: each variant names the stage that finished.
#[derive(Debug)]
enum Ev {
    Sim { instance: usize },
    Align,
    Stat,
}

struct PipelineWorld<'a> {
    trace: &'a WorkloadTrace,
    p: &'a MulticoreParams,
    /// Per-instance next quantum index.
    next_quantum: Vec<usize>,
    /// Instances ready for a simulation core (FIFO = on-demand + feedback).
    ready: VecDeque<usize>,
    sim_busy: usize,
    /// Alignment job queue: number of samples per pending batch.
    align_queue: VecDeque<(usize, u64)>, // (instance, samples)
    align_busy: bool,
    /// Per-cut fill counts.
    cut_fill: Vec<u64>,
    next_cut_to_check: usize,
    /// Stat job queue (cut indices) and busy engines.
    stat_queue: VecDeque<usize>,
    stat_busy: usize,
    cuts_done: u64,
    /// Per-instance samples contributed so far (drives cut filling).
    samples_sent: Vec<u64>,
    // accounting
    sim_busy_s: f64,
    align_busy_s: f64,
    stat_busy_s: f64,
}

impl<'a> PipelineWorld<'a> {
    fn new(trace: &'a WorkloadTrace, p: &'a MulticoreParams) -> Self {
        let n = trace.instances as usize;
        PipelineWorld {
            trace,
            p,
            next_quantum: vec![0; n],
            ready: (0..n).collect(),
            sim_busy: 0,
            align_queue: VecDeque::new(),
            align_busy: false,
            cut_fill: vec![0; trace.samples_per_instance as usize],
            next_cut_to_check: 0,
            stat_queue: VecDeque::new(),
            stat_busy: 0,
            cuts_done: 0,
            samples_sent: vec![0; n],
            sim_busy_s: 0.0,
            align_busy_s: 0.0,
            stat_busy_s: 0.0,
        }
    }

    fn quantum_service(&self, instance: usize) -> f64 {
        let q = self.next_quantum[instance];
        let events = self.trace.events[q][instance];
        self.p.dispatch_overhead_s
            + events as f64 * self.p.costs.sec_per_event / self.p.host.core_rate()
    }

    /// Samples instance `i` produces in quantum `q` (uniform grid split).
    fn samples_in_quantum(&self, instance: usize, q: usize) -> u64 {
        let total = self.trace.samples_per_instance;
        let quanta = self.trace.quanta as u64;
        // Distribute `total` samples over `quanta` quanta as evenly as the
        // integer grid allows (first quanta carry the remainder).
        let base = total / quanta;
        let extra = total % quanta;
        let _ = instance;
        base + u64::from((q as u64) < extra)
    }

    /// Cores currently taken from the shared pool (only meaningful when
    /// stages are not dedicated).
    fn pool_busy(&self) -> usize {
        self.sim_busy + usize::from(self.align_busy) + self.stat_busy
    }

    fn pool_capacity(&self) -> usize {
        self.p.pool_cores.unwrap_or(self.p.sim_workers)
    }

    fn pool_has_core(&self) -> bool {
        self.p.dedicated_stages || self.pool_busy() < self.pool_capacity()
    }

    fn try_start_all(&mut self, sched: &mut Scheduler<Ev>) {
        // Analysis stages get priority on the shared pool: draining the
        // stream keeps the pipeline's memory footprint bounded, which is
        // how the real scheduler behaves under backpressure.
        self.try_start_align(sched);
        self.try_start_stat(sched);
        self.try_start_sim(sched);
    }

    fn try_start_sim(&mut self, sched: &mut Scheduler<Ev>) {
        while self.sim_busy < self.p.sim_workers && self.pool_has_core_for_sim() {
            let Some(instance) = self.ready.pop_front() else {
                break;
            };
            let service = self.quantum_service(instance);
            self.sim_busy += 1;
            self.sim_busy_s += service;
            sched.schedule_in(service, Ev::Sim { instance });
        }
    }

    fn pool_has_core_for_sim(&self) -> bool {
        self.p.dedicated_stages || self.pool_busy() < self.pool_capacity()
    }

    fn try_start_align(&mut self, sched: &mut Scheduler<Ev>) {
        if self.align_busy || !self.pool_has_core() {
            return;
        }
        if let Some((_instance, samples)) = self.align_queue.front().copied() {
            let service =
                samples as f64 * self.p.costs.sec_per_aligned_sample / self.p.host.core_rate();
            self.align_busy = true;
            self.align_busy_s += service;
            sched.schedule_in(service, Ev::Align);
        }
    }

    fn try_start_stat(&mut self, sched: &mut Scheduler<Ev>) {
        while self.stat_busy < self.p.stat_engines && self.pool_has_core() {
            let Some(_cut) = self.stat_queue.pop_front() else {
                break;
            };
            let service = self.trace.instances as f64
                * self.p.values_per_sample as f64
                * self.p.costs.sec_per_stat_value
                / self.p.host.core_rate();
            self.stat_busy += 1;
            self.stat_busy_s += service;
            sched.schedule_in(service, Ev::Stat);
        }
    }
}

impl World for PipelineWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, _time: f64, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Sim { instance } => {
                self.sim_busy -= 1;
                let q = self.next_quantum[instance];
                let samples = self.samples_in_quantum(instance, q);
                self.next_quantum[instance] += 1;
                if self.next_quantum[instance] < self.trace.quanta {
                    // Feedback: reschedule the incomplete task.
                    self.ready.push_back(instance);
                }
                self.align_queue.push_back((instance, samples));
                self.try_start_all(sched);
            }
            Ev::Align => {
                self.align_busy = false;
                let (instance, samples) = self
                    .align_queue
                    .pop_front()
                    .expect("align completion without job");
                // Fill the instance's next `samples` cut slots.
                let start = self.samples_sent[instance] as usize;
                for k in start..start + samples as usize {
                    if k < self.cut_fill.len() {
                        self.cut_fill[k] += 1;
                    }
                }
                self.samples_sent[instance] += samples;
                // Emit newly complete cuts in order.
                while self.next_cut_to_check < self.cut_fill.len()
                    && self.cut_fill[self.next_cut_to_check] >= self.trace.instances
                {
                    self.stat_queue.push_back(self.next_cut_to_check);
                    self.next_cut_to_check += 1;
                }
                self.try_start_all(sched);
            }
            Ev::Stat => {
                self.stat_busy -= 1;
                self.cuts_done += 1;
                self.try_start_all(sched);
            }
        }
    }
}

/// Runs the pipeline model over a workload trace.
///
/// # Panics
///
/// Panics if the trace is empty or the parameters have zero workers.
pub fn simulate_multicore(trace: &WorkloadTrace, params: &MulticoreParams) -> PipelineOutcome {
    assert!(trace.instances > 0, "trace has no instances");
    assert!(
        params.sim_workers > 0,
        "need at least one simulation worker"
    );
    assert!(
        params.stat_engines > 0,
        "need at least one statistical engine"
    );
    let mut world = PipelineWorld::new(trace, params);
    // Fill all simulation cores with their first quantum; the event loop
    // takes over from there.
    let seed = bootstrap_initial_quanta(&mut world);
    let makespan = simulate(&mut world, seed);
    PipelineOutcome {
        makespan_s: makespan,
        sim_busy_s: world.sim_busy_s,
        align_busy_s: world.align_busy_s,
        stat_busy_s: world.stat_busy_s,
        cuts: world.cuts_done,
    }
}

/// Schedules the initial quantum completions (bootstrap).
fn bootstrap_initial_quanta(world: &mut PipelineWorld<'_>) -> Vec<(f64, Ev)> {
    let mut seed = Vec::new();
    while world.sim_busy < world.p.sim_workers {
        let Some(instance) = world.ready.pop_front() else {
            break;
        };
        let service = world.quantum_service(instance);
        world.sim_busy += 1;
        world.sim_busy_s += service;
        seed.push((service, Ev::Sim { instance }));
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> WorkloadTrace {
        WorkloadTrace::synthetic(64, 20, 200.0)
    }

    fn params(workers: usize, stats: usize) -> MulticoreParams {
        MulticoreParams::new(HostProfile::nehalem32(), workers, stats)
    }

    #[test]
    fn all_cuts_are_analysed() {
        let t = trace();
        let out = simulate_multicore(&t, &params(4, 1));
        assert_eq!(out.cuts, t.samples_per_instance);
    }

    #[test]
    fn more_workers_is_faster_up_to_saturation() {
        let t = trace();
        let t1 = simulate_multicore(&t, &params(1, 4)).makespan_s;
        let t4 = simulate_multicore(&t, &params(4, 4)).makespan_s;
        let t16 = simulate_multicore(&t, &params(16, 4)).makespan_s;
        assert!(t4 < t1 * 0.35, "t1 {t1} t4 {t4}");
        assert!(t16 < t4, "t4 {t4} t16 {t16}");
    }

    #[test]
    fn speedup_is_close_to_ideal_for_few_workers() {
        let t = trace();
        let out = simulate_multicore(&t, &params(4, 4));
        let s = out.speedup();
        assert!(s > 3.2 && s <= 4.2, "speedup {s}");
    }

    #[test]
    fn single_stat_engine_caps_large_ensembles() {
        // With many trajectories, analysis per cut ∝ instances; one stat
        // engine becomes the bottleneck while 4 push the knee out — the
        // Fig. 3 effect. A realistic sample density (Q/τ = 20) is needed
        // for the analysis stream to carry weight.
        let mut t = WorkloadTrace::synthetic(1024, 10, 30.0);
        t.samples_per_instance = 200;
        let one = simulate_multicore(&t, &params(24, 1));
        let four = simulate_multicore(&t, &params(24, 4));
        assert!(
            four.makespan_s < one.makespan_s * 0.85,
            "one {} four {}",
            one.makespan_s,
            four.makespan_s
        );
        assert!(four.speedup() > one.speedup());
    }

    #[test]
    fn sequential_time_dominates_any_parallel_makespan() {
        let t = trace();
        let out = simulate_multicore(&t, &params(8, 2));
        assert!(out.sequential_time_s() > out.makespan_s);
        assert!(out.speedup() > 1.0);
        // Speedup cannot exceed the used core count (sim + align + stat).
        assert!(out.speedup() <= (8 + 1 + 2) as f64 + 1e-9);
    }

    #[test]
    fn makespan_at_least_critical_path_of_one_instance() {
        let t = trace();
        let p = params(64, 8);
        let out = simulate_multicore(&t, &p);
        // The longest single instance cannot be split across cores.
        let longest: u64 = (0..t.instances as usize)
            .map(|i| t.events.iter().map(|row| row[i]).sum::<u64>())
            .max()
            .expect("non-empty");
        let floor = longest as f64 * p.costs.sec_per_event / p.host.core_rate();
        assert!(out.makespan_s >= floor * 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one simulation worker")]
    fn zero_workers_panics() {
        let t = trace();
        simulate_multicore(&t, &params(0, 1));
    }
}
