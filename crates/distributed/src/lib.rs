//! # distrt — the distributed CWC simulator: runtime and platform models
//!
//! Two complementary halves reproduce the paper's cluster/cloud port
//! (Aldinucci et al., ICDCS 2014, §IV-B and §V):
//!
//! **Functional** — [`wire`] (the explicit serialisation the distributed
//! pipeline adds around unchanged stages), [`emulation`] (a real
//! in-process deployment: remote farms receive task *parameters*, stream
//! encoded sample batches back, the analysis node decodes and runs the
//! standard alignment→windows→statistics pipeline; results are asserted
//! identical to local execution) and [`shard`] (the *multi-process*
//! deployment: one `cwc-shard` child OS process per shard, streaming
//! aligned partial cuts plus mergeable partial statistics back over
//! stdio as length-prefixed wire-v7 frames — bit-for-bit identical
//! analysis rows to the single-process runner). [`net`] lifts the same
//! protocol onto TCP: `cwc-workerd` daemons on real hosts serve shard
//! attempts behind a registration handshake, and the coordinator's
//! [`net::TcpShardTransport`] places (and, after a worker death,
//! *re*-places) slices across the surviving workers. [`fault`] is the
//! fault-injection harness for that deployment: an env-driven plan
//! (`CWC_SHARD_FAULT`) makes a chosen worker crash, stall, corrupt its
//! stream or start late, so the supervisor's recovery paths are
//! exercisable end-to-end with the real binary.
//!
//! **Performance** — [`platform`] (host/VM/network profiles of the paper's
//! testbeds), [`workload`] (event traces recorded from *real* engine runs
//! plus measured unit costs), [`multicore`] (DES of the Fig. 3 pipeline),
//! [`cluster`] (DES of the farm-of-pipelines over a network, Fig. 4) and
//! [`cloud`] (EC2 deployments, Figs. 5–6). See DESIGN.md §3 for why these
//! models substitute the paper's hardware and what they preserve.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cloud;
pub mod cluster;
pub mod emulation;
pub mod fault;
pub mod multicore;
pub mod net;
pub mod platform;
pub mod shard;
pub mod wire;
pub mod workload;

pub use cloud::{heterogeneous, heterogeneous_deployment, single_vm, virtual_cluster};
pub use cluster::{simulate_cluster, ClusterOutcome, ClusterParams};
pub use emulation::{run_distributed_emulation, EmulatedRun, EmulationError};
pub use fault::{FaultKind, FaultPlan, FAULT_ENV};
pub use multicore::{simulate_multicore, MulticoreParams, PipelineOutcome};
pub use net::{TcpShardTransport, WorkerDaemon, WorkerHello};
pub use platform::{HostProfile, NetworkProfile};
pub use shard::{
    run_simulation_sharded, run_simulation_sharded_steered, serve_shard, ProcessTransport,
};
pub use wire::{from_bytes, to_bytes, RemoteTaskSpec, Wire, WireError, WireReader};
pub use workload::{CostModel, WorkloadTrace};
