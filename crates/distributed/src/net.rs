//! The TCP shard transport: the farm spans real hosts.
//!
//! [`crate::shard`] runs every shard as a local child process; this
//! module speaks the *same* length-prefixed wire-v7 protocol over TCP
//! so shard attempts can land on remote machines running the
//! `cwc-workerd` daemon (repo root, `src/bin/cwc-workerd.rs`):
//!
//! ```text
//! worker ──▶ coordinator:   WorkerHello{protocol, capacity}
//! coordinator ──▶ worker:   Job(model + ShardSpec + deps) [Terminate]
//! worker ──▶ coordinator:   (Cut | Progress)* then End | Error
//! ```
//!
//! One TCP connection per shard *attempt*: the coordinator's
//! [`TcpShardTransport`] connects to a worker from its static registry
//! (`SimConfig::workers`), reads the worker's [`WorkerHello`]
//! (registration: protocol version + worker capacity — a version
//! mismatch or a malformed/silent peer is a typed error within
//! `SimConfig::connect_timeout`, never a hang), ships the job frame —
//! model, spec **and** the coordinator's pre-compiled [`ModelDeps`], so
//! a remote worker never recompiles the model — and then reads the
//! standard [`ToCoordinator`] stream back, feeding the supervisor's
//! [`ShardActivity`] watchdog clock exactly like the process transport.
//!
//! ## Requeue lands on a survivor
//!
//! The supervisor retries a failed slice by calling
//! [`launch_shard`](cwcsim::ShardTransport::launch_shard) again with a
//! bumped `attempt`; *where* the retry runs is this transport's
//! decision. Policy: a retried shard avoids the worker its previous
//! attempt ran on whenever another live candidate exists, and a worker
//! whose connection or handshake fails is marked dead and skipped for
//! the rest of the run — so when a worker dies mid-run, its slices are
//! requeued **onto surviving workers** (recorded in
//! [`placements`](TcpShardTransport::placements), which the
//! fault-tolerance tests assert on). Dead-worker failover happens
//! *inside* one `launch_shard` call, so an unreachable host does not
//! burn the slice's retry budget.
//!
//! ## Determinism
//!
//! Placement is invisible to the results: every trajectory's RNG stream
//! is a pure function of `(base_seed, instance)` and cuts are merged in
//! grid order, so the merged rows are bit-for-bit identical to the
//! single-process run for any shard count and any worker placement —
//! including a run where a worker died and its slice was replayed
//! elsewhere (`tests/tcp_agreement.rs` pins all of this).
//!
//! [`ModelDeps`]: gillespie::deps::ModelDeps
//! [`ShardActivity`]: cwcsim::coordinator::ShardActivity

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use cwc::model::Model;
use cwcsim::config::SimConfig;
use cwcsim::coordinator::{
    ShardActivity, ShardEnd, ShardError, ShardErrorKind, ShardFeed, ShardHandle, ShardMsg,
    ShardSpec, ShardTransport,
};
use cwcsim::sim_farm::Steering;
use gillespie::deps::ModelDeps;

use crate::shard::{
    read_frame, read_frame_at, serve_shard, write_frame, FrameError, ServeError, ShardJob,
    ToCoordinator, ToShard,
};
use crate::wire::{self, Wire, WireError, WireReader};

/// The exit status `cwc-workerd` dies with when an injected fault
/// fires, mirroring `cwc-shard` — distinct from genuine failures in CI
/// logs, and the whole-daemon death is the point: it forces the
/// supervisor to requeue the slice onto a *surviving* worker.
pub const FAULT_EXIT: i32 = 3;

/// The worker registration frame — first thing a `cwc-workerd` daemon
/// writes on every accepted connection (wire v7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHello {
    /// The wire protocol version the worker speaks; the coordinator
    /// refuses a worker whose version differs from its own
    /// [`wire::VERSION`] (typed error, no silent garbage).
    pub protocol: u16,
    /// How many shard attempts the worker is sized for (its core
    /// count by default) — advisory capacity metadata for placement.
    pub capacity: u64,
}

impl WorkerHello {
    /// A hello for the current protocol version.
    pub fn current(capacity: u64) -> Self {
        WorkerHello {
            protocol: wire::VERSION,
            capacity,
        }
    }
}

impl Wire for WorkerHello {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.protocol.encode(buf);
        self.capacity.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WorkerHello {
            protocol: u16::decode(r)?,
            capacity: u64::decode(r)?,
        })
    }
}

/// Why a connection + registration handshake with a worker failed.
/// Every variant is produced within a bounded time (the connect
/// timeout doubles as the per-read handshake deadline) — a silent or
/// hostile peer becomes a typed error, never a hang or a panic.
#[derive(Debug)]
pub enum HandshakeError {
    /// TCP resolution or connection failed.
    Connect(String),
    /// The worker's hello frame was malformed, truncated, oversized or
    /// never arrived (the frame error carries the byte offset where it
    /// pins one down).
    Frame(FrameError),
    /// The worker speaks a different protocol version.
    Protocol {
        /// The version the worker announced.
        got: u16,
        /// The version this coordinator speaks.
        want: u16,
    },
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Connect(m) => write!(f, "{m}"),
            HandshakeError::Frame(e) => write!(f, "handshake failed: {e}"),
            HandshakeError::Protocol { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: worker speaks v{got}, need v{want}"
                )
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Connects to a worker and performs the registration handshake:
/// resolve, connect within `timeout`, read the worker's
/// [`WorkerHello`] (with `timeout` as the per-read deadline, so a
/// peer that connects then goes silent is a typed error, not a hang)
/// and check the protocol version.
///
/// # Errors
///
/// [`HandshakeError::Connect`] when no resolved address accepts,
/// [`HandshakeError::Frame`] on a malformed/truncated/absent hello,
/// [`HandshakeError::Protocol`] on a version mismatch.
pub fn connect_worker(
    addr: &str,
    timeout: Duration,
) -> Result<(TcpStream, WorkerHello), HandshakeError> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| HandshakeError::Connect(format!("resolve {addr}: {e}")))?
        .collect();
    let mut last = HandshakeError::Connect(format!("{addr} resolved to no addresses"));
    for sa in addrs {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream
                    .set_read_timeout(Some(timeout))
                    .map_err(|e| HandshakeError::Frame(FrameError::Io(e)))?;
                let hello: WorkerHello = match read_frame(&mut &stream) {
                    Ok(Some(h)) => h,
                    Ok(None) => {
                        return Err(HandshakeError::Frame(FrameError::Truncated {
                            offset: 0,
                            detail: "connection closed before the hello frame".into(),
                        }))
                    }
                    Err(e) => return Err(HandshakeError::Frame(e)),
                };
                if hello.protocol != wire::VERSION {
                    return Err(HandshakeError::Protocol {
                        got: hello.protocol,
                        want: wire::VERSION,
                    });
                }
                return Ok((stream, hello));
            }
            Err(e) => last = HandshakeError::Connect(format!("connect {sa}: {e}")),
        }
    }
    Err(last)
}

/// The `cwc-workerd` daemon body: a TCP listener whose every accepted
/// connection is served on its own thread — hello frame out, then
/// [`serve_shard`] over the socket (the exact worker body `cwc-shard`
/// runs over stdio, fault-injection harness included).
#[derive(Debug)]
pub struct WorkerDaemon {
    listener: TcpListener,
    capacity: u64,
}

impl WorkerDaemon {
    /// Binds the daemon's listener. `addr` may use port 0 for an
    /// ephemeral port — read it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(addr: &str, capacity: u64) -> io::Result<Self> {
        Ok(WorkerDaemon {
            listener: TcpListener::bind(addr)?,
            capacity,
        })
    }

    /// The bound address (the real port when bound with port 0).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The accept loop: serves each connection on its own thread,
    /// forever. An injected fault fired while serving exits the whole
    /// process with [`FAULT_EXIT`] — daemon death, exactly what the
    /// requeue-onto-survivor path must recover from.
    ///
    /// # Errors
    ///
    /// Returns only when `accept` itself fails.
    pub fn run(&self) -> io::Result<()> {
        loop {
            let (stream, peer) = self.listener.accept()?;
            let capacity = self.capacity;
            std::thread::spawn(move || match serve_connection(stream, capacity) {
                Ok(()) => {}
                Err(e @ ServeError::Fault(_)) => {
                    eprintln!("cwc-workerd: {e}");
                    std::process::exit(FAULT_EXIT);
                }
                Err(e) => eprintln!("cwc-workerd: connection from {peer}: {e}"),
            });
        }
    }
}

/// Serves one accepted coordinator connection: writes the registration
/// hello, then hands the socket to [`serve_shard`].
///
/// # Errors
///
/// Returns [`ServeError`] exactly as `serve_shard` does, plus frame
/// I/O errors writing the hello.
pub fn serve_connection(stream: TcpStream, capacity: u64) -> Result<(), ServeError> {
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
    write_frame(&mut writer, &WorkerHello::current(capacity))
        .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
    serve_shard(stream, writer)
}

/// Where one shard attempt ran — the transport's placement record,
/// exposed so tests can assert the requeue-onto-survivor policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The shard whose slice was placed.
    pub shard: usize,
    /// The attempt number (0 = first launch).
    pub attempt: u32,
    /// Index into the transport's worker list.
    pub worker: usize,
}

#[derive(Debug)]
struct WorkerState {
    addr: String,
    alive: bool,
    hello: Option<WorkerHello>,
}

#[derive(Debug, Default)]
struct Registry {
    workers: Vec<WorkerState>,
    /// Last worker each shard ran on — what a retry avoids.
    last: HashMap<usize, usize>,
    placements: Vec<Placement>,
}

/// The network transport: every shard attempt is one TCP connection to
/// a `cwc-workerd` daemon from a static worker registry.
#[derive(Debug)]
pub struct TcpShardTransport {
    registry: Arc<Mutex<Registry>>,
    connect_timeout: Duration,
}

impl TcpShardTransport {
    /// A transport over an explicit worker list (`host:port` strings).
    pub fn new(workers: Vec<String>, connect_timeout: Duration) -> Self {
        TcpShardTransport {
            registry: Arc::new(Mutex::new(Registry {
                workers: workers
                    .into_iter()
                    .map(|addr| WorkerState {
                        addr,
                        alive: true,
                        hello: None,
                    })
                    .collect(),
                last: HashMap::new(),
                placements: Vec::new(),
            })),
            connect_timeout,
        }
    }

    /// A transport over `cfg.workers` with `cfg.connect_timeout`
    /// (falls back to 5 s if the timeout is not a valid duration —
    /// `SimConfig::validate` rejects such configs before any launch).
    pub fn from_config(cfg: &SimConfig) -> Self {
        let timeout =
            Duration::try_from_secs_f64(cfg.connect_timeout).unwrap_or(Duration::from_secs(5));
        Self::new(cfg.workers.clone(), timeout)
    }

    /// The worker addresses this transport was built over, in index
    /// order (the indices [`Placement::worker`] refers to).
    pub fn worker_addrs(&self) -> Vec<String> {
        let reg = self.registry.lock().expect("registry mutex");
        reg.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Indices of workers still considered alive (a worker is marked
    /// dead when a connection, handshake or job send to it fails).
    pub fn alive_workers(&self) -> Vec<usize> {
        let reg = self.registry.lock().expect("registry mutex");
        reg.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Every placement made so far, in launch order — one record per
    /// `(shard, attempt)` that reached a worker.
    pub fn placements(&self) -> Vec<Placement> {
        self.registry
            .lock()
            .expect("registry mutex")
            .placements
            .clone()
    }

    /// Picks the next candidate worker for `shard`: alive, not already
    /// tried in this launch call, and — when this is a retry with an
    /// alternative available — not the worker the previous attempt ran
    /// on. Deterministic (`shard % candidates`) so placement is
    /// reproducible run-to-run.
    fn pick(&self, shard: usize, attempt: u32, tried: &[usize]) -> Option<usize> {
        let reg = self.registry.lock().expect("registry mutex");
        let mut candidates: Vec<usize> = reg
            .workers
            .iter()
            .enumerate()
            .filter(|(i, w)| w.alive && !tried.contains(i))
            .map(|(i, _)| i)
            .collect();
        if attempt > 0 && candidates.len() > 1 {
            if let Some(&prev) = reg.last.get(&shard) {
                candidates.retain(|&i| i != prev);
            }
        }
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[shard % candidates.len()])
        }
    }
}

/// A socket reader that polls with a short OS read timeout so the
/// blocking read can be interrupted: cancellation flips `stop` (and
/// shuts the socket down) and the next poll returns clean EOF instead
/// of leaving a thread parked in `recv` forever. Timeouts themselves
/// are *not* errors here — the supervisor's watchdog owns stall
/// detection via the activity clock; this layer only keeps partial
/// frame reads intact across quiet stretches.
struct PatientStream {
    stream: TcpStream,
    stop: Arc<AtomicBool>,
}

impl Read for PatientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Acquire) {
                return Ok(0);
            }
            match (&self.stream).read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

impl ShardTransport for TcpShardTransport {
    /// Places `spec`'s attempt on a worker: candidate selection (shard
    /// `s` prefers worker `s mod live`, retries avoid the worker that
    /// just failed the shard), connect + hello handshake, job
    /// frame out, then a reader thread streaming the worker's frames
    /// into `sink` and its liveness into `activity` — the exact driver
    /// contract the process transport honours. A candidate whose
    /// connection, handshake or job send fails is marked dead and the
    /// next candidate is tried within the *same* call; only when every
    /// candidate is exhausted does the call fail (typed `Spawn`).
    #[allow(clippy::too_many_lines)]
    fn launch_shard(
        &mut self,
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        spec: &ShardSpec,
        steering: &Steering,
        sink: mpsc::SyncSender<ShardFeed>,
        activity: Arc<ShardActivity>,
    ) -> Result<ShardHandle, ShardError> {
        let shard = spec.range.shard;
        let mut tried: Vec<usize> = Vec::new();
        let mut failures: Vec<String> = Vec::new();
        loop {
            let Some(w) = self.pick(shard, spec.attempt, &tried) else {
                let detail = if failures.is_empty() {
                    "no live workers in the registry".to_string()
                } else {
                    failures.join("; ")
                };
                return Err(ShardError::new(
                    shard,
                    ShardErrorKind::Spawn(format!("no live worker accepted the shard: {detail}")),
                ));
            };
            tried.push(w);
            let addr = {
                let reg = self.registry.lock().expect("registry mutex");
                reg.workers[w].addr.clone()
            };

            // Connect + handshake, then drop to a short poll timeout:
            // reads stay interruptible (see PatientStream) without ever
            // erroring a quiet-but-healthy worker — stall detection is
            // the watchdog's job.
            let connected = connect_worker(&addr, self.connect_timeout).and_then(|(s, h)| {
                s.set_read_timeout(Some(Duration::from_millis(100)))
                    .map_err(|e| HandshakeError::Frame(FrameError::Io(e)))?;
                Ok((s, h))
            });
            let (stream, hello) = match connected {
                Ok(ok) => ok,
                Err(e) => {
                    self.registry.lock().expect("registry mutex").workers[w].alive = false;
                    failures.push(format!("worker {addr}: {e}"));
                    continue;
                }
            };

            // Ship the job — model, spec and the coordinator's one
            // dependency compilation — on a writable clone of the
            // socket (the clone then carries Terminate frames).
            let job = ShardJob {
                model: (*model).clone(),
                spec: spec.clone(),
                deps: Some((*deps).clone()),
            };
            let send = stream
                .try_clone()
                .map_err(FrameError::Io)
                .and_then(|mut wr| {
                    write_frame(&mut wr, &ToShard::Job(Box::new(job))).map_err(FrameError::Io)?;
                    Ok(wr)
                });
            let mut writer = match send {
                Ok(wr) => wr,
                Err(e) => {
                    self.registry.lock().expect("registry mutex").workers[w].alive = false;
                    failures.push(format!("worker {addr}: job send failed: {e}"));
                    continue;
                }
            };

            {
                let mut reg = self.registry.lock().expect("registry mutex");
                reg.workers[w].hello = Some(hello);
                reg.last.insert(shard, w);
                reg.placements.push(Placement {
                    shard,
                    attempt: spec.attempt,
                    worker: w,
                });
            }

            let stop = Arc::new(AtomicBool::new(false));
            let done = Arc::new(AtomicBool::new(false));

            // Steering watcher: forwards global termination as a
            // Terminate frame so the worker drains at the next quantum
            // boundaries, exactly like the process transport.
            {
                let steering = steering.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while !done.load(Ordering::Acquire) {
                        if steering.is_terminated() {
                            let _ = write_frame(&mut writer, &ToShard::Terminate);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                });
            }

            let cancel = {
                let stop = Arc::clone(&stop);
                let sock = stream.try_clone().ok();
                move || {
                    stop.store(true, Ordering::Release);
                    if let Some(s) = &sock {
                        let _ = s.shutdown(Shutdown::Both);
                    }
                }
            };

            let reader_registry = Arc::clone(&self.registry);
            let join = std::thread::spawn(move || {
                let mut input = PatientStream { stream, stop };
                let mut offset = 0u64;
                let result = loop {
                    let frame_start = offset;
                    match read_frame_at::<ToCoordinator>(&mut input, &mut offset) {
                        Ok(Some(ToCoordinator::Progress { .. })) => activity.touch(),
                        Ok(Some(ToCoordinator::Cut(cut))) => {
                            activity.touch();
                            activity.set_blocked(true);
                            let delivered = sink.send(ShardFeed::Msg(ShardMsg::Cut(cut))).is_ok();
                            activity.set_blocked(false);
                            if !delivered {
                                break Ok(()); // attempt cancelled / run over
                            }
                        }
                        Ok(Some(ToCoordinator::End { events, summary })) => {
                            activity.touch();
                            let _ = sink
                                .send(ShardFeed::Msg(ShardMsg::End(ShardEnd { events, summary })));
                            break Ok(());
                        }
                        Ok(Some(ToCoordinator::Error(msg))) => break Err(ShardErrorKind::Sim(msg)),
                        Ok(None) => {
                            break Err(ShardErrorKind::Crashed(format!(
                                "worker {addr} closed the connection before its \
                                 end-of-stream report"
                            )));
                        }
                        Err(e) => {
                            break Err(ShardErrorKind::Frame {
                                offset: e.offset().unwrap_or(frame_start),
                                detail: format!("worker {addr}: {e}"),
                            })
                        }
                    }
                };
                done.store(true, Ordering::Release);
                if let Err(kind) = result {
                    // The connection died mid-run: assume the worker is
                    // gone (a daemon that fault-exited certainly is) so
                    // the requeue prefers survivors even before its
                    // avoid-the-last-worker rule kicks in. Sim errors
                    // are the worker *telling* us something — it lives.
                    if !matches!(kind, ShardErrorKind::Sim(_)) {
                        reader_registry.lock().expect("registry mutex").workers[w].alive = false;
                    }
                    let _ = sink.send(ShardFeed::Failed(ShardError::new(shard, kind)));
                }
            });
            return Ok(ShardHandle::new(shard, join).with_cancel(cancel));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::MAX_FRAME_LEN;
    use biomodels::simple::decay;
    use cwcsim::coordinator::run_simulation_sharded_with;
    use cwcsim::runner::run_simulation;
    use std::io::Write as _;

    /// A hostile "worker": accepts one connection, runs `script` on it,
    /// then closes. Returns the address to dial.
    fn hostile(script: impl FnOnce(TcpStream) + Send + 'static) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                script(stream);
            }
        });
        addr
    }

    fn short() -> Duration {
        Duration::from_millis(300)
    }

    #[test]
    fn hello_roundtrips_and_pins_the_protocol_version() {
        let h = WorkerHello::current(8);
        assert_eq!(h.protocol, wire::VERSION);
        let back: WorkerHello = wire::from_bytes(&wire::to_bytes(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn garbage_hello_is_a_typed_frame_error() {
        // Bytes that are not even a plausible frame: the length prefix
        // is absurd, so the handshake dies on BadLength — typed, with
        // the offset of the corrupt prefix.
        let addr = hostile(|mut s| {
            let _ = s.write_all(b"\xFF\xFF\xFF\xFFutter garbage");
        });
        match connect_worker(&addr, short()) {
            Err(HandshakeError::Frame(e @ FrameError::BadLength { len, .. })) => {
                assert!(len > MAX_FRAME_LEN);
                assert_eq!(e.offset(), Some(0));
            }
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn truncated_hello_is_a_typed_frame_error_with_offset() {
        // A valid envelope cut off mid-payload.
        let addr = hostile(|mut s| {
            let bytes = wire::to_bytes(&WorkerHello::current(4));
            let _ = s.write_all(&u32::try_from(bytes.len()).unwrap().to_le_bytes());
            let _ = s.write_all(&bytes[..bytes.len() / 2]);
            // ...and the connection closes here.
        });
        match connect_worker(&addr, short()) {
            Err(HandshakeError::Frame(e @ FrameError::Truncated { .. })) => {
                assert_eq!(e.offset(), Some(0));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn immediate_close_is_a_typed_error_not_a_panic() {
        let addr = hostile(drop);
        match connect_worker(&addr, short()) {
            Err(HandshakeError::Frame(FrameError::Truncated { detail, .. })) => {
                assert!(detail.contains("before the hello"), "{detail}");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn stale_envelope_version_is_a_typed_wire_error() {
        // A wire-v6 worker: right magic, old envelope version. The
        // envelope check catches it before the hello payload is even
        // looked at.
        let addr = hostile(|mut s| {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&wire::MAGIC);
            6u16.encode(&mut bytes);
            WorkerHello {
                protocol: 6,
                capacity: 1,
            }
            .encode(&mut bytes);
            let _ = s.write_all(&u32::try_from(bytes.len()).unwrap().to_le_bytes());
            let _ = s.write_all(&bytes);
        });
        match connect_worker(&addr, short()) {
            Err(HandshakeError::Frame(FrameError::Wire(WireError::BadVersion(6)))) => {}
            other => panic!("expected BadVersion(6), got {other:?}"),
        }
    }

    #[test]
    fn hello_protocol_field_mismatch_is_a_typed_error() {
        // A current envelope whose *hello* announces a different
        // protocol (forward-compat probe): typed Protocol error.
        let addr = hostile(|mut s| {
            let _ = write_frame(
                &mut s,
                &WorkerHello {
                    protocol: wire::VERSION + 1,
                    capacity: 1,
                },
            );
        });
        match connect_worker(&addr, short()) {
            Err(HandshakeError::Protocol { got, want }) => {
                assert_eq!(got, wire::VERSION + 1);
                assert_eq!(want, wire::VERSION);
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
    }

    #[test]
    fn silent_peer_is_bounded_by_the_connect_timeout() {
        // Accepts, then says nothing. The handshake must give up within
        // (about) the configured timeout — never hang.
        let addr = hostile(|s| {
            std::thread::sleep(Duration::from_secs(5));
            drop(s);
        });
        let started = std::time::Instant::now();
        let err = connect_worker(&addr, short()).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "handshake took {:?}",
            started.elapsed()
        );
        assert!(
            matches!(err, HandshakeError::Frame(FrameError::Io(_))),
            "{err:?}"
        );
    }

    #[test]
    fn unreachable_worker_is_a_typed_connect_error() {
        // A listener we immediately drop: the port is (momentarily)
        // nothing, so connecting must fail fast and typed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match connect_worker(&addr, short()) {
            Err(HandshakeError::Connect(m)) => assert!(m.contains("connect"), "{m}"),
            other => panic!("expected Connect, got {other:?}"),
        }
    }

    #[test]
    fn launch_exhausts_dead_candidates_into_one_typed_spawn_error() {
        // Two dead addresses: launch_shard fails over internally, then
        // surfaces one Spawn error naming both failures — without
        // burning the supervisor's retry budget per dead host.
        let dead = |l: TcpListener| l.local_addr().unwrap().to_string();
        let workers = vec![
            dead(TcpListener::bind("127.0.0.1:0").unwrap()),
            dead(TcpListener::bind("127.0.0.1:0").unwrap()),
        ];
        let mut transport = TcpShardTransport::new(workers, short());
        let model = Arc::new(decay(5, 1.0));
        let deps = Arc::new(ModelDeps::compile(&model));
        let cfg = SimConfig::new(2, 1.0).quantum(0.5).sample_period(0.5);
        let spec = ShardSpec::from_config(
            &cfg,
            cwcsim::plan::ShardRange {
                shard: 0,
                first_instance: 0,
                count: 2,
            },
        );
        let (tx, _rx) = mpsc::sync_channel(4);
        let err = transport
            .launch_shard(
                model,
                deps,
                &spec,
                &Steering::new(),
                tx,
                ShardActivity::new(),
            )
            .unwrap_err();
        assert!(matches!(err.kind, ShardErrorKind::Spawn(_)), "{err}");
        assert!(err.to_string().contains("no live worker"), "{err}");
        assert!(transport.alive_workers().is_empty());
        assert!(transport.placements().is_empty());
    }

    #[test]
    fn loopback_daemon_run_matches_single_process_bit_for_bit() {
        // One in-process daemon, two shards over TCP: the merged rows
        // and summary must equal the single-process run exactly, and
        // both placements must be recorded against worker 0.
        let daemon = WorkerDaemon::bind("127.0.0.1:0", 2).unwrap();
        let addr = daemon.local_addr().unwrap().to_string();
        std::thread::spawn(move || daemon.run());

        let model = Arc::new(decay(30, 1.0));
        let cfg = SimConfig::new(6, 2.0)
            .quantum(0.5)
            .sample_period(0.25)
            .sim_workers(2)
            .seed(77);
        let single = run_simulation(Arc::clone(&model), &cfg).unwrap();

        let sharded_cfg = cfg
            .shards(2)
            .transport(cwcsim::TransportKind::Tcp)
            .workers(vec![addr]);
        let mut transport = TcpShardTransport::from_config(&sharded_cfg);
        let report = run_simulation_sharded_with(
            Arc::clone(&model),
            &sharded_cfg,
            &Steering::new(),
            &mut transport,
        )
        .unwrap();

        assert_eq!(report.rows, single.rows);
        assert_eq!(report.events, single.events);
        let placements = transport.placements();
        assert_eq!(placements.len(), 2);
        assert!(placements.iter().all(|p| p.worker == 0 && p.attempt == 0));
    }
}
