//! The real multi-process shard transport and the `cwc-shard` worker.
//!
//! `cwcsim::coordinator` defines the sharded farm's machinery behind the
//! `ShardTransport` seam and ships an in-process (thread) transport;
//! this module provides the production one: every shard is a real child
//! OS process running the `cwc-shard` worker binary (repo root,
//! `src/bin/cwc-shard.rs`), spoken to over stdio with length-prefixed
//! wire-v4 frames.
//!
//! ## Protocol
//!
//! Every frame is a `u32` little-endian byte length followed by that
//! many bytes of a standard enveloped wire-v4 message (magic, version,
//! payload — see [`crate::wire`]).
//!
//! ```text
//! coordinator ──stdin──▶ shard:   Job(model + ShardSpec) [Terminate]
//! shard ──stdout──▶ coordinator:  Cut* (grid order)  End{events, summary}
//!                                 | Error(message)
//! ```
//!
//! A shard that exits without `End` or `Error` is a crash; the
//! coordinator's reader surfaces it as a typed
//! [`ShardError`] (exit status and captured stderr
//! attached), never a hang. [`Steering::terminate`] reaches children as
//! a `Terminate` frame: each child's control thread flips its local
//! steering flag and the shard drains at the next quantum boundaries,
//! still ending with a well-formed `End` frame.
//!
//! [`Steering::terminate`]: cwcsim::Steering::terminate

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use cwc::model::Model;
use cwcsim::config::SimConfig;
use cwcsim::coordinator::{
    run_shard, run_simulation_sharded_with, InProcessTransport, ShardEnd, ShardError,
    ShardErrorKind, ShardHandle, ShardMsg, ShardSpec, ShardTransport,
};
use cwcsim::merge::RunSummary;
use cwcsim::plan::ShardPlan;
use cwcsim::runner::{SimError, SimReport};
use cwcsim::sim_farm::Steering;
use gillespie::trajectory::Cut;

use crate::wire::{self, Wire, WireError, WireReader};

/// Environment variable overriding the `cwc-shard` binary location.
pub const SHARD_BIN_ENV: &str = "CWC_SHARD_BIN";

/// Frames the coordinator sends to a shard (over its stdin).
#[derive(Debug, Clone)]
pub enum ToShard {
    /// The work assignment: the full model plus the shard's spec
    /// (boxed: a job dwarfs the terminate variant).
    Job(Box<ShardJob>),
    /// Steering termination: drain at the next quantum boundaries.
    Terminate,
}

/// A shard's work assignment.
#[derive(Debug, Clone)]
pub struct ShardJob {
    /// The model to simulate (shipped whole — shards accept arbitrary
    /// models, not just registry names).
    pub model: Model,
    /// The shard's slice and run parameters.
    pub spec: ShardSpec,
}

/// Frames a shard sends to the coordinator (over its stdout).
#[derive(Debug, Clone)]
pub enum ToCoordinator {
    /// An aligned partial cut over the shard's instances, in grid order.
    Cut(Cut),
    /// End of stream: the shard finished (or drained after termination).
    End {
        /// Reactions fired across the shard's trajectories.
        events: u64,
        /// The shard's mergeable partial statistics.
        summary: RunSummary,
    },
    /// The shard hit a simulation error (bad engine/model pairing, node
    /// panic); no further frames follow.
    Error(String),
}

impl Wire for ShardJob {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.model.encode(buf);
        self.spec.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardJob {
            model: Model::decode(r)?,
            spec: ShardSpec::decode(r)?,
        })
    }
}

/// Tag 0 = job, 1 = terminate.
impl Wire for ToShard {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ToShard::Job(job) => {
                buf.push(0);
                job.encode(buf);
            }
            ToShard::Terminate => buf.push(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ToShard::Job(Box::new(ShardJob::decode(r)?))),
            1 => Ok(ToShard::Terminate),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Tag 0 = cut, 1 = end, 2 = error.
impl Wire for ToCoordinator {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ToCoordinator::Cut(cut) => {
                buf.push(0);
                cut.encode(buf);
            }
            ToCoordinator::End { events, summary } => {
                buf.push(1);
                events.encode(buf);
                summary.encode(buf);
            }
            ToCoordinator::Error(msg) => {
                buf.push(2);
                msg.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ToCoordinator::Cut(Cut::decode(r)?)),
            1 => Ok(ToCoordinator::End {
                events: u64::decode(r)?,
                summary: RunSummary::decode(r)?,
            }),
            2 => Ok(ToCoordinator::Error(String::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Error reading or writing a length-prefixed frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (or hit EOF mid-frame).
    Io(io::Error),
    /// The frame's payload failed to decode.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Wire(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed enveloped frame and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error (e.g. `EPIPE` when the peer died).
pub fn write_frame<T: Wire>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let bytes = wire::to_bytes(value);
    w.write_all(
        &u32::try_from(bytes.len())
            .expect("frame fits u32")
            .to_le_bytes(),
    )?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Upper bound on a single frame's payload (a corrupt or hostile length
/// prefix must not trigger a multi-gigabyte allocation before the
/// payload is even read). Generous: the largest legitimate frames are a
/// whole model or a wide cut, both far below this.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// [`FrameError::Io`] on stream failure, EOF mid-frame or a length
/// prefix beyond [`MAX_FRAME_LEN`], [`FrameError::Wire`] on a malformed
/// payload.
pub fn read_frame<T: Wire>(r: &mut impl Read) -> Result<Option<T>, FrameError> {
    let mut len = [0u8; 4];
    // Distinguish clean EOF (no bytes of the next frame) from truncation.
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        )));
    }
    let len = len as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    wire::from_bytes(&payload)
        .map(Some)
        .map_err(FrameError::Wire)
}

/// Error from [`serve_shard`].
#[derive(Debug)]
pub enum ServeError {
    /// A frame could not be read or written.
    Frame(FrameError),
    /// The input stream violated the protocol (e.g. no leading job).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Frame(e) => write!(f, "{e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

/// The `cwc-shard` worker body: reads a [`ToShard::Job`] frame from
/// `input`, runs the shard's slice through the standard farm + alignment
/// pipeline, and streams [`ToCoordinator`] frames to `output`. Further
/// `input` frames are watched on a control thread so a `Terminate`
/// drains the shard at the next quantum boundaries (EOF on `input` just
/// ends the watching). A simulation error becomes a final
/// [`ToCoordinator::Error`] frame and `Ok(())` — the coordinator owns
/// the typed surfacing; `Err` is reserved for protocol/stream failures.
///
/// Takes any `Read`/`Write` pair, so tests can drive the full protocol
/// through in-memory buffers without spawning a process.
///
/// # Errors
///
/// Returns [`ServeError`] on a malformed input stream or when `output`
/// fails.
pub fn serve_shard<R, W>(mut input: R, mut output: W) -> Result<(), ServeError>
where
    R: Read + Send + 'static,
    W: Write,
{
    let job = match read_frame::<ToShard>(&mut input)? {
        Some(ToShard::Job(job)) => *job,
        Some(ToShard::Terminate) => {
            return Err(ServeError::Protocol("terminate before job".into()))
        }
        None => return Err(ServeError::Protocol("empty input stream".into())),
    };
    // Re-validate the shipped model before running anything (the wire
    // decoder only checks structure): an invalid model is a graceful
    // Error frame for the coordinator, not a worker panic.
    if let Err(e) = job.model.validate() {
        write_frame(
            &mut output,
            &ToCoordinator::Error(format!("invalid model: {e}")),
        )
        .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
        return Ok(());
    }

    // Control thread: later frames can only be Terminate (or EOF when the
    // coordinator has nothing more to say). Detached on purpose — it ends
    // with the input stream, at the latest when the process exits.
    let steering = Steering::new();
    let steer = steering.clone();
    std::thread::spawn(move || loop {
        match read_frame::<ToShard>(&mut input) {
            Ok(Some(ToShard::Terminate)) => steer.terminate(),
            Ok(Some(ToShard::Job(_))) => {} // duplicate job: ignore
            Ok(None) | Err(_) => break,
        }
    });

    let model = Arc::new(job.model);
    let mut write_err: Option<io::Error> = None;
    let write_steer = steering.clone();
    let result = run_shard(model, &job.spec, &steering, |msg| {
        if write_err.is_some() {
            return; // coordinator is gone; draining out
        }
        let frame = match msg {
            ShardMsg::Cut(cut) => ToCoordinator::Cut(cut),
            ShardMsg::End(ShardEnd { events, summary }) => ToCoordinator::End { events, summary },
        };
        if let Err(e) = write_frame(&mut output, &frame) {
            // Nobody is listening (EPIPE): stop simulating at the next
            // quantum boundaries instead of burning CPU to the horizon
            // as an orphan.
            write_err = Some(e);
            write_steer.terminate();
        }
    });
    if let Some(e) = write_err {
        return Err(ServeError::Frame(FrameError::Io(e)));
    }
    if let Err(e) = result {
        write_frame(&mut output, &ToCoordinator::Error(e.to_string()))
            .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
    }
    Ok(())
}

/// A shard child's stdin, shared between the steering watcher and the
/// launcher (None once deliberately closed).
type SharedStdin = Arc<Mutex<Option<ChildStdin>>>;

/// The multi-process transport: one `cwc-shard` child per shard.
#[derive(Debug)]
pub struct ProcessTransport {
    binary: PathBuf,
}

impl ProcessTransport {
    /// Resolves the worker binary — [`SHARD_BIN_ENV`] first, then
    /// `cwc-shard` next to the current executable (walking up through
    /// `examples/`/`deps/` build directories).
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] (kind `Spawn`) when no binary is found.
    pub fn new() -> Result<Self, ShardError> {
        Self::resolve_binary()
            .map(Self::with_binary)
            .ok_or(ShardError {
                shard: 0,
                kind: ShardErrorKind::Spawn(format!(
                    "cwc-shard worker binary not found (build it with \
                 `cargo build --bin cwc-shard` or set {SHARD_BIN_ENV})"
                )),
            })
    }

    /// Uses an explicit worker binary path (no resolution, no existence
    /// check — a bad path surfaces as a spawn failure at launch).
    pub fn with_binary(binary: impl Into<PathBuf>) -> Self {
        ProcessTransport {
            binary: binary.into(),
        }
    }

    /// The worker binary this transport spawns.
    pub fn binary(&self) -> &std::path::Path {
        &self.binary
    }

    fn resolve_binary() -> Option<PathBuf> {
        if let Ok(p) = std::env::var(SHARD_BIN_ENV) {
            let p = PathBuf::from(p);
            if p.is_file() {
                return Some(p);
            }
        }
        let name = format!("cwc-shard{}", std::env::consts::EXE_SUFFIX);
        let exe = std::env::current_exe().ok()?;
        let mut dir = exe.parent()?.to_path_buf();
        // target/{debug,release}[/deps|/examples]/<exe>: check siblings,
        // then up to two parent build directories.
        for _ in 0..3 {
            let candidate = dir.join(&name);
            if candidate.is_file() {
                return Some(candidate);
            }
            dir = dir.parent()?.to_path_buf();
        }
        None
    }

    /// Spawns and assigns one shard; returns the reader-thread handle.
    #[allow(clippy::too_many_lines)]
    fn launch_one(
        &self,
        job: &ShardJob,
        steering: &Steering,
        sink: mpsc::SyncSender<(usize, ShardMsg)>,
    ) -> Result<(ShardHandle, SharedStdin), ShardError> {
        let shard = job.spec.range.shard;
        let spawn_err = |m: String| ShardError {
            shard,
            kind: ShardErrorKind::Spawn(m),
        };
        let mut child: Child = Command::new(&self.binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| spawn_err(format!("{}: {e}", self.binary.display())))?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        write_frame(&mut stdin, &ToShard::Job(Box::new(job.clone())))
            .map_err(|e| spawn_err(format!("failed to send job: {e}")))?;
        // The stdin handle stays open (shared with the steering watcher)
        // so a Terminate frame can still reach the child mid-run.
        let stdin: SharedStdin = Arc::new(Mutex::new(Some(stdin)));
        let done = Arc::new(AtomicBool::new(false));

        // Drain stderr from the start: a child blocked on a full stderr
        // pipe would stop emitting stdout frames — the exact hang the
        // typed-error contract rules out. Only a bounded head is kept
        // for crash reports; the thread dies with the pipe.
        let stderr_buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let mut pipe = child.stderr.take().expect("piped stderr");
            let buf = Arc::clone(&stderr_buf);
            std::thread::spawn(move || {
                let mut chunk = [0u8; 4096];
                loop {
                    match pipe.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            let mut b = buf.lock().expect("stderr buffer mutex");
                            if b.len() < 64 * 1024 {
                                b.extend_from_slice(&chunk[..n]);
                            }
                        }
                    }
                }
            });
        }

        {
            let stdin = Arc::clone(&stdin);
            let done = Arc::clone(&done);
            let steering = steering.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if steering.is_terminated() {
                        if let Some(pipe) = stdin.lock().expect("stdin mutex").as_mut() {
                            let _ = write_frame(pipe, &ToShard::Terminate);
                        }
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        let reader_stdin = Arc::clone(&stdin);
        let join = std::thread::spawn(move || {
            let _hold_stdin = reader_stdin; // closed when the reader ends
            let mut out = child.stdout.take().expect("piped stdout");
            let result = loop {
                match read_frame::<ToCoordinator>(&mut out) {
                    Ok(Some(ToCoordinator::Cut(cut))) => {
                        let _ = sink.send((shard, ShardMsg::Cut(cut)));
                    }
                    Ok(Some(ToCoordinator::End { events, summary })) => {
                        let _ = sink.send((shard, ShardMsg::End(ShardEnd { events, summary })));
                        break Ok(());
                    }
                    Ok(Some(ToCoordinator::Error(msg))) => {
                        break Err(ShardErrorKind::Sim(msg));
                    }
                    Ok(None) => {
                        break Err(ShardErrorKind::Crashed(
                            "worker exited before its end-of-stream report".into(),
                        ));
                    }
                    Err(e) => break Err(ShardErrorKind::Crashed(format!("broken stream: {e}"))),
                }
            };
            done.store(true, Ordering::Release);
            // Reap the child; enrich failures with its status and stderr.
            let exit = child.wait();
            result.map_err(|kind| {
                let mut detail = match kind {
                    ShardErrorKind::Crashed(m) => m,
                    ShardErrorKind::Sim(m) => {
                        return ShardError {
                            shard,
                            kind: ShardErrorKind::Sim(m),
                        }
                    }
                    other => return ShardError { shard, kind: other },
                };
                if let Ok(status) = exit {
                    detail.push_str(&format!(" (exit: {status}"));
                    let stderr =
                        String::from_utf8_lossy(&stderr_buf.lock().expect("stderr buffer mutex"))
                            .into_owned();
                    let stderr = stderr.trim();
                    if !stderr.is_empty() {
                        let tail: String = stderr.chars().take(400).collect();
                        detail.push_str(&format!(", stderr: {tail}"));
                    }
                    detail.push(')');
                }
                ShardError {
                    shard,
                    kind: ShardErrorKind::Crashed(detail),
                }
            })
        });
        Ok((ShardHandle { shard, join }, stdin))
    }
}

impl ShardTransport for ProcessTransport {
    fn launch(
        &mut self,
        model: Arc<Model>,
        cfg: &SimConfig,
        plan: &ShardPlan,
        steering: &Steering,
        sink: mpsc::SyncSender<(usize, ShardMsg)>,
    ) -> Result<Vec<ShardHandle>, ShardError> {
        let mut handles = Vec::with_capacity(plan.len());
        let mut stdins = Vec::with_capacity(plan.len());
        for &range in plan.ranges() {
            let job = ShardJob {
                model: (*model).clone(),
                spec: ShardSpec::from_config(cfg, range),
            };
            match self.launch_one(&job, steering, sink.clone()) {
                Ok((handle, stdin)) => {
                    handles.push(handle);
                    stdins.push(stdin);
                }
                Err(e) => {
                    // Tear down what already started: ask the children to
                    // drain, then wait for their readers to finish.
                    for stdin in &stdins {
                        if let Some(pipe) = stdin.lock().expect("stdin mutex").as_mut() {
                            let _ = write_frame(pipe, &ToShard::Terminate);
                        }
                        *stdin.lock().expect("stdin mutex") = None;
                    }
                    for h in handles {
                        let _ = h.join.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(handles)
    }
}

/// Runs a sharded simulation with real `cwc-shard` child processes (one
/// per shard; `cfg.shards = 1` degenerates to a single in-process shard
/// with no child spawn) and merges the shards' partial cuts and
/// mergeable streaming statistics. Bit-for-bit identical [`StatRow`]s to
/// `cwcsim::run_simulation` for any shard count.
///
/// [`StatRow`]: cwcsim::StatRow
///
/// # Errors
///
/// Returns [`SimError`] on invalid input, a failed shard (typed
/// [`SimError::Shard`]) or a node panic.
pub fn run_simulation_sharded(model: Arc<Model>, cfg: &SimConfig) -> Result<SimReport, SimError> {
    run_simulation_sharded_steered(model, cfg, &Steering::new())
}

/// Like [`run_simulation_sharded`], controlled by a `Steering` handle:
/// termination reaches every child as a `Terminate` frame and the
/// drained report covers whatever completed across all shards.
///
/// # Errors
///
/// See [`run_simulation_sharded`].
pub fn run_simulation_sharded_steered(
    model: Arc<Model>,
    cfg: &SimConfig,
    steering: &Steering,
) -> Result<SimReport, SimError> {
    if cfg.shards <= 1 {
        return run_simulation_sharded_with(model, cfg, steering, &mut InProcessTransport);
    }
    let mut transport = ProcessTransport::new().map_err(SimError::Shard)?;
    run_simulation_sharded_with(model, cfg, steering, &mut transport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels::simple::decay;
    use std::io::Cursor;

    fn job(instances: u64, shard_count: u64, first: u64) -> ShardJob {
        let cfg = SimConfig::new(instances, 2.0)
            .quantum(0.5)
            .sample_period(0.25)
            .sim_workers(2)
            .seed(9);
        ShardJob {
            model: decay(30, 1.0),
            spec: ShardSpec::from_config(
                &cfg,
                cwcsim::plan::ShardRange {
                    shard: 0,
                    first_instance: first,
                    count: shard_count,
                },
            ),
        }
    }

    fn frames_from(output: &[u8]) -> Vec<ToCoordinator> {
        let mut cur = Cursor::new(output.to_vec());
        let mut frames = Vec::new();
        while let Some(f) = read_frame::<ToCoordinator>(&mut cur).expect("well-formed output") {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn shard_job_roundtrips() {
        let j = job(8, 3, 2);
        let bytes = wire::to_bytes(&ToShard::Job(Box::new(j.clone())));
        match wire::from_bytes::<ToShard>(&bytes).unwrap() {
            ToShard::Job(back) => {
                assert_eq!(back.spec, j.spec);
                assert_eq!(back.model.rules, j.model.rules);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_shard_streams_cuts_then_end_over_in_memory_pipes() {
        let j = job(4, 2, 1);
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j.clone()))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();

        let frames = frames_from(&output);
        // Grid 0, 0.25, ..., 2.0 = 9 cuts, then End.
        assert_eq!(frames.len(), 10);
        let mut times = Vec::new();
        for f in &frames[..9] {
            match f {
                ToCoordinator::Cut(c) => {
                    assert_eq!(c.values.len(), 2, "partial cut spans the slice");
                    times.push(c.time);
                }
                other => panic!("expected cut, got {other:?}"),
            }
        }
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        match &frames[9] {
            ToCoordinator::End { events, summary } => {
                assert!(*events > 0);
                assert_eq!(summary.cuts(), 9);
                assert_eq!(summary.observables()[0].running.count(), 18);
            }
            other => panic!("expected end, got {other:?}"),
        }
    }

    #[test]
    fn serve_shard_reports_simulation_errors_as_error_frames() {
        let mut j = job(2, 2, 0);
        // Tau-leaping a compartment model is a worker-side sim error.
        j.model = biomodels::cell_transport(biomodels::CellTransportParams::default());
        j.spec.engine = gillespie::engine::EngineKind::TauLeap { tau: 0.1 };
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        assert_eq!(frames.len(), 1);
        assert!(
            matches!(&frames[0], ToCoordinator::Error(m) if m.contains('`')),
            "{frames:?}"
        );
    }

    #[test]
    fn serve_shard_reports_invalid_models_as_error_frames() {
        let mut j = job(2, 2, 0);
        j.model = cwc::model::Model::new("empty"); // no rules: fails validate
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        assert_eq!(frames.len(), 1);
        assert!(
            matches!(&frames[0], ToCoordinator::Error(m) if m.contains("invalid model")),
            "{frames:?}"
        );
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_before_allocation() {
        // A 4-byte length prefix claiming 3GiB must error out, not OOM.
        let mut bytes = (3u32 * 1024 * 1024 * 1024).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let err = read_frame::<ToShard>(&mut Cursor::new(bytes)).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn serve_shard_rejects_streams_without_a_job() {
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Terminate).unwrap();
        let err = serve_shard(Cursor::new(input), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("terminate before job"), "{err}");
        let err = serve_shard(Cursor::new(Vec::new()), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("empty input"), "{err}");
    }

    #[test]
    fn terminate_frame_before_work_drains_to_a_clean_end() {
        let j = job(4, 4, 0);
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        write_frame(&mut input, &ToShard::Terminate).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        // However much was simulated before the flag was seen, the stream
        // stays well-formed and ends with End.
        assert!(matches!(
            frames.last().expect("at least End"),
            ToCoordinator::End { .. }
        ));
    }

    #[test]
    fn missing_worker_binary_is_a_typed_spawn_error() {
        let mut transport = ProcessTransport::with_binary("/nonexistent/cwc-shard-binary");
        let model = Arc::new(decay(10, 1.0));
        let cfg = SimConfig::new(4, 1.0)
            .quantum(0.5)
            .sample_period(0.25)
            .shards(2);
        let err =
            run_simulation_sharded_with(model, &cfg, &Steering::new(), &mut transport).unwrap_err();
        match err {
            SimError::Shard(e) => {
                assert!(matches!(e.kind, ShardErrorKind::Spawn(_)), "{e}");
            }
            other => panic!("expected shard error, got {other}"),
        }
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ToShard::Terminate).unwrap();
        // Clean EOF after one frame.
        let mut cur = Cursor::new(buf.clone());
        assert!(read_frame::<ToShard>(&mut cur).unwrap().is_some());
        assert!(read_frame::<ToShard>(&mut cur).unwrap().is_none());
        // Truncation inside the frame is an error.
        let mut cur = Cursor::new(buf[..buf.len() - 1].to_vec());
        assert!(read_frame::<ToShard>(&mut cur).is_err());
    }
}
