//! The real multi-process shard transport and the `cwc-shard` worker.
//!
//! `cwcsim::coordinator` defines the sharded farm's machinery behind the
//! `ShardTransport` seam and ships an in-process (thread) transport;
//! this module provides the production one: every shard is a real child
//! OS process running the `cwc-shard` worker binary (repo root,
//! `src/bin/cwc-shard.rs`), spoken to over stdio with length-prefixed
//! wire-v7 frames. The same worker body ([`serve_shard`]) also serves
//! TCP connections in the `cwc-workerd` network daemon (see
//! [`crate::net`]) — the protocol below is transport-agnostic.
//!
//! ## Protocol
//!
//! Every frame is a `u32` little-endian byte length followed by that
//! many bytes of a standard enveloped wire-v7 message (magic, version,
//! payload — see [`crate::wire`]).
//!
//! ```text
//! coordinator ──stdin──▶ shard:   Job(model + ShardSpec + deps) [Terminate]
//! shard ──stdout──▶ coordinator:  (Cut | Progress)* (cuts in grid order)
//!                                 End{events, summary} | Error(message)
//! ```
//!
//! The job carries the model's pre-compiled dependency graph
//! ([`ModelDeps`], wire v7): the coordinator compiles once per run and
//! every shard attempt — local child or remote daemon — reuses it, so
//! a requeued slice never pays a recompile.
//!
//! `Progress` frames are heartbeats, emitted every
//! `ShardSpec::heartbeat_period` seconds from a side thread: the reader
//! feeds them to the supervisor's [`ShardActivity`] clock (they carry
//! the cut count purely as a diagnostic) so the watchdog can tell a
//! shard that is *slow* (heartbeats flowing, no cut yet) from one that
//! is *stalled* (no frame of any kind for `SimConfig::shard_timeout`).
//!
//! A shard that exits without `End` or `Error` is a crash; the
//! coordinator's reader surfaces it as a typed
//! [`ShardError`] (exit status and captured stderr
//! attached), never a hang. A truncated or length-corrupt frame becomes
//! [`ShardErrorKind::Frame`] with the byte offset of the offending
//! frame. Failures feed the shard supervisor
//! (`cwcsim::supervisor::ShardSupervisor`), which requeues the slice on
//! a fresh child within the configured retry budget — deterministic
//! per-instance seeding makes the replay bit-for-bit.
//! [`Steering::terminate`] reaches children as a `Terminate` frame:
//! each child's control thread flips its local steering flag and the
//! shard drains at the next quantum boundaries, still ending with a
//! well-formed `End` frame.
//!
//! ## Fault injection
//!
//! Every failure mode above can be injected on purpose via the
//! [`FAULT_ENV`](crate::fault::FAULT_ENV) environment variable on the
//! worker (see [`crate::fault`]): crash after k cuts, stall forever,
//! corrupt frame, garbage on stdout, delayed start. The harness lives
//! in [`serve_shard`] itself so the in-tree recovery tests and the CI
//! fault-injection smoke leg exercise the exact production code paths.
//!
//! [`Steering::terminate`]: cwcsim::Steering::terminate
//! [`ShardActivity`]: cwcsim::coordinator::ShardActivity

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cwc::model::Model;
use cwcsim::config::{SimConfig, TransportKind};
use cwcsim::coordinator::{
    run_shard, run_simulation_sharded_with, InProcessTransport, ShardActivity, ShardEnd,
    ShardError, ShardErrorKind, ShardFeed, ShardHandle, ShardMsg, ShardSpec, ShardTransport,
};
use cwcsim::merge::RunSummary;
use cwcsim::runner::{SimError, SimReport};
use cwcsim::sim_farm::Steering;
use gillespie::deps::ModelDeps;
use gillespie::trajectory::Cut;

use crate::fault::{FaultKind, FaultPlan};
use crate::wire::{self, Wire, WireError, WireReader};

/// Environment variable overriding the `cwc-shard` binary location.
pub const SHARD_BIN_ENV: &str = "CWC_SHARD_BIN";

/// Frames the coordinator sends to a shard (over its stdin).
#[derive(Debug, Clone)]
pub enum ToShard {
    /// The work assignment: the full model plus the shard's spec
    /// (boxed: a job dwarfs the terminate variant).
    Job(Box<ShardJob>),
    /// Steering termination: drain at the next quantum boundaries.
    Terminate,
}

/// A shard's work assignment.
#[derive(Debug, Clone)]
pub struct ShardJob {
    /// The model to simulate (shipped whole — shards accept arbitrary
    /// models, not just registry names).
    pub model: Model,
    /// The shard's slice and run parameters.
    pub spec: ShardSpec,
    /// The model's pre-compiled dependency graph (wire v7). When
    /// present the worker validates it against `model` and reuses it
    /// instead of recompiling per attempt — the coordinator compiles
    /// once and every shard, every retry, rides that one compilation.
    /// `None` keeps a worker self-sufficient (it compiles locally).
    pub deps: Option<ModelDeps>,
}

/// Frames a shard sends to the coordinator (over its stdout).
#[derive(Debug, Clone)]
pub enum ToCoordinator {
    /// An aligned partial cut over the shard's instances, in grid order.
    Cut(Cut),
    /// End of stream: the shard finished (or drained after termination).
    End {
        /// Reactions fired across the shard's trajectories.
        events: u64,
        /// The shard's mergeable partial statistics.
        summary: RunSummary,
    },
    /// The shard hit a simulation error (bad engine/model pairing, node
    /// panic); no further frames follow.
    Error(String),
    /// Heartbeat: the shard is alive and has written this many cuts so
    /// far. Emitted every `ShardSpec::heartbeat_period` seconds; the
    /// coordinator's reader feeds it to the watchdog's activity clock
    /// and never forwards it downstream.
    Progress {
        /// Cuts written so far (diagnostic only).
        cuts: u64,
    },
}

impl Wire for ShardJob {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.model.encode(buf);
        self.spec.encode(buf);
        self.deps.encode(buf);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardJob {
            model: Model::decode(r)?,
            spec: ShardSpec::decode(r)?,
            deps: Option::decode(r)?,
        })
    }
}

/// Tag 0 = job, 1 = terminate.
impl Wire for ToShard {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ToShard::Job(job) => {
                buf.push(0);
                job.encode(buf);
            }
            ToShard::Terminate => buf.push(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ToShard::Job(Box::new(ShardJob::decode(r)?))),
            1 => Ok(ToShard::Terminate),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Tag 0 = cut, 1 = end, 2 = error, 3 = progress (heartbeat, wire v6).
impl Wire for ToCoordinator {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ToCoordinator::Cut(cut) => {
                buf.push(0);
                cut.encode(buf);
            }
            ToCoordinator::End { events, summary } => {
                buf.push(1);
                events.encode(buf);
                summary.encode(buf);
            }
            ToCoordinator::Error(msg) => {
                buf.push(2);
                msg.encode(buf);
            }
            ToCoordinator::Progress { cuts } => {
                buf.push(3);
                cuts.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ToCoordinator::Cut(Cut::decode(r)?)),
            1 => Ok(ToCoordinator::End {
                events: u64::decode(r)?,
                summary: RunSummary::decode(r)?,
            }),
            2 => Ok(ToCoordinator::Error(String::decode(r)?)),
            3 => Ok(ToCoordinator::Progress {
                cuts: u64::decode(r)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Error reading or writing a length-prefixed frame. The
/// offset-carrying variants pinpoint *where* in the byte stream a frame
/// went bad — the coordinator turns them into
/// [`ShardErrorKind::Frame`] with the shard id attached.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The frame's payload failed to decode.
    Wire(WireError),
    /// The stream ended inside a frame (mid-length-prefix or
    /// mid-payload); `offset` is the byte position where the truncated
    /// frame started.
    Truncated {
        /// Byte offset of the truncated frame's first byte.
        offset: u64,
        /// Where inside the frame the stream gave out.
        detail: String,
    },
    /// A length prefix exceeded [`MAX_FRAME_LEN`] — a corrupt or
    /// hostile stream; `offset` is the byte position of the prefix.
    BadLength {
        /// Byte offset of the corrupt length prefix.
        offset: u64,
        /// The claimed payload length.
        len: u32,
    },
}

impl FrameError {
    /// The byte offset of the offending frame, when the error pins one
    /// down (truncation and length corruption do; generic I/O and
    /// payload-decode errors rely on the caller's own count).
    pub fn offset(&self) -> Option<u64> {
        match self {
            FrameError::Truncated { offset, .. } | FrameError::BadLength { offset, .. } => {
                Some(*offset)
            }
            FrameError::Io(_) | FrameError::Wire(_) => None,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Wire(e) => write!(f, "frame decode error: {e}"),
            FrameError::Truncated { detail, .. } => write!(f, "truncated frame: {detail}"),
            FrameError::BadLength { len, .. } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed enveloped frame and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error (e.g. `EPIPE` when the peer died).
pub fn write_frame<T: Wire>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let bytes = wire::to_bytes(value);
    w.write_all(
        &u32::try_from(bytes.len())
            .expect("frame fits u32")
            .to_le_bytes(),
    )?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Upper bound on a single frame's payload (a corrupt or hostile length
/// prefix must not trigger a multi-gigabyte allocation before the
/// payload is even read). Generous: the largest legitimate frames are a
/// whole model or a wide cut, both far below this.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// [`FrameError::Truncated`] on EOF mid-frame, [`FrameError::BadLength`]
/// on a length prefix beyond [`MAX_FRAME_LEN`], [`FrameError::Io`] on
/// other stream failures, [`FrameError::Wire`] on a malformed payload.
pub fn read_frame<T: Wire>(r: &mut impl Read) -> Result<Option<T>, FrameError> {
    read_frame_at(r, &mut 0)
}

/// Like [`read_frame`], tracking the stream position: `offset` is
/// advanced past each complete frame, so across calls it is the byte
/// offset of the next frame — and, on error, the offset baked into
/// [`FrameError::Truncated`]/[`FrameError::BadLength`] (or the failed
/// frame's start for the other variants, still in `offset`) locates the
/// corruption in the shard's output stream.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_at<T: Wire>(
    r: &mut impl Read,
    offset: &mut u64,
) -> Result<Option<T>, FrameError> {
    let at = *offset;
    let mut len = [0u8; 4];
    // Distinguish clean EOF (no bytes of the next frame) from truncation.
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Truncated {
                    offset: at,
                    detail: format!("EOF after {filled} of 4 length-prefix bytes"),
                })
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::BadLength { offset: at, len });
    }
    let len = len as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated {
                offset: at,
                detail: format!("EOF inside a {len}-byte payload"),
            }
        } else {
            FrameError::Io(e)
        }
    })?;
    *offset = at + 4 + len as u64;
    wire::from_bytes(&payload)
        .map(Some)
        .map_err(FrameError::Wire)
}

/// Error from [`serve_shard`].
#[derive(Debug)]
pub enum ServeError {
    /// A frame could not be read or written.
    Frame(FrameError),
    /// The input stream violated the protocol (e.g. no leading job).
    Protocol(String),
    /// An injected fault fired (see [`crate::fault`]); the worker binary
    /// exits with a distinct status so a harness-killed child is
    /// distinguishable from a genuine failure in CI logs.
    Fault(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Frame(e) => write!(f, "{e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Fault(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

/// The `cwc-shard` worker body: reads a [`ToShard::Job`] frame from
/// `input`, runs the shard's slice through the standard farm + alignment
/// pipeline, and streams [`ToCoordinator`] frames to `output` — cuts in
/// grid order, `Progress` heartbeats every `spec.heartbeat_period`
/// seconds from a side thread, and finally `End`. Further `input` frames
/// are watched on a control thread so a `Terminate` drains the shard at
/// the next quantum boundaries (EOF on `input` just ends the watching).
/// A simulation error becomes a final [`ToCoordinator::Error`] frame and
/// `Ok(())` — the coordinator owns the typed surfacing; `Err` is
/// reserved for protocol/stream failures and fired injected faults.
///
/// A [`FaultPlan`] targeting this shard/attempt (from
/// [`FAULT_ENV`](crate::fault::FAULT_ENV)) is honoured here — see
/// [`crate::fault`] for the failure modes. A fired `stall` fault never
/// returns: the worker goes silent and stays alive until killed, which
/// is exactly what the coordinator's watchdog must be able to handle.
///
/// Takes any `Read`/`Write` pair, so tests can drive the full protocol
/// through in-memory buffers without spawning a process.
///
/// # Errors
///
/// Returns [`ServeError`] on a malformed input stream, a malformed
/// fault plan, a fired (non-stall) fault, or when `output` fails.
pub fn serve_shard<R, W>(mut input: R, mut output: W) -> Result<(), ServeError>
where
    R: Read + Send + 'static,
    W: Write + Send,
{
    let job = match read_frame::<ToShard>(&mut input)? {
        Some(ToShard::Job(job)) => *job,
        Some(ToShard::Terminate) => {
            return Err(ServeError::Protocol("terminate before job".into()))
        }
        None => return Err(ServeError::Protocol("empty input stream".into())),
    };
    // Re-validate the shipped model before running anything (the wire
    // decoder only checks structure): an invalid model is a graceful
    // Error frame for the coordinator, not a worker panic.
    if let Err(e) = job.model.validate() {
        write_frame(
            &mut output,
            &ToCoordinator::Error(format!("invalid model: {e}")),
        )
        .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
        return Ok(());
    }
    // Resolve the dependency graph. Shipped deps (wire v7) are checked
    // against the model — a mismatched payload is a graceful Error
    // frame, like an invalid model — and reused as-is; only a job
    // without them pays a worker-side compile.
    let deps = match job.deps {
        Some(d) => match d.validate_for(&job.model) {
            Ok(()) => Arc::new(d),
            Err(e) => {
                write_frame(
                    &mut output,
                    &ToCoordinator::Error(format!("invalid model deps: {e}")),
                )
                .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
                return Ok(());
            }
        },
        None => Arc::new(ModelDeps::compile(&job.model)),
    };
    // Arm the fault-injection harness for this shard/attempt, if any.
    let fault = FaultPlan::from_env()
        .map_err(|e| ServeError::Protocol(format!("invalid fault plan: {e}")))?
        .filter(|p| p.applies(job.spec.range.shard as u64, job.spec.attempt));
    if let Some(p) = &fault {
        if p.kind == FaultKind::DelayStart {
            // Before the heartbeat thread exists: the delay is fully
            // silent, so a long enough one trips the watchdog on a
            // shard that never even started.
            std::thread::sleep(Duration::from_millis(p.ms));
        }
    }

    // Control thread: later frames can only be Terminate (or EOF when the
    // coordinator has nothing more to say). Detached on purpose — it ends
    // with the input stream, at the latest when the process exits.
    let steering = Steering::new();
    let steer = steering.clone();
    std::thread::spawn(move || loop {
        match read_frame::<ToShard>(&mut input) {
            Ok(Some(ToShard::Terminate)) => steer.terminate(),
            Ok(Some(ToShard::Job(_))) => {} // duplicate job: ignore
            Ok(None) | Err(_) => break,
        }
    });

    let model = Arc::new(job.model);
    // The heartbeat thread and the pipeline drain share the output
    // stream; frames are whole-frame atomic under this mutex.
    let output = Mutex::new(&mut output);
    let hb_stop = AtomicBool::new(false);
    let cuts_written = AtomicU64::new(0);
    let mut write_err: Option<io::Error> = None;
    let mut fired: Option<FaultKind> = None;
    let write_steer = steering.clone();

    let result = std::thread::scope(|scope| {
        scope.spawn(|| {
            let period = Duration::from_secs_f64(job.spec.heartbeat_period.max(1e-3));
            'beat: loop {
                let wake = Instant::now() + period;
                while Instant::now() < wake {
                    if hb_stop.load(Ordering::Acquire) {
                        break 'beat;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                let frame = ToCoordinator::Progress {
                    cuts: cuts_written.load(Ordering::Relaxed),
                };
                let mut out = output.lock().expect("output mutex");
                if write_frame(&mut *out, &frame).is_err() {
                    // The coordinator is gone; the main drain will hit
                    // the same error and wind down.
                    break;
                }
            }
        });

        let result = run_shard(model, Arc::clone(&deps), &job.spec, &steering, |msg| {
            if write_err.is_some() || fired.is_some() {
                return; // coordinator gone or fault fired; draining out
            }
            if let Some(p) = &fault {
                if p.kind != FaultKind::DelayStart && cuts_written.load(Ordering::Relaxed) >= p.cuts
                {
                    // Fire at this write instead of performing it.
                    fired = Some(p.kind);
                    let mut out = output.lock().expect("output mutex");
                    match p.kind {
                        // A frame-shaped lie: valid length prefix, garbage
                        // payload — decodes to BadMagic at the coordinator.
                        FaultKind::CorruptFrame => {
                            let _ = out.write_all(&16u32.to_le_bytes());
                            let _ = out.write_all(&[0xAB; 16]);
                            let _ = out.flush();
                        }
                        // Not even a frame: raw bytes whose "length
                        // prefix" is absurd.
                        FaultKind::Garbage => {
                            let _ = out.write_all(b"\xFF\xFF\xFF\xFFnot a frame at all");
                            let _ = out.flush();
                        }
                        // Crash and stall write nothing; a stall also
                        // silences the heartbeats — only the watchdog
                        // can catch it.
                        FaultKind::Crash | FaultKind::Stall | FaultKind::DelayStart => {}
                    }
                    if p.kind == FaultKind::Stall {
                        hb_stop.store(true, Ordering::Release);
                    }
                    // Finish the simulation quickly (and quietly).
                    write_steer.terminate();
                    return;
                }
            }
            let frame = match msg {
                ShardMsg::Cut(cut) => ToCoordinator::Cut(cut),
                ShardMsg::End(ShardEnd { events, summary }) => {
                    ToCoordinator::End { events, summary }
                }
            };
            let mut out = output.lock().expect("output mutex");
            if let Err(e) = write_frame(&mut *out, &frame) {
                // Nobody is listening (EPIPE): stop simulating at the next
                // quantum boundaries instead of burning CPU to the horizon
                // as an orphan.
                write_err = Some(e);
                write_steer.terminate();
            } else if matches!(frame, ToCoordinator::Cut(_)) {
                cuts_written.fetch_add(1, Ordering::Relaxed);
            }
        });
        hb_stop.store(true, Ordering::Release);
        result
    });

    if let Some(kind) = fired {
        if kind == FaultKind::Stall {
            // Stay alive, stay silent, forever: the coordinator's
            // watchdog (or a kill) is the only way out.
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        return Err(ServeError::Fault(kind.to_string()));
    }
    if let Some(e) = write_err {
        return Err(ServeError::Frame(FrameError::Io(e)));
    }
    if let Err(e) = result {
        let mut out = output.lock().expect("output mutex");
        write_frame(&mut *out, &ToCoordinator::Error(e.to_string()))
            .map_err(|e| ServeError::Frame(FrameError::Io(e)))?;
    }
    Ok(())
}

/// A shard child's stdin, shared between the steering watcher and the
/// launcher (None once deliberately closed).
type SharedStdin = Arc<Mutex<Option<ChildStdin>>>;

/// The multi-process transport: one `cwc-shard` child per shard
/// attempt. The supervisor calls [`ShardTransport::launch_shard`] again
/// on every requeue, so each child is single-use; cancellation closes
/// the child's stdin and kills the process (which unblocks the reader
/// thread at EOF).
#[derive(Debug)]
pub struct ProcessTransport {
    binary: PathBuf,
    env: Vec<(String, String)>,
}

impl ProcessTransport {
    /// Resolves the worker binary — [`SHARD_BIN_ENV`] first, then
    /// `cwc-shard` next to the current executable (walking up through
    /// `examples/`/`deps/` build directories).
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] (kind `Spawn`) when no binary is found.
    pub fn new() -> Result<Self, ShardError> {
        Self::resolve_binary()
            .map(Self::with_binary)
            .ok_or_else(|| {
                ShardError::new(
                    0,
                    ShardErrorKind::Spawn(format!(
                        "cwc-shard worker binary not found (build it with \
                 `cargo build --bin cwc-shard` or set {SHARD_BIN_ENV})"
                    )),
                )
            })
    }

    /// Uses an explicit worker binary path (no resolution, no existence
    /// check — a bad path surfaces as a spawn failure at launch).
    pub fn with_binary(binary: impl Into<PathBuf>) -> Self {
        ProcessTransport {
            binary: binary.into(),
            env: Vec::new(),
        }
    }

    /// Sets an environment variable on every child this transport
    /// spawns. This is how tests arm the fault-injection harness
    /// ([`crate::fault::FAULT_ENV`]) per-run without touching the test
    /// process's own environment (which other tests share).
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.push((key.into(), value.into()));
        self
    }

    /// The worker binary this transport spawns.
    pub fn binary(&self) -> &std::path::Path {
        &self.binary
    }

    fn resolve_binary() -> Option<PathBuf> {
        if let Ok(p) = std::env::var(SHARD_BIN_ENV) {
            let p = PathBuf::from(p);
            if p.is_file() {
                return Some(p);
            }
        }
        let name = format!("cwc-shard{}", std::env::consts::EXE_SUFFIX);
        let exe = std::env::current_exe().ok()?;
        let mut dir = exe.parent()?.to_path_buf();
        // target/{debug,release}[/deps|/examples]/<exe>: check siblings,
        // then up to two parent build directories.
        for _ in 0..3 {
            let candidate = dir.join(&name);
            if candidate.is_file() {
                return Some(candidate);
            }
            dir = dir.parent()?.to_path_buf();
        }
        None
    }
}

impl ShardTransport for ProcessTransport {
    /// Spawns one `cwc-shard` child for `spec`'s slice; the returned
    /// handle's reader thread streams its frames into `sink` and feeds
    /// the watchdog's `activity` clock (heartbeats included), and its
    /// cancel hook closes the child's stdin and kills the process.
    #[allow(clippy::too_many_lines)]
    fn launch_shard(
        &mut self,
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        spec: &ShardSpec,
        steering: &Steering,
        sink: mpsc::SyncSender<ShardFeed>,
        activity: Arc<ShardActivity>,
    ) -> Result<ShardHandle, ShardError> {
        let shard = spec.range.shard;
        let job = ShardJob {
            model: (*model).clone(),
            spec: spec.clone(),
            deps: Some((*deps).clone()),
        };
        let spawn_err = |m: String| ShardError::new(shard, ShardErrorKind::Spawn(m));
        let mut cmd = Command::new(&self.binary);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in &self.env {
            cmd.env(k, v);
        }
        let mut child: Child = cmd
            .spawn()
            .map_err(|e| spawn_err(format!("{}: {e}", self.binary.display())))?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let stderr_pipe = child.stderr.take().expect("piped stderr");
        if let Err(e) = write_frame(&mut stdin, &ToShard::Job(Box::new(job))) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(spawn_err(format!("failed to send job: {e}")));
        }
        // The stdin handle stays open (shared with the steering watcher)
        // so a Terminate frame can still reach the child mid-run.
        let stdin: SharedStdin = Arc::new(Mutex::new(Some(stdin)));
        // The child itself is shared with the cancel hook so a stalled
        // worker can be killed outright; the reader reaps it.
        let child = Arc::new(Mutex::new(Some(child)));
        let done = Arc::new(AtomicBool::new(false));
        // A failed Terminate write is not swallowed: it is recorded here
        // and attached to whatever error the reader surfaces, so a dead
        // pipe during steering stays visible.
        let terminate_note: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

        // Drain stderr from the start: a child blocked on a full stderr
        // pipe would stop emitting stdout frames — the exact hang the
        // typed-error contract rules out. Only a bounded head is kept
        // for crash reports; the thread dies with the pipe.
        let stderr_buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let mut pipe = stderr_pipe;
            let buf = Arc::clone(&stderr_buf);
            std::thread::spawn(move || {
                let mut chunk = [0u8; 4096];
                loop {
                    match pipe.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            let mut b = buf.lock().expect("stderr buffer mutex");
                            if b.len() < 64 * 1024 {
                                b.extend_from_slice(&chunk[..n]);
                            }
                        }
                    }
                }
            });
        }

        {
            let stdin = Arc::clone(&stdin);
            let done = Arc::clone(&done);
            let note = Arc::clone(&terminate_note);
            let steering = steering.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if steering.is_terminated() {
                        if let Some(pipe) = stdin.lock().expect("stdin mutex").as_mut() {
                            if let Err(e) = write_frame(pipe, &ToShard::Terminate) {
                                *note.lock().expect("terminate note mutex") =
                                    Some(format!("terminate frame write failed: {e}"));
                            }
                        }
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        let cancel = {
            let stdin = Arc::clone(&stdin);
            let child = Arc::clone(&child);
            move || {
                // Closing stdin first gives a healthy child a clean EOF;
                // the kill handles the unhealthy (stalled) one — and
                // unblocks the reader thread at stdout EOF either way.
                *stdin.lock().expect("stdin mutex") = None;
                if let Some(c) = child.lock().expect("child mutex").as_mut() {
                    let _ = c.kill();
                }
            }
        };

        let reader_stdin = Arc::clone(&stdin);
        let reader_child = Arc::clone(&child);
        let join = std::thread::spawn(move || {
            let _hold_stdin = reader_stdin; // closed when the reader ends
            let mut out = stdout;
            let mut offset = 0u64;
            let result = loop {
                let frame_start = offset;
                match read_frame_at::<ToCoordinator>(&mut out, &mut offset) {
                    Ok(Some(ToCoordinator::Progress { .. })) => {
                        // Heartbeat: liveness only, never forwarded.
                        activity.touch();
                    }
                    Ok(Some(ToCoordinator::Cut(cut))) => {
                        activity.touch();
                        // Blocking on the bounded channel is waiting on
                        // the *coordinator*, not the shard — exempt from
                        // the watchdog for the duration.
                        activity.set_blocked(true);
                        let delivered = sink.send(ShardFeed::Msg(ShardMsg::Cut(cut))).is_ok();
                        activity.set_blocked(false);
                        if !delivered {
                            break Ok(()); // attempt cancelled / run over
                        }
                    }
                    Ok(Some(ToCoordinator::End { events, summary })) => {
                        activity.touch();
                        let _ =
                            sink.send(ShardFeed::Msg(ShardMsg::End(ShardEnd { events, summary })));
                        break Ok(());
                    }
                    Ok(Some(ToCoordinator::Error(msg))) => {
                        break Err(ShardErrorKind::Sim(msg));
                    }
                    Ok(None) => {
                        break Err(ShardErrorKind::Crashed(
                            "worker exited before its end-of-stream report".into(),
                        ));
                    }
                    Err(e) => {
                        break Err(ShardErrorKind::Frame {
                            offset: e.offset().unwrap_or(frame_start),
                            detail: e.to_string(),
                        })
                    }
                }
            };
            done.store(true, Ordering::Release);
            // Reap the child; enrich failures with its status, stderr
            // and any recorded Terminate-write failure.
            let exit = match reader_child.lock().expect("child mutex").take() {
                Some(mut c) => {
                    // A child that stopped writing but never exits would
                    // turn wait() into the hang the typed-error contract
                    // rules out; after EOF the only reason to linger is a
                    // wedged child, so put it down first.
                    if result.is_err() {
                        let _ = c.kill();
                    }
                    Some(c.wait())
                }
                None => None,
            };
            if let Err(kind) = result {
                let kind = match kind {
                    ShardErrorKind::Sim(m) => ShardErrorKind::Sim(m),
                    ShardErrorKind::Crashed(m) => {
                        ShardErrorKind::Crashed(enrich(m, &exit, &stderr_buf, &terminate_note))
                    }
                    ShardErrorKind::Frame { offset, detail } => ShardErrorKind::Frame {
                        offset,
                        detail: enrich(detail, &exit, &stderr_buf, &terminate_note),
                    },
                    other => other,
                };
                let _ = sink.send(ShardFeed::Failed(ShardError::new(shard, kind)));
            }
        });
        Ok(ShardHandle::new(shard, join).with_cancel(cancel))
    }
}

/// Appends a child's exit status, captured-stderr tail and any recorded
/// Terminate-write failure to an error detail string.
fn enrich(
    mut detail: String,
    exit: &Option<io::Result<std::process::ExitStatus>>,
    stderr_buf: &Mutex<Vec<u8>>,
    terminate_note: &Mutex<Option<String>>,
) -> String {
    if let Some(Ok(status)) = exit {
        detail.push_str(&format!(" (exit: {status}"));
        let stderr =
            String::from_utf8_lossy(&stderr_buf.lock().expect("stderr buffer mutex")).into_owned();
        let stderr = stderr.trim();
        if !stderr.is_empty() {
            let tail: String = stderr.chars().take(400).collect();
            detail.push_str(&format!(", stderr: {tail}"));
        }
        detail.push(')');
    }
    if let Some(note) = terminate_note.lock().expect("terminate note mutex").take() {
        detail.push_str(&format!("; {note}"));
    }
    detail
}

/// Runs a sharded simulation with real `cwc-shard` child processes (one
/// per shard; `cfg.shards = 1` degenerates to a single in-process shard
/// with no child spawn) and merges the shards' partial cuts and
/// mergeable streaming statistics. Bit-for-bit identical [`StatRow`]s to
/// `cwcsim::run_simulation` for any shard count.
///
/// [`StatRow`]: cwcsim::StatRow
///
/// # Errors
///
/// Returns [`SimError`] on invalid input, a failed shard (typed
/// [`SimError::Shard`]) or a node panic.
pub fn run_simulation_sharded(model: Arc<Model>, cfg: &SimConfig) -> Result<SimReport, SimError> {
    run_simulation_sharded_steered(model, cfg, &Steering::new())
}

/// Like [`run_simulation_sharded`], controlled by a `Steering` handle:
/// termination reaches every child as a `Terminate` frame and the
/// drained report covers whatever completed across all shards.
///
/// # Errors
///
/// See [`run_simulation_sharded`].
pub fn run_simulation_sharded_steered(
    model: Arc<Model>,
    cfg: &SimConfig,
    steering: &Steering,
) -> Result<SimReport, SimError> {
    match cfg.transport {
        // A TCP farm is honoured even for one shard: the point of
        // selecting it is running the work on the listed workers.
        TransportKind::Tcp => {
            let mut transport = crate::net::TcpShardTransport::from_config(cfg);
            run_simulation_sharded_with(model, cfg, steering, &mut transport)
        }
        TransportKind::Process if cfg.shards <= 1 => {
            run_simulation_sharded_with(model, cfg, steering, &mut InProcessTransport)
        }
        TransportKind::Process => {
            let mut transport = ProcessTransport::new().map_err(SimError::Shard)?;
            run_simulation_sharded_with(model, cfg, steering, &mut transport)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels::simple::decay;
    use std::io::Cursor;

    fn job(instances: u64, shard_count: u64, first: u64) -> ShardJob {
        let cfg = SimConfig::new(instances, 2.0)
            .quantum(0.5)
            .sample_period(0.25)
            .sim_workers(2)
            .seed(9);
        ShardJob {
            model: decay(30, 1.0),
            spec: ShardSpec::from_config(
                &cfg,
                cwcsim::plan::ShardRange {
                    shard: 0,
                    first_instance: first,
                    count: shard_count,
                },
            ),
            deps: None,
        }
    }

    /// Decodes every frame in `output`, dropping `Progress` heartbeats:
    /// they are timing-dependent liveness signals, so counting them
    /// would make the exact-frame assertions below machine-speed flaky.
    fn frames_from(output: &[u8]) -> Vec<ToCoordinator> {
        let mut cur = Cursor::new(output.to_vec());
        let mut frames = Vec::new();
        while let Some(f) = read_frame::<ToCoordinator>(&mut cur).expect("well-formed output") {
            if !matches!(f, ToCoordinator::Progress { .. }) {
                frames.push(f);
            }
        }
        frames
    }

    #[test]
    fn shard_job_roundtrips() {
        let j = job(8, 3, 2);
        let bytes = wire::to_bytes(&ToShard::Job(Box::new(j.clone())));
        match wire::from_bytes::<ToShard>(&bytes).unwrap() {
            ToShard::Job(back) => {
                assert_eq!(back.spec, j.spec);
                assert_eq!(back.model.rules, j.model.rules);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_shard_streams_cuts_then_end_over_in_memory_pipes() {
        let j = job(4, 2, 1);
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j.clone()))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();

        let frames = frames_from(&output);
        // Grid 0, 0.25, ..., 2.0 = 9 cuts, then End.
        assert_eq!(frames.len(), 10);
        let mut times = Vec::new();
        for f in &frames[..9] {
            match f {
                ToCoordinator::Cut(c) => {
                    assert_eq!(c.values.len(), 2, "partial cut spans the slice");
                    times.push(c.time);
                }
                other => panic!("expected cut, got {other:?}"),
            }
        }
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        match &frames[9] {
            ToCoordinator::End { events, summary } => {
                assert!(*events > 0);
                assert_eq!(summary.cuts(), 9);
                assert_eq!(summary.observables()[0].running.count(), 18);
            }
            other => panic!("expected end, got {other:?}"),
        }
    }

    /// The PR-5 leftover, closed and pinned: a job that ships its
    /// compiled [`ModelDeps`] must be served with **zero** worker-side
    /// compilations — and produce byte-for-byte the same output stream
    /// as a job that makes the worker compile locally.
    #[test]
    fn shipped_deps_serve_without_recompiling_and_match_local_compile() {
        let j = job(4, 2, 1);
        let deps = ModelDeps::compile(&j.model);

        let serve = |job: ShardJob| {
            let mut input = Vec::new();
            write_frame(&mut input, &ToShard::Job(Box::new(job))).unwrap();
            let mut output = Vec::new();
            let before = ModelDeps::thread_compile_count();
            serve_shard(Cursor::new(input), &mut output).unwrap();
            (output, ModelDeps::thread_compile_count() - before)
        };

        let mut with_deps = j.clone();
        with_deps.deps = Some(deps);
        let (shipped_out, shipped_compiles) = serve(with_deps);
        let (local_out, local_compiles) = serve(j);

        // `serve_shard` runs the farm on worker threads, but the compile
        // happens on the serving thread itself — the counter sees it.
        assert_eq!(
            shipped_compiles, 0,
            "shipped deps must not be recompiled worker-side"
        );
        assert_eq!(local_compiles, 1, "a deps-less job compiles exactly once");

        // Identical behaviour either way, heartbeat timing aside.
        let a = frames_from(&shipped_out);
        let b = frames_from(&local_out);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(wire::to_bytes(x), wire::to_bytes(y), "frame diverged");
        }
    }

    /// A deps payload that does not fit the shipped model (here: deps
    /// compiled from a different model) is a graceful `Error` frame —
    /// the coordinator sees a typed, non-retryable sim failure, the
    /// worker never panics or simulates with a bogus dependency graph.
    #[test]
    fn mismatched_shipped_deps_become_an_error_frame() {
        let mut j = job(2, 2, 0);
        let other = biomodels::cell_transport(biomodels::CellTransportParams::default());
        j.deps = Some(ModelDeps::compile(&other));
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        assert_eq!(frames.len(), 1);
        assert!(
            matches!(&frames[0], ToCoordinator::Error(m) if m.contains("invalid model deps")),
            "{frames:?}"
        );
    }

    #[test]
    fn serve_shard_reports_simulation_errors_as_error_frames() {
        let mut j = job(2, 2, 0);
        // Tau-leaping a compartment model is a worker-side sim error.
        j.model = biomodels::cell_transport(biomodels::CellTransportParams::default());
        j.spec.engine = gillespie::engine::EngineKind::TauLeap { tau: 0.1 };
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        assert_eq!(frames.len(), 1);
        assert!(
            matches!(&frames[0], ToCoordinator::Error(m) if m.contains('`')),
            "{frames:?}"
        );
    }

    #[test]
    fn serve_shard_reports_invalid_models_as_error_frames() {
        let mut j = job(2, 2, 0);
        j.model = cwc::model::Model::new("empty"); // no rules: fails validate
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        assert_eq!(frames.len(), 1);
        assert!(
            matches!(&frames[0], ToCoordinator::Error(m) if m.contains("invalid model")),
            "{frames:?}"
        );
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_before_allocation() {
        // A 4-byte length prefix claiming 3GiB must error out, not OOM.
        let mut bytes = (3u32 * 1024 * 1024 * 1024).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let err = read_frame::<ToShard>(&mut Cursor::new(bytes)).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn serve_shard_rejects_streams_without_a_job() {
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Terminate).unwrap();
        let err = serve_shard(Cursor::new(input), Vec::new()).unwrap_err();
        assert!(err.to_string().contains("terminate before job"), "{err}");
        let err = serve_shard(Cursor::new(Vec::new()), Vec::new()).unwrap_err();
        assert!(err.to_string().contains("empty input"), "{err}");
    }

    #[test]
    fn terminate_frame_before_work_drains_to_a_clean_end() {
        let j = job(4, 4, 0);
        let mut input = Vec::new();
        write_frame(&mut input, &ToShard::Job(Box::new(j))).unwrap();
        write_frame(&mut input, &ToShard::Terminate).unwrap();
        let mut output = Vec::new();
        serve_shard(Cursor::new(input), &mut output).unwrap();
        let frames = frames_from(&output);
        // However much was simulated before the flag was seen, the stream
        // stays well-formed and ends with End.
        assert!(matches!(
            frames.last().expect("at least End"),
            ToCoordinator::End { .. }
        ));
    }

    #[test]
    fn missing_worker_binary_is_a_typed_spawn_error() {
        let mut transport = ProcessTransport::with_binary("/nonexistent/cwc-shard-binary");
        let model = Arc::new(decay(10, 1.0));
        let cfg = SimConfig::new(4, 1.0)
            .quantum(0.5)
            .sample_period(0.25)
            .shards(2);
        let err =
            run_simulation_sharded_with(model, &cfg, &Steering::new(), &mut transport).unwrap_err();
        match err {
            SimError::Shard(e) => {
                assert!(matches!(e.kind, ShardErrorKind::Spawn(_)), "{e}");
            }
            other => panic!("expected shard error, got {other}"),
        }
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ToShard::Terminate).unwrap();
        // Clean EOF after one frame.
        let mut cur = Cursor::new(buf.clone());
        assert!(read_frame::<ToShard>(&mut cur).unwrap().is_some());
        assert!(read_frame::<ToShard>(&mut cur).unwrap().is_none());
        // Truncation inside the frame is an error.
        let mut cur = Cursor::new(buf[..buf.len() - 1].to_vec());
        assert!(read_frame::<ToShard>(&mut cur).is_err());
    }

    #[test]
    fn read_frame_at_reports_the_byte_offset_of_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ToShard::Terminate).unwrap();
        let first_len = buf.len() as u64;
        write_frame(&mut buf, &ToShard::Terminate).unwrap();

        // Truncated payload in the second frame: the error carries the
        // offset of the frame that broke, not of the stream head.
        let mut cur = Cursor::new(buf[..buf.len() - 1].to_vec());
        let mut offset = 0;
        assert!(read_frame_at::<ToShard>(&mut cur, &mut offset)
            .unwrap()
            .is_some());
        assert_eq!(offset, first_len);
        let err = read_frame_at::<ToShard>(&mut cur, &mut offset).unwrap_err();
        assert_eq!(err.offset(), Some(first_len), "{err}");
        assert!(
            matches!(err, FrameError::Truncated { .. }),
            "payload truncation is typed: {err}"
        );

        // A ripped length prefix is typed the same way, offset intact.
        let mut cur = Cursor::new(vec![0x01, 0x02]);
        let mut offset = 7;
        let err = read_frame_at::<ToShard>(&mut cur, &mut offset).unwrap_err();
        assert_eq!(err.offset(), Some(7));
        assert!(err.to_string().contains("length-prefix"), "{err}");

        // An absurd length prefix is BadLength at the right offset.
        let mut bytes = (3u32 * 1024 * 1024 * 1024).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut offset = first_len;
        let err = read_frame_at::<ToShard>(&mut Cursor::new(bytes), &mut offset).unwrap_err();
        assert!(matches!(err, FrameError::BadLength { .. }), "{err}");
        assert_eq!(err.offset(), Some(first_len));
    }
}
