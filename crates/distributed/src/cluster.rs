//! Discrete-event model of the distributed CWC simulator.
//!
//! "The simulation pipeline was changed to a farm of simulation pipelines
//! that can be run on different platforms. Each farm receives simulation
//! parameters from the node in charge of the generation of simulation
//! tasks, and feeds the alignment of trajectories node with a stream of
//! results." (§IV-B)
//!
//! The model: every host runs a local farm of simulation engines over its
//! cores; instances are partitioned across hosts proportionally to host
//! capacity (parameters are shipped once — cheap). Each completed quantum
//! produces a sample batch that crosses the host's uplink (a serialised
//! link with latency, bandwidth and per-message overhead from the
//! [`NetworkProfile`]) to host 0, where the alignment thread and the farm
//! of statistical engines run, exactly as in the multicore model. Hosts
//! may be heterogeneous ([`HostProfile`] per host), which is how the
//! paper's EC2 + Nehalem + Sandy Bridge experiment (Fig. 6 bottom) is
//! deployed.

use std::collections::VecDeque;

use desim::{simulate, Scheduler, World};

use crate::platform::{HostProfile, NetworkProfile};
use crate::workload::{CostModel, WorkloadTrace};

/// Parameters of one cluster/cloud simulation.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Participating hosts; host 0 also runs alignment and analysis.
    pub hosts: Vec<HostProfile>,
    /// Interconnect between hosts (host 0's stages are reached through it).
    pub network: NetworkProfile,
    /// Statistical engines on host 0.
    pub stat_engines: usize,
    /// Measured unit costs on the reference core.
    pub costs: CostModel,
    /// Observable values per sample.
    pub values_per_sample: usize,
    /// Fixed scheduling overhead per dispatched quantum.
    pub dispatch_overhead_s: f64,
}

impl ClusterParams {
    /// A homogeneous cluster of `n` copies of `host` on `network`, with the
    /// paper's default of 4 statistical engines.
    pub fn homogeneous(n: usize, host: HostProfile, network: NetworkProfile) -> Self {
        ClusterParams {
            hosts: (0..n).map(|_| host.clone()).collect(),
            network,
            stat_engines: 4,
            costs: CostModel::nominal(),
            values_per_sample: 3,
            dispatch_overhead_s: 2e-6,
        }
    }

    /// Total cores across the deployment.
    pub fn total_cores(&self) -> usize {
        self.hosts.iter().map(|h| h.cores).sum()
    }
}

/// Timing outcome of the cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Wall-clock makespan.
    pub makespan_s: f64,
    /// Aggregate simulation busy time (normalised to reference-core
    /// seconds, i.e. the work a 1.0-speed core would need).
    pub sim_work_s: f64,
    /// Alignment busy time on host 0.
    pub align_busy_s: f64,
    /// Aggregate statistical-engine busy time on host 0.
    pub stat_busy_s: f64,
    /// Total time messages spent occupying uplinks.
    pub net_busy_s: f64,
    /// Messages shipped across the network.
    pub messages: u64,
    /// Cuts analysed.
    pub cuts: u64,
}

impl ClusterOutcome {
    /// Single-reference-core execution time of all work (speedup baseline
    /// "w.r.t. aggregated number of cores").
    pub fn sequential_time_s(&self) -> f64 {
        self.sim_work_s + self.align_busy_s + self.stat_busy_s
    }

    /// Speedup over the sequential single-core execution.
    pub fn speedup(&self) -> f64 {
        self.sequential_time_s() / self.makespan_s
    }
}

#[derive(Debug)]
enum Ev {
    SimDone { host: usize, instance: usize },
    LinkFree { host: usize },
    BatchArrives { samples: u64 },
    AlignDone,
    StatDone,
}

struct HostState {
    ready: VecDeque<usize>,
    busy: usize,
    link_queue: VecDeque<u64>, // samples per queued batch
    link_busy: bool,
}

struct ClusterWorld<'a> {
    trace: &'a WorkloadTrace,
    p: &'a ClusterParams,
    next_quantum: Vec<usize>,
    hosts: Vec<HostState>,
    align_queue: VecDeque<u64>,
    align_busy: bool,
    cut_fill: Vec<u64>,
    next_cut: usize,
    stat_queue: VecDeque<usize>,
    stat_busy: usize,
    cuts_done: u64,
    samples_sent: Vec<u64>,
    // accounting
    sim_work_s: f64,
    align_busy_s: f64,
    stat_busy_s: f64,
    net_busy_s: f64,
    messages: u64,
}

impl<'a> ClusterWorld<'a> {
    fn new(trace: &'a WorkloadTrace, p: &'a ClusterParams) -> Self {
        let n = trace.instances as usize;
        // Partition instances proportionally to host capacity.
        let capacities: Vec<f64> = p
            .hosts
            .iter()
            .map(|h| h.cores as f64 * h.core_rate())
            .collect();
        let total_cap: f64 = capacities.iter().sum();
        let mut owner = vec![0usize; n];
        let mut boundaries = Vec::with_capacity(p.hosts.len());
        let mut acc = 0.0;
        for c in &capacities {
            acc += c;
            boundaries.push((acc / total_cap * n as f64).round() as usize);
        }
        let mut lo = 0;
        for (h, &hi) in boundaries.iter().enumerate() {
            for slot in owner.iter_mut().take(hi.min(n)).skip(lo) {
                *slot = h;
            }
            lo = hi.min(n);
        }
        let hosts = p
            .hosts
            .iter()
            .enumerate()
            .map(|(h, _)| HostState {
                ready: (0..n).filter(|&i| owner[i] == h).collect(),
                busy: 0,
                link_queue: VecDeque::new(),
                link_busy: false,
            })
            .collect();
        let _ = &owner; // partition captured in per-host ready queues
        ClusterWorld {
            trace,
            p,
            next_quantum: vec![0; n],
            hosts,
            align_queue: VecDeque::new(),
            align_busy: false,
            cut_fill: vec![0; trace.samples_per_instance as usize],
            next_cut: 0,
            stat_queue: VecDeque::new(),
            stat_busy: 0,
            cuts_done: 0,
            samples_sent: vec![0; n],
            sim_work_s: 0.0,
            align_busy_s: 0.0,
            stat_busy_s: 0.0,
            net_busy_s: 0.0,
            messages: 0,
        }
    }

    fn samples_in_quantum(&self, q: usize) -> u64 {
        let total = self.trace.samples_per_instance;
        let quanta = self.trace.quanta as u64;
        total / quanta + u64::from((q as u64) < total % quanta)
    }

    fn try_start_sim(&mut self, host: usize, sched: &mut Scheduler<Ev>) {
        let profile = &self.p.hosts[host];
        while self.hosts[host].busy < profile.cores {
            let Some(instance) = self.hosts[host].ready.pop_front() else {
                break;
            };
            let q = self.next_quantum[instance];
            let events = self.trace.events[q][instance];
            let work = events as f64 * self.p.costs.sec_per_event;
            let service = self.p.dispatch_overhead_s + work / profile.core_rate();
            self.hosts[host].busy += 1;
            self.sim_work_s += work; // reference-core seconds
            sched.schedule_in(service, Ev::SimDone { host, instance });
        }
    }

    fn try_start_link(&mut self, host: usize, sched: &mut Scheduler<Ev>) {
        if self.hosts[host].link_busy {
            return;
        }
        let Some(&samples) = self.hosts[host].link_queue.front() else {
            return;
        };
        // Host 0's own batches use shared memory, not the network.
        let (occupancy, latency) = if host == 0 {
            let shm = NetworkProfile::shared_memory();
            (
                shm.per_message_s + self.trace.mean_batch_bytes / shm.bandwidth_bps,
                shm.latency_s,
            )
        } else {
            (
                self.p.network.per_message_s
                    + self.trace.mean_batch_bytes / self.p.network.bandwidth_bps,
                self.p.network.latency_s,
            )
        };
        self.hosts[host].link_busy = true;
        self.net_busy_s += occupancy;
        self.messages += 1;
        // The link frees after `occupancy`; the batch lands `latency` later.
        sched.schedule_in(occupancy, Ev::LinkFree { host });
        sched.schedule_in(occupancy + latency, Ev::BatchArrives { samples });
    }

    fn try_start_align(&mut self, sched: &mut Scheduler<Ev>) {
        if self.align_busy {
            return;
        }
        if let Some(&samples) = self.align_queue.front() {
            let service =
                samples as f64 * self.p.costs.sec_per_aligned_sample / self.p.hosts[0].core_rate();
            self.align_busy = true;
            self.align_busy_s += service;
            let _ = samples;
            sched.schedule_in(service, Ev::AlignDone);
        }
    }

    fn try_start_stat(&mut self, sched: &mut Scheduler<Ev>) {
        while self.stat_busy < self.p.stat_engines {
            if self.stat_queue.pop_front().is_none() {
                break;
            }
            let service = self.trace.instances as f64
                * self.p.values_per_sample as f64
                * self.p.costs.sec_per_stat_value
                / self.p.hosts[0].core_rate();
            self.stat_busy += 1;
            self.stat_busy_s += service;
            sched.schedule_in(service, Ev::StatDone);
        }
    }
}

/// The alignment stage needs to know which instance a batch belongs to;
/// since all instances march through the same uniform grid, tracking a
/// FIFO per arrival is equivalent — see `samples_sent` handling below.
impl World for ClusterWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, _time: f64, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::SimDone { host, instance } => {
                self.hosts[host].busy -= 1;
                let q = self.next_quantum[instance];
                let samples = self.samples_in_quantum(q);
                self.next_quantum[instance] += 1;
                if self.next_quantum[instance] < self.trace.quanta {
                    self.hosts[host].ready.push_back(instance);
                }
                // Cut slots are filled when the batch is aligned at host 0;
                // per-instance FIFO order on the link preserves the slot
                // mapping, so only the running total is tracked here.
                self.samples_sent[instance] += samples;
                self.hosts[host].link_queue.push_back(samples);
                self.try_start_sim(host, sched);
                self.try_start_link(host, sched);
            }
            Ev::LinkFree { host } => {
                self.hosts[host].link_busy = false;
                self.hosts[host].link_queue.pop_front();
                self.try_start_link(host, sched);
            }
            Ev::BatchArrives { samples } => {
                self.align_queue.push_back(samples);
                self.try_start_align(sched);
            }
            Ev::AlignDone => {
                self.align_busy = false;
                let samples = self.align_queue.pop_front().expect("align had a job");
                // Fill cut slots: with a uniform grid, each arriving batch
                // contributes one sample to `samples` consecutive cuts; the
                // earliest incomplete cuts fill first.
                let mut remaining = samples;
                let mut k = self.next_cut;
                while remaining > 0 && k < self.cut_fill.len() {
                    if self.cut_fill[k] < self.trace.instances {
                        self.cut_fill[k] += 1;
                        remaining -= 1;
                    }
                    k += 1;
                }
                while self.next_cut < self.cut_fill.len()
                    && self.cut_fill[self.next_cut] >= self.trace.instances
                {
                    self.stat_queue.push_back(self.next_cut);
                    self.next_cut += 1;
                }
                self.try_start_align(sched);
                self.try_start_stat(sched);
            }
            Ev::StatDone => {
                self.stat_busy -= 1;
                self.cuts_done += 1;
                self.try_start_stat(sched);
            }
        }
    }
}

/// Runs the cluster model over a workload trace.
///
/// # Panics
///
/// Panics on an empty host list or empty trace.
pub fn simulate_cluster(trace: &WorkloadTrace, params: &ClusterParams) -> ClusterOutcome {
    assert!(!params.hosts.is_empty(), "cluster needs at least one host");
    assert!(trace.instances > 0, "trace has no instances");
    assert!(
        params.stat_engines > 0,
        "need at least one statistical engine"
    );
    let mut world = ClusterWorld::new(trace, params);
    // Bootstrap every host's cores.
    let mut seed: Vec<(f64, Ev)> = Vec::new();
    for host in 0..params.hosts.len() {
        let profile = &params.hosts[host];
        while world.hosts[host].busy < profile.cores {
            let Some(instance) = world.hosts[host].ready.pop_front() else {
                break;
            };
            let q = world.next_quantum[instance];
            let events = trace.events[q][instance];
            let work = events as f64 * params.costs.sec_per_event;
            let service = params.dispatch_overhead_s + work / profile.core_rate();
            world.hosts[host].busy += 1;
            world.sim_work_s += work;
            seed.push((service, Ev::SimDone { host, instance }));
        }
    }
    let makespan = simulate(&mut world, seed);
    ClusterOutcome {
        makespan_s: makespan,
        sim_work_s: world.sim_work_s,
        align_busy_s: world.align_busy_s,
        stat_busy_s: world.stat_busy_s,
        net_busy_s: world.net_busy_s,
        messages: world.messages,
        cuts: world.cuts_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> WorkloadTrace {
        WorkloadTrace::synthetic(64, 16, 400.0)
    }

    fn cluster(n: usize, cores: usize, net: NetworkProfile) -> ClusterParams {
        ClusterParams::homogeneous(n, HostProfile::xeon12().with_cores(cores), net)
    }

    #[test]
    fn all_cuts_complete() {
        let t = trace();
        let out = simulate_cluster(&t, &cluster(2, 4, NetworkProfile::ipoib()));
        assert_eq!(out.cuts, t.samples_per_instance);
    }

    #[test]
    fn more_hosts_reduce_makespan() {
        let t = trace();
        let t1 = simulate_cluster(&t, &cluster(1, 4, NetworkProfile::ipoib())).makespan_s;
        let t4 = simulate_cluster(&t, &cluster(4, 4, NetworkProfile::ipoib())).makespan_s;
        let t8 = simulate_cluster(&t, &cluster(8, 4, NetworkProfile::ipoib())).makespan_s;
        assert!(t4 < t1 * 0.5, "t1 {t1} t4 {t4}");
        assert!(t8 < t4, "t4 {t4} t8 {t8}");
    }

    #[test]
    fn infiniband_beats_ethernet() {
        let t = WorkloadTrace {
            // Small batches, many messages: network-sensitive regime.
            mean_batch_bytes: 16_384.0,
            ..trace()
        };
        let ib = simulate_cluster(&t, &cluster(8, 12, NetworkProfile::ipoib()));
        let eth = simulate_cluster(&t, &cluster(8, 12, NetworkProfile::gigabit_ethernet()));
        assert!(
            ib.makespan_s <= eth.makespan_s,
            "IB {} vs Eth {}",
            ib.makespan_s,
            eth.makespan_s
        );
        assert!(ib.net_busy_s < eth.net_busy_s);
    }

    #[test]
    fn speedup_grows_with_aggregated_cores() {
        let t = trace();
        let s2 = simulate_cluster(&t, &cluster(1, 2, NetworkProfile::ipoib())).speedup();
        let s8 = simulate_cluster(&t, &cluster(4, 2, NetworkProfile::ipoib())).speedup();
        assert!(s8 > s2 * 2.0, "s2 {s2} s8 {s8}");
    }

    #[test]
    fn heterogeneous_deployment_uses_all_hosts() {
        let t = WorkloadTrace::synthetic(96, 16, 400.0);
        let params = ClusterParams {
            hosts: vec![
                HostProfile::ec2_quad(),
                HostProfile::nehalem32(),
                HostProfile::sandy_bridge16(),
            ],
            network: NetworkProfile::ec2(),
            stat_engines: 4,
            costs: CostModel::nominal(),
            values_per_sample: 3,
            dispatch_overhead_s: 2e-6,
        };
        let out = simulate_cluster(&t, &params);
        assert_eq!(out.cuts, t.samples_per_instance);
        // 52 cores total; decent parallelism expected.
        assert!(out.speedup() > 10.0, "speedup {}", out.speedup());
    }

    #[test]
    fn messages_counted_per_quantum_batch() {
        let t = WorkloadTrace::synthetic(8, 4, 50.0);
        let out = simulate_cluster(&t, &cluster(2, 2, NetworkProfile::ipoib()));
        // 8 instances × 4 quanta = 32 batches.
        assert_eq!(out.messages, 32);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_cluster_panics() {
        let t = trace();
        let params = ClusterParams {
            hosts: vec![],
            network: NetworkProfile::ipoib(),
            stat_engines: 1,
            costs: CostModel::nominal(),
            values_per_sample: 3,
            dispatch_overhead_s: 0.0,
        };
        simulate_cluster(&t, &params);
    }
}
