//! Workload traces and cost calibration for the platform models.
//!
//! The platform models (multicore/cluster/cloud/GPU) need two inputs:
//!
//! 1. **the workload shape** — how many SSA events each instance fires in
//!    each quantum. [`WorkloadTrace::record`] obtains it by *running the
//!    real engines*, so the heavy-tailed, autocorrelated imbalance the
//!    paper blames for divergence and load skew is authentic;
//! 2. **unit costs** — seconds per SSA event on the reference core and
//!    seconds per analysed value in the statistical engines, measured on
//!    this machine by [`CostModel::measure`].
//!
//! With those, a platform model's predicted time is `shape × unit cost ×
//! platform factors` — every substitution knob is explicit.

use std::sync::Arc;
use std::time::Instant;

use cwc::model::Model;
use cwcsim::engines::{StatEngineKind, StatEngineSet};
use cwcsim::task::SimTask;
use gillespie::trajectory::Cut;

use crate::wire;

/// Per-quantum, per-instance event counts plus message sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// `events[q][i]` = SSA events of instance `i` during quantum `q`.
    pub events: Vec<Vec<u64>>,
    /// Mean encoded size of one sample batch in bytes.
    pub mean_batch_bytes: f64,
    /// Samples per instance over the full run.
    pub samples_per_instance: u64,
    /// Number of instances.
    pub instances: u64,
    /// Number of quanta.
    pub quanta: usize,
}

impl WorkloadTrace {
    /// Records a trace by running `instances` real trajectories of `model`.
    ///
    /// The recorded event matrix is exactly what the real farm would
    /// execute (same seeds ⇒ same trajectories).
    pub fn record(
        model: Arc<Model>,
        instances: u64,
        base_seed: u64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Self {
        Self::record_with_burn_in(
            model,
            instances,
            base_seed,
            0.0,
            t_end,
            quantum,
            sample_period,
        )
    }

    /// Like [`record`](WorkloadTrace::record), but advances every instance
    /// by `burn_in` time units before recording starts.
    ///
    /// Burn-in matters for oscillatory models: trajectories started from a
    /// common initial state are phase-synchronised at first and decorrelate
    /// through stochastic phase diffusion. The paper's long cloud runs
    /// (96 simulated days) operate in the decorrelated regime, which is
    /// where thread divergence bites; a fresh-start trace would understate
    /// it.
    pub fn record_with_burn_in(
        model: Arc<Model>,
        instances: u64,
        base_seed: u64,
        burn_in: f64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Self {
        let quanta = (t_end / quantum).ceil() as usize;
        let mut events = vec![vec![0u64; instances as usize]; quanta];
        let mut total_bytes = 0usize;
        let mut batches = 0usize;
        let mut samples_per_instance = 0;
        for i in 0..instances {
            let mut task = SimTask::new(
                Arc::clone(&model),
                base_seed,
                i,
                burn_in + t_end,
                quantum,
                sample_period,
            );
            if burn_in > 0.0 {
                // Advance past the synchronised transient; samples produced
                // during burn-in are discarded.
                task.engine.run_until(burn_in);
                task.clock = gillespie::ssa::SampleClock::new(burn_in, sample_period);
            }
            let mut q = 0;
            let mut produced = 0u64;
            while !task.is_done() {
                let mut samples = Vec::new();
                let fired = task.run_quantum(&mut samples);
                if q < quanta {
                    events[q][i as usize] = fired;
                }
                produced += samples.len() as u64;
                let batch = cwcsim::task::SampleBatch {
                    instance: i,
                    samples,
                    events: fired,
                    finished: task.is_done(),
                };
                total_bytes += wire::encoded_size(&batch);
                batches += 1;
                q += 1;
            }
            samples_per_instance = produced;
        }
        WorkloadTrace {
            events,
            mean_batch_bytes: if batches == 0 {
                0.0
            } else {
                total_bytes as f64 / batches as f64
            },
            samples_per_instance,
            instances,
            quanta,
        }
    }

    /// Synthetic trace: an autocorrelated log-normal-ish event process, for
    /// fast tests and sweeps where running real engines is too slow.
    ///
    /// Instance intensity follows a deterministic per-instance level
    /// (spread over one decade) with a slow sinusoidal drift — matching
    /// the "random walks of simulation time" character without RNG.
    pub fn synthetic(instances: u64, quanta: usize, mean_events: f64) -> Self {
        let mut events = vec![vec![0u64; instances as usize]; quanta];
        for i in 0..instances as usize {
            // Spread levels over [0.3, 3] × mean with deterministic hash.
            let u = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0;
            let level = mean_events * (0.3 + 2.7 * u);
            for (q, row) in events.iter_mut().enumerate() {
                let phase = (q as f64 / 7.0 + u * std::f64::consts::TAU).sin() * 0.4 + 1.0;
                row[i] = (level * phase).round().max(1.0) as u64;
            }
        }
        WorkloadTrace {
            events,
            mean_batch_bytes: 512.0,
            samples_per_instance: quanta as u64,
            instances,
            quanta,
        }
    }

    /// Total events across all instances and quanta.
    pub fn total_events(&self) -> u64 {
        self.events.iter().flatten().sum()
    }

    /// Merges `factor` consecutive quanta into one (e.g. a τ-grained trace
    /// coarsened by 10 is exactly the workload of a Q = 10τ run, because
    /// the engine's pending-event preservation makes trajectories
    /// independent of quantum slicing).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn coarsen(&self, factor: usize) -> WorkloadTrace {
        assert!(factor > 0, "coarsening factor must be non-zero");
        let quanta = self.quanta.div_ceil(factor);
        let mut events = vec![vec![0u64; self.instances as usize]; quanta];
        for (q, row) in self.events.iter().enumerate() {
            let target = q / factor;
            for (i, e) in row.iter().enumerate() {
                events[target][i] += e;
            }
        }
        WorkloadTrace {
            events,
            // Fewer, proportionally bigger messages.
            mean_batch_bytes: self.mean_batch_bytes * factor as f64,
            samples_per_instance: self.samples_per_instance,
            instances: self.instances,
            quanta,
        }
    }

    /// Restricts the trace to the first `n` instances.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the recorded instance count.
    pub fn take_instances(&self, n: u64) -> WorkloadTrace {
        assert!(
            n <= self.instances,
            "cannot take more instances than recorded"
        );
        WorkloadTrace {
            events: self
                .events
                .iter()
                .map(|row| row[..n as usize].to_vec())
                .collect(),
            mean_batch_bytes: self.mean_batch_bytes,
            samples_per_instance: self.samples_per_instance,
            instances: n,
            quanta: self.quanta,
        }
    }
}

/// Measured unit costs on this machine's reference core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per SSA event (simulation).
    pub sec_per_event: f64,
    /// Seconds per analysed value (statistics, per instance per cut).
    pub sec_per_stat_value: f64,
    /// Seconds per sample handled by the alignment stage.
    pub sec_per_aligned_sample: f64,
}

impl CostModel {
    /// Measures costs by timing the real engine and analysis code.
    pub fn measure(model: Arc<Model>) -> CostModel {
        // Simulation cost: run one instance for a fixed event budget
        // (through the engine abstraction, one event per step on the
        // reference SSA integrator).
        let mut engine = gillespie::engine::EngineKind::Ssa
            .build(Arc::clone(&model), 12345, 0)
            .expect("SSA drives any model");
        let start = Instant::now();
        let mut fired = 0u64;
        while fired < 20_000 {
            match engine.step() {
                gillespie::engine::EngineStep::Advanced { events, .. } => fired += events,
                gillespie::engine::EngineStep::Exhausted => break,
            }
        }
        let sec_per_event = if fired == 0 {
            1e-6
        } else {
            start.elapsed().as_secs_f64() / fired as f64
        };

        // Statistics cost: analyse synthetic cuts of a known width with
        // the paper's full engine set (mean/variance, k-means, quantiles).
        let set = StatEngineSet::new(vec![
            StatEngineKind::MeanVariance,
            StatEngineKind::KMeans { k: 3 },
            StatEngineKind::Quantile { p: 0.5 },
        ]);
        let width = 512usize;
        let cut = Cut {
            time: 0.0,
            values: (0..width).map(|i| vec![i as u64, (i * 7) as u64]).collect(),
        };
        let reps = 200;
        let start = Instant::now();
        for _ in 0..reps {
            let row = set.analyse_cut(&cut);
            std::hint::black_box(row);
        }
        // Two observables per value row.
        let values = (reps * width * 2) as f64;
        let sec_per_stat_value = start.elapsed().as_secs_f64() / values;

        CostModel {
            sec_per_event,
            sec_per_stat_value,
            // Alignment moves one sample through a BTree slot: comparable
            // to a stat value touch.
            sec_per_aligned_sample: sec_per_stat_value,
        }
    }

    /// A fixed cost model for deterministic tests (1 µs/event, 50 ns/value).
    pub fn nominal() -> CostModel {
        CostModel {
            sec_per_event: 1e-6,
            sec_per_stat_value: 5e-8,
            sec_per_aligned_sample: 1e-7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels::simple::decay;

    #[test]
    fn recorded_trace_matches_real_event_totals() {
        let model = Arc::new(decay(50, 1.0));
        let trace = WorkloadTrace::record(Arc::clone(&model), 4, 7, 3.0, 0.5, 0.25);
        assert_eq!(trace.instances, 4);
        assert_eq!(trace.quanta, 6);
        // decay(50) fires at most 50 events per instance.
        let per_instance: Vec<u64> = (0..4)
            .map(|i| trace.events.iter().map(|row| row[i]).sum())
            .collect();
        assert!(per_instance.iter().all(|&e| e <= 50));
        assert!(trace.total_events() > 0);
        assert!(trace.mean_batch_bytes > 0.0);
        assert_eq!(trace.samples_per_instance, 13); // 0..=3.0 step 0.25
    }

    #[test]
    fn trace_is_deterministic_for_fixed_seed() {
        let model = Arc::new(decay(30, 1.0));
        let a = WorkloadTrace::record(Arc::clone(&model), 3, 5, 2.0, 0.5, 0.25);
        let b = WorkloadTrace::record(model, 3, 5, 2.0, 0.5, 0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn synthetic_trace_has_requested_shape() {
        let t = WorkloadTrace::synthetic(16, 10, 100.0);
        assert_eq!(t.events.len(), 10);
        assert_eq!(t.events[0].len(), 16);
        let total = t.total_events();
        let mean = total as f64 / 160.0;
        assert!((mean / 100.0 - 1.0).abs() < 0.8, "mean {mean}");
        // Imbalance across instances must exist (the whole point).
        let i_tot: Vec<u64> = (0..16)
            .map(|i| t.events.iter().map(|r| r[i]).sum())
            .collect();
        let min = *i_tot.iter().min().expect("non-empty");
        let max = *i_tot.iter().max().expect("non-empty");
        assert!(max > 2 * min, "no imbalance: {i_tot:?}");
    }

    #[test]
    fn coarsen_preserves_totals_and_merges_quanta() {
        let t = WorkloadTrace::synthetic(6, 10, 40.0);
        let c = t.coarsen(3);
        assert_eq!(c.quanta, 4); // ceil(10/3)
        assert_eq!(c.total_events(), t.total_events());
        assert_eq!(c.instances, t.instances);
        // First coarse quantum = sum of fine quanta 0..3.
        for i in 0..6 {
            let expect: u64 = (0..3).map(|q| t.events[q][i]).sum();
            assert_eq!(c.events[0][i], expect);
        }
    }

    #[test]
    fn coarsen_by_one_is_identity_on_events() {
        let t = WorkloadTrace::synthetic(4, 5, 20.0);
        let c = t.coarsen(1);
        assert_eq!(c.events, t.events);
    }

    #[test]
    fn take_instances_restricts_columns() {
        let t = WorkloadTrace::synthetic(8, 4, 10.0);
        let t2 = t.take_instances(3);
        assert_eq!(t2.instances, 3);
        assert_eq!(t2.events[0].len(), 3);
        assert_eq!(t2.events[0][..3], t.events[0][..3]);
    }

    #[test]
    fn measured_costs_are_positive_and_sane() {
        let model = Arc::new(decay(100_000, 1.0));
        let c = CostModel::measure(model);
        assert!(c.sec_per_event > 0.0 && c.sec_per_event < 1e-2);
        assert!(c.sec_per_stat_value > 0.0 && c.sec_per_stat_value < 1e-3);
        assert!(c.sec_per_aligned_sample > 0.0);
    }
}
