//! Cloud deployments: Amazon EC2 experiments of the paper (§V-B).
//!
//! "By considering an IaaS cloud platform as a virtual cluster of shared
//! memory multi-core platforms, the distributed CWC Simulator can be
//! easily fit to run on this kind of platforms." These helpers assemble
//! the corresponding [`ClusterParams`] deployments:
//!
//! - [`single_vm`]: one quad-core VM, varying usable cores (Fig. 5);
//! - [`virtual_cluster`]: eight quad-core VMs on the EC2 network (Fig. 6
//!   top);
//! - [`heterogeneous`]: EC2 VMs + the 32-core Nehalem + two 16-core Sandy
//!   Bridge workstations (Fig. 6 bottom).

use crate::cluster::{simulate_cluster, ClusterOutcome, ClusterParams};
use crate::multicore::{simulate_multicore, MulticoreParams, PipelineOutcome};
use crate::platform::{HostProfile, NetworkProfile};
use crate::workload::{CostModel, WorkloadTrace};

/// Fig. 5: the simulator inside a single quad-core VM using `cores` cores.
///
/// # Panics
///
/// Panics if `cores` is 0 or > 4.
pub fn single_vm(trace: &WorkloadTrace, cores: usize, costs: CostModel) -> PipelineOutcome {
    let host = HostProfile::ec2_quad().with_cores(cores);
    // Inside one VM every stage shares the same cores: simulation,
    // alignment and statistics compete, which is why the paper's speedup
    // tops out at 3.15 of 4.
    let mut p = MulticoreParams::new(host, cores, 1);
    p.costs = costs;
    p.dedicated_stages = false;
    p.pool_cores = Some(4); // the VM keeps its 4 cores regardless
    simulate_multicore(trace, &p)
}

/// Fig. 6 (top): a virtual cluster of `vms` quad-core EC2 VMs.
pub fn virtual_cluster(trace: &WorkloadTrace, vms: usize, costs: CostModel) -> ClusterOutcome {
    let mut p = ClusterParams::homogeneous(vms, HostProfile::ec2_quad(), NetworkProfile::ec2());
    p.costs = costs;
    simulate_cluster(trace, &p)
}

/// The paper's heterogeneous platform: `vms` quad-core EC2 VMs, one
/// 32-core Nehalem and two 16-core Sandy Bridge workstations — 96 cores
/// when `vms = 8`.
pub fn heterogeneous_deployment(vms: usize) -> Vec<HostProfile> {
    let mut hosts = Vec::with_capacity(vms + 3);
    for _ in 0..vms {
        hosts.push(HostProfile::ec2_quad());
    }
    hosts.push(HostProfile::nehalem32());
    hosts.push(HostProfile::sandy_bridge16());
    hosts.push(HostProfile::sandy_bridge16());
    hosts
}

/// Fig. 6 (bottom): runs the model on an explicit host list over the EC2
/// network.
pub fn heterogeneous(
    trace: &WorkloadTrace,
    hosts: Vec<HostProfile>,
    costs: CostModel,
) -> ClusterOutcome {
    let params = ClusterParams {
        hosts,
        network: NetworkProfile::ec2(),
        stat_engines: 4,
        costs,
        values_per_sample: 3,
        dispatch_overhead_s: 2e-6,
    };
    simulate_cluster(trace, &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> WorkloadTrace {
        WorkloadTrace::synthetic(128, 16, 300.0)
    }

    #[test]
    fn single_vm_speedup_is_sublinear_but_close() {
        // The paper reports 3.15 out of 4 ("not linear because of the
        // additional work done by the on-line alignment of trajectories").
        let t = trace();
        let costs = CostModel::nominal();
        let t1 = single_vm(&t, 1, costs).makespan_s;
        let t4 = single_vm(&t, 4, costs).makespan_s;
        let speedup = t1 / t4;
        assert!(
            speedup > 2.5 && speedup < 4.0,
            "4-core VM speedup {speedup}"
        );
    }

    #[test]
    fn virtual_cluster_scales_to_eight_vms() {
        let t = trace();
        let costs = CostModel::nominal();
        let s1 = virtual_cluster(&t, 1, costs);
        let s8 = virtual_cluster(&t, 8, costs);
        assert!(
            s8.makespan_s < s1.makespan_s / 4.0,
            "1 VM {} vs 8 VMs {}",
            s1.makespan_s,
            s8.makespan_s
        );
        assert_eq!(s8.cuts, t.samples_per_instance);
    }

    #[test]
    fn heterogeneous_platform_has_96_cores() {
        let hosts = heterogeneous_deployment(8);
        let cores: usize = hosts.iter().map(|h| h.cores).sum();
        assert_eq!(cores, 8 * 4 + 32 + 16 + 16);
    }

    #[test]
    fn heterogeneous_beats_vms_alone() {
        let t = WorkloadTrace::synthetic(256, 16, 300.0);
        let costs = CostModel::nominal();
        let vms = virtual_cluster(&t, 8, costs);
        let het = heterogeneous(&t, heterogeneous_deployment(8), costs);
        assert!(
            het.makespan_s < vms.makespan_s,
            "het {} vs vms {}",
            het.makespan_s,
            vms.makespan_s
        );
        assert!(het.speedup() > vms.speedup());
    }
}
