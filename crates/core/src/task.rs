//! Stream message types of the simulation pipeline.
//!
//! "The first stage generates a number of independent simulation tasks,
//! each of them wrapped in a C++ object" — here, [`SimTask`]: the engine
//! state plus its sampling clock, shipped between the master and the farm
//! workers along the feedback cycle.
//!
//! A task is *engine-agnostic*: it wraps whichever [`Engine`] the run's
//! [`EngineKind`] built — exact direct method, first-reaction, fixed or
//! adaptive tau-leaping, or the hybrid SSA/tau engine — behind the same
//! advance-one-quantum contract, so the farm, the distributed emulation
//! and the GPGPU map schedule every integrator identically.

use std::sync::Arc;

use cwc::model::Model;
use gillespie::batch::BatchedSsaEngine;
use gillespie::deps::ModelDeps;
use gillespie::engine::{BatchEngine, Engine, EngineError, EngineKind};
use gillespie::ssa::SampleClock;

/// A simulation task: one trajectory's engine state and sampling clock.
///
/// The task object travels master → worker → (feedback) → master until its
/// engine reaches the time horizon.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// The stochastic engine (state, time, RNG — the whole instance).
    pub engine: Engine,
    /// Persistent τ-grid clock (survives quantum boundaries).
    pub clock: SampleClock,
    /// Time horizon of the run.
    pub t_end: f64,
    /// Quantum length Q.
    pub quantum: f64,
}

impl SimTask {
    /// Creates a direct-method (SSA) task for `instance`, sampling every
    /// `sample_period` — the paper's default integrator.
    pub fn new(
        model: Arc<Model>,
        base_seed: u64,
        instance: u64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Self {
        Self::with_engine(
            EngineKind::Ssa,
            model,
            base_seed,
            instance,
            t_end,
            quantum,
            sample_period,
        )
        .expect("SSA engine construction is infallible")
    }

    /// Creates the task for `instance` with the configured engine kind,
    /// compiling the model's dependency graph locally. The task generation
    /// stage uses [`SimTask::with_engine_deps`] to compile once per run
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when `kind` cannot drive `model` (e.g.
    /// tau-leaping on a compartment model).
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine(
        kind: EngineKind,
        model: Arc<Model>,
        base_seed: u64,
        instance: u64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Result<Self, EngineError> {
        let deps = Arc::new(ModelDeps::compile(&model));
        Self::with_engine_deps(
            kind,
            model,
            deps,
            base_seed,
            instance,
            t_end,
            quantum,
            sample_period,
        )
    }

    /// Creates the task for `instance`, sharing an already-compiled
    /// dependency graph across the run's instances (the model is compiled
    /// once per run, not once per trajectory — see
    /// [`ModelDeps::compile`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when `kind` cannot drive `model`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine_deps(
        kind: EngineKind,
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        instance: u64,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Result<Self, EngineError> {
        Ok(SimTask {
            engine: kind.build_with_deps(model, deps, base_seed, instance)?,
            clock: SampleClock::new(0.0, sample_period),
            t_end,
            quantum,
        })
    }

    /// Instance id of the wrapped trajectory.
    pub fn instance(&self) -> u64 {
        self.engine.instance()
    }

    /// True when the trajectory reached its horizon.
    pub fn is_done(&self) -> bool {
        self.engine.time() >= self.t_end
    }

    /// End of the next quantum (capped at the horizon).
    pub fn next_quantum_end(&self) -> f64 {
        (self.engine.time() + self.quantum).min(self.t_end)
    }

    /// Runs one quantum, appending produced samples to `out`.
    ///
    /// Returns the number of reactions fired in the quantum.
    pub fn run_quantum(&mut self, out: &mut Vec<(f64, Vec<u64>)>) -> u64 {
        let horizon = self.next_quantum_end();
        // Push straight into `out` (the farm's hottest loop) instead of
        // collecting an intermediate QuantumOutcome.
        self.engine
            .run_sampled(horizon, &mut self.clock, |t, values| {
                out.push((t, values.to_vec()))
            })
    }
}

/// Chunks the instance range `first .. first + count` into batch spans of
/// at most `width` replicas: `(first_instance, width)` pairs in instance
/// order, the last span possibly narrower. This is the single chunking
/// rule of the batched tier — the runner, the shard workers and the
/// device map all derive their batches from it, so a replica's batch
/// membership (and hence nothing at all, thanks to per-replica RNG
/// streams) never depends on the execution back-end.
///
/// # Panics
///
/// Panics if `width` is zero (rejected earlier by config validation).
pub fn batch_spans(first: u64, count: u64, width: usize) -> Vec<(u64, usize)> {
    assert!(width >= 1, "batch width must be >= 1");
    let mut spans = Vec::new();
    let mut i = first;
    let end = first + count;
    while i < end {
        let w = (width as u64).min(end - i) as usize;
        spans.push((i, w));
        i += w as u64;
    }
    spans
}

/// A simulation task that advances a whole *batch* of trajectories per
/// quantum: the batched-tier counterpart of [`SimTask`], carrying one
/// [`BatchedSsaEngine`] and one sampling clock per replica.
///
/// With [`EngineKind::Batched`], the task generation stage chunks the
/// instance range into `ceil(instances / width)` of these, and the sim
/// workers pull whole batches through the feedback cycle instead of single
/// instances. Every replica's sample stream and event count is bit-for-bit
/// what the scalar [`SimTask`] of the same instance would produce.
#[derive(Debug, Clone)]
pub struct BatchSimTask {
    /// The batched engine (SoA state, per-replica RNG streams).
    pub engine: BatchedSsaEngine,
    /// Persistent τ-grid clocks, one per replica (survive quantum
    /// boundaries).
    pub clocks: Vec<SampleClock>,
    /// Time horizon of the run.
    pub t_end: f64,
    /// Quantum length Q.
    pub quantum: f64,
}

impl BatchSimTask {
    /// Creates the task for replicas `first_instance ..
    /// first_instance + width`, sharing an already-compiled dependency
    /// graph across the run's batches.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the model is not flat mass-action
    /// (the error names the offending rule).
    #[allow(clippy::too_many_arguments)]
    pub fn with_engine_deps(
        model: Arc<Model>,
        deps: Arc<ModelDeps>,
        base_seed: u64,
        first_instance: u64,
        width: usize,
        t_end: f64,
        quantum: f64,
        sample_period: f64,
    ) -> Result<Self, EngineError> {
        Ok(BatchSimTask {
            engine: BatchedSsaEngine::with_deps(model, deps, base_seed, first_instance, width)?,
            clocks: (0..width)
                .map(|_| SampleClock::new(0.0, sample_period))
                .collect(),
            t_end,
            quantum,
        })
    }

    /// Selects the engine's kernels (scalar / SIMD / auto-detected; see
    /// [`gillespie::KernelDispatch`]). Purely a throughput knob — every
    /// kernel produces bit-for-bit the same trajectories.
    #[must_use]
    pub fn with_kernel_dispatch(mut self, dispatch: gillespie::KernelDispatch) -> Self {
        self.engine = self.engine.with_kernel_dispatch(dispatch);
        self
    }

    /// Instance id of the batch's first replica.
    pub fn first_instance(&self) -> u64 {
        BatchEngine::first_instance(&self.engine)
    }

    /// Number of replicas in the batch.
    pub fn width(&self) -> usize {
        BatchEngine::width(&self.engine)
    }

    /// True when every replica reached the horizon (the batch is in
    /// lockstep, so one time comparison covers them all).
    pub fn is_done(&self) -> bool {
        BatchEngine::time(&self.engine) >= self.t_end
    }

    /// End of the next quantum (capped at the horizon).
    pub fn next_quantum_end(&self) -> f64 {
        (BatchEngine::time(&self.engine) + self.quantum).min(self.t_end)
    }

    /// Runs one quantum across the whole batch; returns one finished
    /// [`SampleBatch`] per replica, in replica (= instance) order, each
    /// carrying that replica's quantum samples and event count.
    pub fn run_quantum(&mut self) -> Vec<SampleBatch> {
        let horizon = self.next_quantum_end();
        let outcomes = self.engine.advance_quantum_batch(horizon, &mut self.clocks);
        let finished = self.is_done();
        outcomes
            .into_iter()
            .enumerate()
            .map(|(r, o)| SampleBatch {
                instance: self.engine.instance(r),
                samples: o.samples,
                events: o.events,
                finished,
            })
            .collect()
    }
}

/// A batch of samples produced by one quantum of one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBatch {
    /// The trajectory that produced the samples.
    pub instance: u64,
    /// `(grid time, observable values)` pairs, in time order.
    pub samples: Vec<(f64, Vec<u64>)>,
    /// Reactions fired during the quantum (for workload accounting).
    pub events: u64,
    /// True when this is the instance's final batch.
    pub finished: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use biomodels::simple::decay;

    fn task() -> SimTask {
        SimTask::new(Arc::new(decay(20, 1.0)), 42, 0, 2.0, 0.5, 0.25)
    }

    #[test]
    fn quantum_advances_time_and_emits_samples() {
        let mut t = task();
        let mut out = Vec::new();
        t.run_quantum(&mut out);
        assert_eq!(t.engine.time(), 0.5);
        // Grid 0, 0.25, 0.5 -> 3 samples in the first quantum.
        assert_eq!(out.len(), 3);
        assert!(!t.is_done());
    }

    #[test]
    fn task_completes_after_enough_quanta() {
        let mut t = task();
        let mut all = Vec::new();
        let mut quanta = 0;
        while !t.is_done() {
            t.run_quantum(&mut all);
            quanta += 1;
            assert!(quanta <= 4, "2.0 horizon / 0.5 quantum = 4 quanta");
        }
        assert_eq!(quanta, 4);
        // Grid 0, 0.25, ..., 2.0 -> 9 samples.
        assert_eq!(all.len(), 9);
        let times: Vec<f64> = all.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quantum_end_caps_at_horizon() {
        let mut t = task();
        t.quantum = 1.5;
        let mut out = Vec::new();
        t.run_quantum(&mut out);
        assert_eq!(t.engine.time(), 1.5);
        t.run_quantum(&mut out);
        assert_eq!(t.engine.time(), 2.0); // capped, not 3.0
        assert!(t.is_done());
    }

    #[test]
    fn quantised_task_equals_monolithic_run() {
        // The paper's load-rebalancing slicing must not change results.
        let mut sliced = task();
        let mut sliced_samples = Vec::new();
        while !sliced.is_done() {
            sliced.run_quantum(&mut sliced_samples);
        }
        let mut whole = task();
        whole.quantum = 1e9;
        let mut whole_samples = Vec::new();
        whole.run_quantum(&mut whole_samples);
        assert_eq!(sliced_samples, whole_samples);
        assert_eq!(sliced.engine.term(), whole.engine.term());
    }

    #[test]
    fn every_engine_kind_is_sliceable() {
        // The quantum contract holds per engine kind, not just for SSA.
        for kind in [
            EngineKind::Ssa,
            EngineKind::TauLeap { tau: 0.07 },
            EngineKind::FirstReaction,
            EngineKind::AdaptiveTau { epsilon: 0.05 },
            EngineKind::Hybrid {
                epsilon: 0.05,
                threshold: 8.0,
            },
        ] {
            let mk = || {
                SimTask::with_engine(kind, Arc::new(decay(20, 1.0)), 42, 0, 2.0, 0.5, 0.25).unwrap()
            };
            let mut sliced = mk();
            let mut ss = Vec::new();
            while !sliced.is_done() {
                sliced.run_quantum(&mut ss);
            }
            let mut whole = mk();
            whole.quantum = 1e9;
            let mut ws = Vec::new();
            whole.run_quantum(&mut ws);
            assert_eq!(ss, ws, "{kind}");
            assert_eq!(sliced.engine.observe(), whole.engine.observe(), "{kind}");
        }
    }

    #[test]
    fn batch_spans_cover_the_range_in_order() {
        assert_eq!(batch_spans(0, 7, 3), vec![(0, 3), (3, 3), (6, 1)]);
        assert_eq!(batch_spans(4, 2, 8), vec![(4, 2)]);
        assert_eq!(batch_spans(0, 6, 3), vec![(0, 3), (3, 3)]);
        assert_eq!(batch_spans(5, 0, 3), Vec::<(u64, usize)>::new());
    }

    #[test]
    fn batch_task_quanta_equal_scalar_task_quanta_bit_for_bit() {
        use gillespie::deps::ModelDeps;

        let model = Arc::new(decay(25, 1.0));
        let deps = Arc::new(ModelDeps::compile(&model));
        let width = 4usize;
        let mut batch = BatchSimTask::with_engine_deps(
            Arc::clone(&model),
            Arc::clone(&deps),
            42,
            0,
            width,
            2.0,
            0.5,
            0.25,
        )
        .unwrap();
        let mut scalars: Vec<SimTask> = (0..width as u64)
            .map(|i| {
                SimTask::with_engine_deps(
                    EngineKind::Ssa,
                    Arc::clone(&model),
                    Arc::clone(&deps),
                    42,
                    i,
                    2.0,
                    0.5,
                    0.25,
                )
                .unwrap()
            })
            .collect();
        while !batch.is_done() {
            let batches = batch.run_quantum();
            assert_eq!(batches.len(), width);
            for (r, b) in batches.iter().enumerate() {
                let mut samples = Vec::new();
                let events = scalars[r].run_quantum(&mut samples);
                assert_eq!(b.instance, r as u64);
                assert_eq!(b.samples, samples, "replica {r}");
                assert_eq!(b.events, events, "replica {r}");
                assert_eq!(b.finished, scalars[r].is_done(), "replica {r}");
            }
        }
        assert!(scalars.iter().all(SimTask::is_done));
    }

    #[test]
    fn batch_task_rejects_compartment_models_naming_the_rule() {
        use gillespie::deps::ModelDeps;
        let model = Arc::new(biomodels::cell_transport(
            biomodels::CellTransportParams::default(),
        ));
        let deps = Arc::new(ModelDeps::compile(&model));
        let err = BatchSimTask::with_engine_deps(model, deps, 1, 0, 4, 1.0, 0.5, 0.25).unwrap_err();
        assert!(err.to_string().contains('`'), "{err}");
    }

    #[test]
    fn tau_leap_task_rejects_compartment_models() {
        let model = Arc::new(biomodels::cell_transport(
            biomodels::CellTransportParams::default(),
        ));
        let err = SimTask::with_engine(
            EngineKind::TauLeap { tau: 0.1 },
            model,
            1,
            0,
            1.0,
            0.5,
            0.25,
        );
        assert!(err.is_err());
    }
}
